//! Format-neutral parse and edit errors.

use std::error::Error;
use std::fmt;

/// What went wrong while parsing or editing a binary container, with the
/// format-specific detail erased.
///
/// Backend crates (`mpass-pe`, `mpass-macho`) keep their own richer error
/// enums; each provides a lossless `From` conversion into this type so that
/// format-generic pipelines can report failures without knowing which
/// backend produced them. The variant set deliberately mirrors `PeError`'s
/// shape — the taxonomy ("the bytes ran out", "a magic is wrong", "a header
/// field is unusable", ...) turned out to be container-agnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BinaryError {
    /// The leading magic matches no supported container format.
    UnknownMagic {
        /// The first bytes of the buffer (zero padded when shorter).
        found: [u8; 4],
    },
    /// The buffer is shorter than a structure requires.
    Truncated {
        /// What was being read when the buffer ran out.
        context: &'static str,
        /// Bytes the structure needs.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A magic number is wrong for the format being parsed.
    BadMagic {
        /// Which magic failed.
        context: &'static str,
        /// The value found.
        found: u32,
    },
    /// A header field holds a value the implementation cannot honor.
    InvalidHeader {
        /// Field name.
        field: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// A section with this name already exists.
    DuplicateSection(String),
    /// No section with this name exists.
    MissingSection(String),
    /// A section name exceeds the format's on-disk name capacity.
    NameTooLong(String),
    /// The header region has no room for another section entry.
    NoHeaderSpace,
    /// A virtual address maps into no section.
    UnmappedAddress(u64),
    /// The container is a recognized but unsupported variant (for example
    /// a fat/universal Mach-O wrapper or a 32-bit image).
    UnsupportedVariant {
        /// What was being inspected.
        context: &'static str,
        /// Which variant was found.
        detail: String,
    },
    /// Catch-all structural violation.
    Malformed(String),
}

impl fmt::Display for BinaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryError::UnknownMagic { found } => write!(
                f,
                "unknown container magic {:02x} {:02x} {:02x} {:02x}",
                found[0], found[1], found[2], found[3]
            ),
            BinaryError::Truncated { context, needed, available } => write!(
                f,
                "truncated {context}: need {needed} bytes, have {available}"
            ),
            BinaryError::BadMagic { context, found } => {
                write!(f, "bad {context} magic: {found:#x}")
            }
            BinaryError::InvalidHeader { field, reason } => {
                write!(f, "invalid {field}: {reason}")
            }
            BinaryError::DuplicateSection(name) => write!(f, "section {name:?} already exists"),
            BinaryError::MissingSection(name) => write!(f, "no section named {name:?}"),
            BinaryError::NameTooLong(name) => {
                write!(f, "section name {name:?} exceeds the format's capacity")
            }
            BinaryError::NoHeaderSpace => {
                write!(f, "no header room left for another section entry")
            }
            BinaryError::UnmappedAddress(va) => {
                write!(f, "virtual address {va:#x} maps into no section")
            }
            BinaryError::UnsupportedVariant { context, detail } => {
                write!(f, "unsupported {context}: {detail}")
            }
            BinaryError::Malformed(reason) => write!(f, "malformed image: {reason}"),
        }
    }
}

impl Error for BinaryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_lowercase_and_informative() {
        let cases = [
            BinaryError::UnknownMagic { found: [0xCA, 0xFE, 0, 0] },
            BinaryError::Truncated { context: "mach header", needed: 32, available: 3 },
            BinaryError::BadMagic { context: "mach header", found: 0x1234 },
            BinaryError::InvalidHeader { field: "ncmds", reason: "overflows".into() },
            BinaryError::DuplicateSection("__text".into()),
            BinaryError::MissingSection("__data".into()),
            BinaryError::NameTooLong("a-very-long-name-indeed".into()),
            BinaryError::NoHeaderSpace,
            BinaryError::UnmappedAddress(0x1234),
            BinaryError::UnsupportedVariant { context: "mach-o container", detail: "fat".into() },
            BinaryError::Malformed("why".into()),
        ];
        for c in cases {
            let msg = c.to_string();
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().is_some_and(|c| c.is_lowercase()),
                "error text should start lowercase: {msg}"
            );
        }
    }

    #[test]
    fn is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BinaryError>();
    }
}
