//! MalConv and its non-negative variant.
//!
//! MalConv (Raff et al., "Malware detection by eating a whole EXE") embeds
//! raw bytes and applies a gated convolution with global max pooling.
//! NonNeg (Fleshman et al.) is the same architecture with the dense
//! head constrained non-negative. Max pooling is monotone when appended
//! bytes add windows, so a non-negative head makes the malware score
//! monotone under appends, which blunts append-based evasion — one of
//! the baselines' weaknesses the paper measures. The convolution stays
//! unconstrained: clamping it too would let constant-byte runs (PE slack
//! is full of them) win every filter's max for every input, collapsing
//! the model to a constant output.

use crate::traits::{Detector, WhiteBoxModel, WhiteBoxSession};
use mpass_ml::{
    bce_with_logits, bce_with_logits_backward, global_max_pool, global_max_pool_backward,
    relu, relu_backward, sigmoid, Adam, Cached, Conv1d, Embedding, Linear, QuantizedConv1d,
    QuantizedLinear, QuantizedVec, Snapshot, SnapshotBuilder, SnapshotError, TokenConv,
    Workspace,
};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Byte vocabulary: 256 byte values plus a padding token.
pub const VOCAB: usize = 257;
/// The padding token index.
pub const PAD: usize = 256;

/// Architecture hyper-parameters shared by [`MalConv`] and [`NonNeg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ByteConvConfig {
    /// Leading file bytes consumed (shorter files are padded).
    pub window: usize,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Convolution output channels.
    pub filters: usize,
    /// Convolution kernel width in byte positions.
    pub kernel: usize,
    /// Convolution stride (MalConv uses non-overlapping windows).
    pub stride: usize,
    /// Dense head hidden width.
    pub hidden: usize,
}

impl Default for ByteConvConfig {
    fn default() -> Self {
        ByteConvConfig {
            window: 16 * 1024,
            embed_dim: 8,
            filters: 16,
            kernel: 256,
            stride: 256,
            hidden: 16,
        }
    }
}

impl ByteConvConfig {
    /// A tiny configuration for unit tests (fast in debug builds).
    pub fn tiny() -> Self {
        ByteConvConfig { window: 4096, embed_dim: 4, filters: 8, kernel: 64, stride: 64, hidden: 8 }
    }
}

/// The shared gated-convolution network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ByteConvNet {
    name: String,
    config: ByteConvConfig,
    embedding: Embedding,
    conv_a: Conv1d,
    conv_b: Conv1d,
    head1: Linear,
    head2: Linear,
    nonneg: bool,
    threshold: f32,
    /// Token-indexed conv responses, derived from the weights above;
    /// rebuilt lazily after every training run ([`Cached`] is excluded
    /// from comparison/serialization and clones empty).
    tables: Cached<GatedTables>,
    /// Int8-quantized inference layers, likewise derived lazily from the
    /// trained weights and invalidated by training.
    quant: Cached<QuantizedByteConv>,
}

/// Token-indexed response tables of the gated conv pair — the inference
/// kernel of the white-box attack path.
#[derive(Debug, Clone)]
struct GatedTables {
    a: TokenConv,
    b: TokenConv,
}

/// Int8-quantized counterparts of the full inference stack (gated conv
/// pair + dense head), used by the opt-in `score_quantized` path.
#[derive(Debug, Clone)]
struct QuantizedByteConv {
    a: QuantizedConv1d,
    b: QuantizedConv1d,
    head1: QuantizedLinear,
    head2: QuantizedLinear,
}

/// Cached activations of one forward pass.
struct Activations {
    tokens: Vec<usize>,
    x: Vec<f32>,
    a: Vec<f32>,
    b: Vec<f32>,
    gated: Vec<f32>,
    argmax: Vec<usize>,
    pooled: Vec<f32>,
    a1: Vec<f32>,
    h1: Vec<f32>,
    logit: f32,
}

impl ByteConvNet {
    fn new<R: Rng + ?Sized>(name: &str, config: ByteConvConfig, nonneg: bool, rng: &mut R) -> Self {
        let mut net = ByteConvNet {
            name: name.to_owned(),
            config,
            embedding: Embedding::new(VOCAB, config.embed_dim, rng),
            conv_a: Conv1d::new(config.embed_dim, config.filters, config.kernel, config.stride, rng),
            conv_b: Conv1d::new(config.embed_dim, config.filters, config.kernel, config.stride, rng),
            head1: Linear::new(config.filters, config.hidden, rng),
            head2: Linear::new(config.hidden, 1, rng),
            nonneg,
            threshold: 0.5,
            tables: Cached::new(),
            quant: Cached::new(),
        };
        // PAD embeds to a frozen zero vector (PyTorch's `padding_idx`):
        // otherwise, on files shorter than the window, the identical
        // padding windows win the global max-pool for both classes and
        // their gradients cancel, stalling training.
        net.embedding.freeze_zero_row(PAD);
        if nonneg {
            // Start inside the feasible region with full magnitude:
            // projecting the symmetric init would zero half of each head
            // before training starts.
            net.head1.weight.reflect_abs();
            net.head2.weight.reflect_abs();
        }
        net
    }

    fn clamp_nonneg(&mut self) {
        self.head1.weight.clamp_min(0.0);
        self.head2.weight.clamp_min(0.0);
    }

    /// The model's configuration.
    pub fn config(&self) -> &ByteConvConfig {
        &self.config
    }

    /// Pack the trained weights into a versioned, checksummed
    /// [`Snapshot`]: one shared payload a reload can rebuild this exact
    /// model from in O(read).
    pub fn to_snapshot(&self) -> Snapshot {
        let c = &self.config;
        let mut b = SnapshotBuilder::new();
        b.meta("detector", &self.name)
            .meta("window", c.window)
            .meta("embed_dim", c.embed_dim)
            .meta("filters", c.filters)
            .meta("kernel", c.kernel)
            .meta("stride", c.stride)
            .meta("hidden", c.hidden)
            .meta("nonneg", u8::from(self.nonneg))
            .tensor("embedding", &self.embedding.table.w)
            .tensor("conv_a.weight", &self.conv_a.weight.w)
            .tensor("conv_a.bias", &self.conv_a.bias.w)
            .tensor("conv_b.weight", &self.conv_b.weight.w)
            .tensor("conv_b.bias", &self.conv_b.bias.w)
            .tensor("head1.weight", &self.head1.weight.w)
            .tensor("head1.bias", &self.head1.bias.w)
            .tensor("head2.weight", &self.head2.weight.w)
            .tensor("head2.bias", &self.head2.bias.w)
            .tensor("threshold", &[self.threshold]);
        b.finish()
    }

    /// Rebuild the exact model a [`ByteConvNet::to_snapshot`] captured:
    /// scores are bit-identical to the source model's. Shape-validated and
    /// panic-free on untrusted snapshots.
    pub fn from_snapshot(snap: &Snapshot) -> Result<ByteConvNet, SnapshotError> {
        let config = ByteConvConfig {
            window: snap.meta_parsed("window")?,
            embed_dim: snap.meta_parsed("embed_dim")?,
            filters: snap.meta_parsed("filters")?,
            kernel: snap.meta_parsed("kernel")?,
            stride: snap.meta_parsed("stride")?,
            hidden: snap.meta_parsed("hidden")?,
        };
        if config.kernel == 0 || config.stride == 0 {
            return Err(SnapshotError::BadMeta {
                key: "kernel".to_owned(),
                value: format!("kernel {} stride {}", config.kernel, config.stride),
            });
        }
        let nonneg = snap.meta_parsed::<u8>("nonneg")? != 0;
        let name = snap
            .meta("detector")
            .ok_or_else(|| SnapshotError::MissingMeta("detector".to_owned()))?;
        let embedding = Embedding::from_weights(
            VOCAB,
            config.embed_dim,
            snap.tensor_sized("embedding", VOCAB * config.embed_dim)?.to_vec(),
        );
        let conv_len = config.filters * config.kernel * config.embed_dim;
        let conv_a = Conv1d::from_weights(
            config.embed_dim,
            config.filters,
            config.kernel,
            config.stride,
            snap.tensor_sized("conv_a.weight", conv_len)?.to_vec(),
            snap.tensor_sized("conv_a.bias", config.filters)?.to_vec(),
        );
        let conv_b = Conv1d::from_weights(
            config.embed_dim,
            config.filters,
            config.kernel,
            config.stride,
            snap.tensor_sized("conv_b.weight", conv_len)?.to_vec(),
            snap.tensor_sized("conv_b.bias", config.filters)?.to_vec(),
        );
        let head1 = Linear::from_weights(
            config.filters,
            config.hidden,
            snap.tensor_sized("head1.weight", config.hidden * config.filters)?.to_vec(),
            snap.tensor_sized("head1.bias", config.hidden)?.to_vec(),
        );
        let head2 = Linear::from_weights(
            config.hidden,
            1,
            snap.tensor_sized("head2.weight", config.hidden)?.to_vec(),
            snap.tensor_sized("head2.bias", 1)?.to_vec(),
        );
        Ok(ByteConvNet {
            name: name.to_owned(),
            config,
            embedding,
            conv_a,
            conv_b,
            head1,
            head2,
            nonneg,
            threshold: snap.tensor_scalar("threshold")?,
            tables: Cached::new(),
            quant: Cached::new(),
        })
    }

    fn tokenize(&self, bytes: &[u8]) -> Vec<usize> {
        let mut tokens = Vec::with_capacity(self.config.window);
        for i in 0..self.config.window {
            tokens.push(bytes.get(i).map(|&b| b as usize).unwrap_or(PAD));
        }
        tokens
    }

    /// Re-tokenize into an existing `window`-sized buffer.
    fn tokenize_into(&self, bytes: &[u8], tokens: &mut [usize]) {
        debug_assert_eq!(tokens.len(), self.config.window);
        for (i, t) in tokens.iter_mut().enumerate() {
            *t = bytes.get(i).map(|&b| b as usize).unwrap_or(PAD);
        }
    }

    /// The token-indexed conv tables, built on first use after training.
    fn tables(&self) -> &GatedTables {
        self.tables.get_or_build(|| GatedTables {
            a: TokenConv::build(&self.conv_a, &self.embedding),
            b: TokenConv::build(&self.conv_b, &self.embedding),
        })
    }

    /// The int8-quantized inference layers, built on first use after
    /// training (per-output-channel symmetric weight quantization).
    fn quantized(&self) -> &QuantizedByteConv {
        self.quant.get_or_build(|| QuantizedByteConv {
            a: QuantizedConv1d::from_f32(&self.conv_a),
            b: QuantizedConv1d::from_f32(&self.conv_b),
            head1: QuantizedLinear::from_f32(&self.head1),
            head2: QuantizedLinear::from_f32(&self.head2),
        })
    }

    /// Tabled gated forward: fill `a`, `b` and `gated = a · σ(b)` over
    /// `tokens` (all `[windows × filters]` flat).
    fn gated_forward(
        &self,
        t: &GatedTables,
        tokens: &[usize],
        a: &mut Vec<f32>,
        b: &mut Vec<f32>,
        gated: &mut Vec<f32>,
    ) {
        t.a.forward_into(tokens, a);
        t.b.forward_into(tokens, b);
        gated.clear();
        gated.extend(a.iter().zip(b.iter()).map(|(&ai, &bi)| ai * sigmoid(bi)));
    }

    /// Pool + dense head over cached gated activations; returns the logit.
    fn head_logit(&self, gated: &[f32]) -> f32 {
        let (pooled, _) = global_max_pool(gated, self.config.filters);
        let h1 = relu(&self.head1.forward(&pooled));
        self.head2.forward(&h1)[0]
    }

    /// From cached gated-conv activations: pool + head forward, then the
    /// input-grad-only backward. Never touches parameter gradients (every
    /// layer is used through `&self`), so no scratch model clone exists on
    /// this path — the zero-clone contract is structural. Returns the
    /// benign-direction loss and fills `grad` with `∂ℒ/∂x` over the full
    /// `window × dim` embedded input.
    fn head_backward_into(
        &self,
        ws: &mut Workspace,
        a: &[f32],
        b: &[f32],
        gated: &[f32],
        grad: &mut Vec<f32>,
    ) -> f32 {
        let filters = self.config.filters;
        let (pooled, argmax) = global_max_pool(gated, filters);
        let a1 = self.head1.forward(&pooled);
        let h1 = relu(&a1);
        let logit = self.head2.forward(&h1)[0];
        let loss = bce_with_logits(logit, 0.0);
        let dlogit = bce_with_logits_backward(logit, 0.0);
        let mut dh1 = ws.take_f32(self.config.hidden);
        self.head2.backward_input(&[dlogit], &mut dh1);
        let da1 = relu_backward(&a1, &dh1);
        let mut dpooled = ws.take_f32(filters);
        self.head1.backward_input(&da1, &mut dpooled);
        // The max pool makes the gate gradient sparse: exactly one window
        // per channel receives it.
        let mut da = ws.take_f32(gated.len());
        let mut db = ws.take_f32(gated.len());
        for (c, &w) in argmax.iter().enumerate() {
            let g = dpooled[c];
            if g == 0.0 {
                continue;
            }
            let i = w * filters + c;
            let s = sigmoid(b[i]);
            da[i] = g * s;
            db[i] = g * a[i] * s * (1.0 - s);
        }
        grad.clear();
        grad.resize(self.config.window * self.embedding.dim(), 0.0);
        let mut gb = ws.take_f32(grad.len());
        self.conv_a.backward_input(&da, grad);
        self.conv_b.backward_input(&db, &mut gb);
        for (ga, &gbi) in grad.iter_mut().zip(&gb) {
            *ga += gbi;
        }
        ws.give_f32(gb);
        ws.give_f32(db);
        ws.give_f32(da);
        ws.give_f32(dpooled);
        ws.give_f32(dh1);
        loss
    }

    fn forward(&self, bytes: &[u8]) -> Activations {
        let tokens = self.tokenize(bytes);
        let x = self.embedding.forward(&tokens);
        let a = self.conv_a.forward(&x);
        let b = self.conv_b.forward(&x);
        let gated: Vec<f32> = a.iter().zip(&b).map(|(&ai, &bi)| ai * sigmoid(bi)).collect();
        let (pooled, argmax) = global_max_pool(&gated, self.config.filters);
        let a1 = self.head1.forward(&pooled);
        let h1 = relu(&a1);
        let logit = self.head2.forward(&h1)[0];
        Activations { tokens, x, a, b, gated, argmax, pooled, a1, h1, logit }
    }

    /// Backward from `dlogit`; accumulates parameter gradients and returns
    /// the gradient w.r.t. the embedded input `x`.
    fn backward(&mut self, act: &Activations, dlogit: f32) -> Vec<f32> {
        let dh1 = self.head2.backward(&act.h1, &[dlogit]);
        let da1 = relu_backward(&act.a1, &dh1);
        let dpooled = self.head1.backward(&act.pooled, &da1);
        let windows = act.gated.len() / self.config.filters;
        let dgated =
            global_max_pool_backward(&dpooled, &act.argmax, windows, self.config.filters);
        let mut da = vec![0.0f32; act.a.len()];
        let mut db = vec![0.0f32; act.b.len()];
        for i in 0..dgated.len() {
            if dgated[i] == 0.0 {
                continue;
            }
            let s = sigmoid(act.b[i]);
            da[i] = dgated[i] * s;
            db[i] = dgated[i] * act.a[i] * s * (1.0 - s);
        }
        let mut dx = self.conv_a.backward(&act.x, &da);
        let dxb = self.conv_b.backward(&act.x, &db);
        for (d, db_) in dx.iter_mut().zip(dxb) {
            *d += db_;
        }
        dx
    }

    /// Train on `(bytes, target)` pairs with per-sample Adam updates.
    /// Returns the mean loss of the final epoch.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        data: &[(&[u8], f32)],
        epochs: usize,
        lr: f32,
        rng: &mut R,
    ) -> f32 {
        let adam = Adam::with_lr(lr);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut last = 0.0;
        for _ in 0..epochs {
            order.shuffle(rng);
            let mut total = 0.0;
            for &i in &order {
                let (bytes, target) = data[i];
                let act = self.forward(bytes);
                total += bce_with_logits(act.logit, target);
                let dlogit = bce_with_logits_backward(act.logit, target);
                let dx = self.backward(&act, dlogit);
                self.embedding.backward(&act.tokens, &dx);
                self.embedding.freeze_zero_row(PAD);
                adam.step(&mut self.embedding.table);
                adam.step(&mut self.conv_a.weight);
                adam.step(&mut self.conv_a.bias);
                adam.step(&mut self.conv_b.weight);
                adam.step(&mut self.conv_b.bias);
                adam.step(&mut self.head1.weight);
                adam.step(&mut self.head1.bias);
                adam.step(&mut self.head2.weight);
                adam.step(&mut self.head2.bias);
                if self.nonneg {
                    self.clamp_nonneg();
                }
            }
            last = total / data.len().max(1) as f32;
        }
        // Weights changed: derived token tables and quantized layers must
        // be rebuilt on next use.
        self.tables.invalidate();
        self.quant.invalidate();
        last
    }

    /// Raw logit on raw bytes.
    pub fn logit(&self, bytes: &[u8]) -> f32 {
        self.forward(bytes).logit
    }

    /// Batched logits, appended to `out` in input order.
    ///
    /// Bit-identical to N [`ByteConvNet::logit`] calls: every window whose
    /// receptive field touches file bytes runs the same
    /// `forward_window_into` arithmetic as the sequential path, over an
    /// embedding buffer filled with the same per-token rows. Windows past
    /// the file's extent all see the identical all-PAD patch, so their
    /// gated row is computed once per batch and replicated — that skip,
    /// plus embedding/conv scratch drawn once from a [`Workspace`]
    /// free-list and reused across items, is where the batch throughput
    /// comes from (a sequential `score` call allocates a fresh
    /// `window × dim` embedding per file).
    fn logit_batch_into(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        let dim = self.embedding.dim();
        let window = self.config.window;
        let filters = self.config.filters;
        let kernel = self.config.kernel;
        let stride = self.config.stride;
        let windows_total = self.conv_a.windows(window);
        // Component-major weight copies let every window's conv run as
        // lane-chunked axpy over contiguous output channels; the kernel is
        // bit-identical to the scalar `forward_window_into`, and building
        // the transpose once per batch amortizes it over all items.
        let xa = self.conv_a.transposed();
        let xb = self.conv_b.transposed();
        let mut ws = Workspace::default();
        // One all-PAD receptive field serves every fully-padded window in
        // every item.
        let mut pad_patch = ws.take_f32(kernel * dim);
        for k in 0..kernel {
            pad_patch[k * dim..(k + 1) * dim].copy_from_slice(self.embedding.vector(PAD));
        }
        let mut pad_a = ws.take_f32(filters);
        let mut pad_b = ws.take_f32(filters);
        let mut pad_gated = ws.take_f32(filters);
        if windows_total > 0 {
            xa.forward_window_into(&pad_patch, 0, &mut pad_a);
            xb.forward_window_into(&pad_patch, 0, &mut pad_b);
            for ((g, &ai), &bi) in pad_gated.iter_mut().zip(&pad_a).zip(&pad_b) {
                *g = ai * sigmoid(bi);
            }
        }
        let mut x = ws.take_f32(window * dim);
        let mut a_row = ws.take_f32(filters);
        let mut b_row = ws.take_f32(filters);
        let mut gated = ws.take_f32(windows_total * filters);
        out.reserve(items.len());
        for bytes in items {
            let data_len = bytes.len().min(window);
            // Windows touching position < data_len; everything after is
            // all-PAD and gets the replicated row.
            let data_windows = if data_len == 0 {
                0
            } else {
                (((data_len - 1) / stride) + 1).min(windows_total)
            };
            // Embed only what those windows can see: the data prefix plus
            // any PAD positions inside the last data-overlapping window.
            let visible = if data_windows == 0 {
                0
            } else {
                ((data_windows - 1) * stride + kernel).min(window)
            };
            let data_fill = data_len.min(visible);
            for (i, &byte) in bytes.iter().enumerate().take(data_fill) {
                x[i * dim..(i + 1) * dim]
                    .copy_from_slice(self.embedding.vector(byte as usize));
            }
            for i in data_fill..visible {
                x[i * dim..(i + 1) * dim].copy_from_slice(self.embedding.vector(PAD));
            }
            for w in 0..data_windows {
                xa.forward_window_into(&x, w, &mut a_row);
                xb.forward_window_into(&x, w, &mut b_row);
                let g = &mut gated[w * filters..(w + 1) * filters];
                for ((gi, &ai), &bi) in g.iter_mut().zip(&a_row).zip(&b_row) {
                    *gi = ai * sigmoid(bi);
                }
            }
            for w in data_windows..windows_total {
                gated[w * filters..(w + 1) * filters].copy_from_slice(&pad_gated);
            }
            out.push(self.head_logit(&gated));
        }
    }

    /// Batched int8-quantized logits, appended to `out` in input order.
    ///
    /// Weights are quantized per output channel (symmetric), activations
    /// dynamically per tensor with 0.0 always exactly representable — so
    /// PAD regions (frozen zero embedding) land exactly on the zero-point
    /// and the all-PAD gated row computed once per batch replicates
    /// bit-exactly. Each item's arithmetic is independent of the rest of
    /// the batch, so a single-item call is bit-identical to the batched
    /// one; accuracy versus the f32 path is tolerance-gated (score
    /// divergence ≤ 1e-2, classification agreement ≥ 99%), not bit-exact.
    fn logit_quantized_batch_into(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        let q = self.quantized();
        let dim = self.embedding.dim();
        let window = self.config.window;
        let filters = self.config.filters;
        let kernel = self.config.kernel;
        let stride = self.config.stride;
        let windows_total = self.conv_a.windows(window);
        let mut ws = Workspace::default();
        let mut pad_a = ws.take_f32(filters);
        let mut pad_b = ws.take_f32(filters);
        let mut pad_gated = ws.take_f32(filters);
        if windows_total > 0 {
            // PAD embeds to zero, and zero quantizes onto the zero-point
            // exactly, so one all-zero receptive field serves every
            // fully-padded window of every item.
            let pad_qx = QuantizedVec::from_f32(&vec![0.0f32; kernel * dim]);
            q.a.forward_window_into(&pad_qx, 0, &mut pad_a);
            q.b.forward_window_into(&pad_qx, 0, &mut pad_b);
            for ((g, &ai), &bi) in pad_gated.iter_mut().zip(&pad_a).zip(&pad_b) {
                *g = ai * sigmoid(bi);
            }
        }
        let mut x = ws.take_f32(window * dim);
        let mut qx = QuantizedVec::default();
        let mut a_row = ws.take_f32(filters);
        let mut b_row = ws.take_f32(filters);
        let mut gated = ws.take_f32(windows_total * filters);
        let mut qpooled = QuantizedVec::default();
        let mut a1 = ws.take_f32(self.config.hidden);
        let mut qh1 = QuantizedVec::default();
        let mut logit = [0.0f32; 1];
        out.reserve(items.len());
        for bytes in items {
            let data_len = bytes.len().min(window);
            let data_windows = if data_len == 0 {
                0
            } else {
                (((data_len - 1) / stride) + 1).min(windows_total)
            };
            let visible = if data_windows == 0 {
                0
            } else {
                ((data_windows - 1) * stride + kernel).min(window)
            };
            let data_fill = data_len.min(visible);
            for (i, &byte) in bytes.iter().enumerate().take(data_fill) {
                x[i * dim..(i + 1) * dim]
                    .copy_from_slice(self.embedding.vector(byte as usize));
            }
            for i in data_fill..visible {
                x[i * dim..(i + 1) * dim].copy_from_slice(self.embedding.vector(PAD));
            }
            qx.quantize(&x[..visible * dim]);
            for w in 0..data_windows {
                q.a.forward_window_into(&qx, w, &mut a_row);
                q.b.forward_window_into(&qx, w, &mut b_row);
                let g = &mut gated[w * filters..(w + 1) * filters];
                for ((gi, &ai), &bi) in g.iter_mut().zip(&a_row).zip(&b_row) {
                    *gi = ai * sigmoid(bi);
                }
            }
            for w in data_windows..windows_total {
                gated[w * filters..(w + 1) * filters].copy_from_slice(&pad_gated);
            }
            let (pooled, _) = global_max_pool(&gated, filters);
            qpooled.quantize(&pooled);
            q.head1.forward_into(&qpooled, &mut a1);
            for v in a1.iter_mut() {
                *v = v.max(0.0);
            }
            qh1.quantize(&a1);
            q.head2.forward_into(&qh1, &mut logit);
            out.push(logit[0]);
        }
    }
}

impl Detector for ByteConvNet {
    fn name(&self) -> &str {
        &self.name
    }

    fn score(&self, bytes: &[u8]) -> f32 {
        sigmoid(self.logit(bytes))
    }

    fn raw_score(&self, bytes: &[u8]) -> f32 {
        self.logit(bytes)
    }

    fn threshold(&self) -> f32 {
        self.threshold
    }

    fn score_batch(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        let start = out.len();
        self.logit_batch_into(items, out);
        for s in &mut out[start..] {
            *s = sigmoid(*s);
        }
    }

    fn raw_score_batch(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        self.logit_batch_into(items, out);
    }

    fn has_quantized_path(&self) -> bool {
        true
    }

    fn score_quantized(&self, bytes: &[u8]) -> f32 {
        let mut out = Vec::with_capacity(1);
        self.logit_quantized_batch_into(&[bytes], &mut out);
        sigmoid(out[0])
    }

    fn score_quantized_batch(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        let start = out.len();
        self.logit_quantized_batch_into(items, out);
        for s in &mut out[start..] {
            *s = sigmoid(*s);
        }
    }
}

impl crate::traits::DetectorExt for ByteConvNet {
    fn as_white_box(&self) -> Option<&dyn WhiteBoxModel> {
        Some(self)
    }
}

impl WhiteBoxModel for ByteConvNet {
    fn embedding(&self) -> &Embedding {
        &self.embedding
    }

    fn window(&self) -> usize {
        self.config.window
    }

    fn benign_loss_grad_into(
        &self,
        bytes: &[u8],
        ws: &mut Workspace,
        grad: &mut Vec<f32>,
    ) -> f32 {
        let t = self.tables();
        let mut tokens = ws.take_idx(self.config.window);
        self.tokenize_into(bytes, &mut tokens);
        let mut a = ws.take_f32(0);
        let mut b = ws.take_f32(0);
        let mut gated = ws.take_f32(0);
        self.gated_forward(t, &tokens, &mut a, &mut b, &mut gated);
        let loss = self.head_backward_into(ws, &a, &b, &gated, grad);
        ws.give_f32(gated);
        ws.give_f32(b);
        ws.give_f32(a);
        ws.give_idx(tokens);
        loss
    }

    fn session(&self) -> Box<dyn WhiteBoxSession + '_> {
        Box::new(ByteConvSession {
            tables: self.tables(),
            net: self,
            ws: Workspace::default(),
            tokens: Vec::new(),
            a: Vec::new(),
            b: Vec::new(),
            gated: Vec::new(),
            len: 0,
            primed: false,
        })
    }
}

/// Incremental inference session over one evolving byte buffer: caches
/// the tokenization and gated-conv activations, recomputing only windows
/// whose receptive field overlaps a dirty span, then re-pools. Patched
/// windows use the identical per-window arithmetic as the full tabled
/// forward, so incremental results are bit-equal to a fresh session.
struct ByteConvSession<'a> {
    net: &'a ByteConvNet,
    tables: &'a GatedTables,
    ws: Workspace,
    tokens: Vec<usize>,
    a: Vec<f32>,
    b: Vec<f32>,
    gated: Vec<f32>,
    len: usize,
    primed: bool,
}

impl ByteConvSession<'_> {
    /// Bring cached activations up to date with `bytes`, trusting `dirty`
    /// to cover every changed offset since the last call.
    fn sync(&mut self, bytes: &[u8], dirty: &[Range<usize>]) {
        let window = self.net.config.window;
        if !self.primed || bytes.len() != self.len {
            self.tokens.clear();
            self.tokens.resize(window, 0);
            self.net.tokenize_into(bytes, &mut self.tokens);
            self.net.gated_forward(
                self.tables,
                &self.tokens,
                &mut self.a,
                &mut self.b,
                &mut self.gated,
            );
            self.len = bytes.len();
            self.primed = true;
            return;
        }
        let filters = self.net.config.filters;
        for r in dirty {
            let lo = r.start.min(window);
            let hi = r.end.min(window);
            if lo >= hi {
                continue;
            }
            for i in lo..hi {
                self.tokens[i] = bytes.get(i).map(|&v| v as usize).unwrap_or(PAD);
            }
            for w in self.tables.a.dirty_windows(window, lo, hi) {
                let span = w * filters..(w + 1) * filters;
                self.tables.a.window_into(&self.tokens, w, &mut self.a[span.clone()]);
                self.tables.b.window_into(&self.tokens, w, &mut self.b[span.clone()]);
                for i in span {
                    self.gated[i] = self.a[i] * sigmoid(self.b[i]);
                }
            }
        }
        #[cfg(debug_assertions)]
        for (i, &t) in self.tokens.iter().enumerate() {
            debug_assert_eq!(
                t,
                bytes.get(i).map(|&v| v as usize).unwrap_or(PAD),
                "dirty spans did not cover a changed byte at offset {i}"
            );
        }
    }
}

impl WhiteBoxSession for ByteConvSession<'_> {
    fn score_delta(&mut self, bytes: &[u8], dirty: &[Range<usize>]) -> f32 {
        self.sync(bytes, dirty);
        self.net.head_logit(&self.gated)
    }

    fn loss_grad_delta(
        &mut self,
        bytes: &[u8],
        dirty: &[Range<usize>],
        grad: &mut Vec<f32>,
    ) -> f32 {
        self.sync(bytes, dirty);
        self.net.head_backward_into(&mut self.ws, &self.a, &self.b, &self.gated, grad)
    }
}

/// The MalConv detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MalConv(pub ByteConvNet);

impl MalConv {
    /// Fresh untrained model.
    pub fn new<R: Rng + ?Sized>(config: ByteConvConfig, rng: &mut R) -> Self {
        MalConv(ByteConvNet::new("MalConv", config, false, rng))
    }

    /// Train in place; see [`ByteConvNet::train`].
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        data: &[(&[u8], f32)],
        epochs: usize,
        lr: f32,
        rng: &mut R,
    ) -> f32 {
        self.0.train(data, epochs, lr, rng)
    }

    /// See [`ByteConvNet::to_snapshot`].
    pub fn to_snapshot(&self) -> Snapshot {
        self.0.to_snapshot()
    }

    /// See [`ByteConvNet::from_snapshot`].
    pub fn from_snapshot(snap: &Snapshot) -> Result<MalConv, SnapshotError> {
        Ok(MalConv(ByteConvNet::from_snapshot(snap)?))
    }
}

impl Detector for MalConv {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn score(&self, bytes: &[u8]) -> f32 {
        self.0.score(bytes)
    }
    fn raw_score(&self, bytes: &[u8]) -> f32 {
        self.0.raw_score(bytes)
    }
    fn threshold(&self) -> f32 {
        self.0.threshold()
    }
    fn score_batch(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        self.0.score_batch(items, out)
    }
    fn raw_score_batch(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        self.0.raw_score_batch(items, out)
    }
    fn has_quantized_path(&self) -> bool {
        self.0.has_quantized_path()
    }
    fn score_quantized(&self, bytes: &[u8]) -> f32 {
        self.0.score_quantized(bytes)
    }
    fn score_quantized_batch(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        self.0.score_quantized_batch(items, out)
    }
}

impl crate::traits::DetectorExt for MalConv {
    fn as_white_box(&self) -> Option<&dyn WhiteBoxModel> {
        Some(self)
    }
}

impl WhiteBoxModel for MalConv {
    fn embedding(&self) -> &Embedding {
        self.0.embedding()
    }
    fn window(&self) -> usize {
        self.0.window()
    }
    fn benign_loss_grad_into(
        &self,
        bytes: &[u8],
        ws: &mut Workspace,
        grad: &mut Vec<f32>,
    ) -> f32 {
        self.0.benign_loss_grad_into(bytes, ws, grad)
    }
    fn session(&self) -> Box<dyn WhiteBoxSession + '_> {
        self.0.session()
    }
}

/// The non-negative MalConv variant: the dense head's weights are
/// projected to be non-negative after every training step, making the
/// logit monotone in the pooled features (and therefore non-decreasing
/// under byte appends, which can only add max-pool candidates).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NonNeg(pub ByteConvNet);

impl NonNeg {
    /// Fresh untrained model with the non-negativity constraint active.
    pub fn new<R: Rng + ?Sized>(config: ByteConvConfig, rng: &mut R) -> Self {
        NonNeg(ByteConvNet::new("NonNeg", config, true, rng))
    }

    /// Train in place; head weights are re-projected after every step.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        data: &[(&[u8], f32)],
        epochs: usize,
        lr: f32,
        rng: &mut R,
    ) -> f32 {
        self.0.train(data, epochs, lr, rng)
    }

    /// See [`ByteConvNet::to_snapshot`].
    pub fn to_snapshot(&self) -> Snapshot {
        self.0.to_snapshot()
    }

    /// See [`ByteConvNet::from_snapshot`].
    pub fn from_snapshot(snap: &Snapshot) -> Result<NonNeg, SnapshotError> {
        Ok(NonNeg(ByteConvNet::from_snapshot(snap)?))
    }

    /// Whether all constrained weights (the dense head) are currently
    /// non-negative.
    pub fn weights_nonnegative(&self) -> bool {
        self.0.head1.weight.w.iter().all(|&w| w >= 0.0)
            && self.0.head2.weight.w.iter().all(|&w| w >= 0.0)
    }
}

impl Detector for NonNeg {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn score(&self, bytes: &[u8]) -> f32 {
        self.0.score(bytes)
    }
    fn raw_score(&self, bytes: &[u8]) -> f32 {
        self.0.raw_score(bytes)
    }
    fn threshold(&self) -> f32 {
        self.0.threshold()
    }
    fn score_batch(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        self.0.score_batch(items, out)
    }
    fn raw_score_batch(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        self.0.raw_score_batch(items, out)
    }
    fn has_quantized_path(&self) -> bool {
        self.0.has_quantized_path()
    }
    fn score_quantized(&self, bytes: &[u8]) -> f32 {
        self.0.score_quantized(bytes)
    }
    fn score_quantized_batch(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        self.0.score_quantized_batch(items, out)
    }
}

impl crate::traits::DetectorExt for NonNeg {
    fn as_white_box(&self) -> Option<&dyn WhiteBoxModel> {
        Some(self)
    }
}

impl WhiteBoxModel for NonNeg {
    fn embedding(&self) -> &Embedding {
        self.0.embedding()
    }
    fn window(&self) -> usize {
        self.0.window()
    }
    fn benign_loss_grad_into(
        &self,
        bytes: &[u8],
        ws: &mut Workspace,
        grad: &mut Vec<f32>,
    ) -> f32 {
        self.0.benign_loss_grad_into(bytes, ws, grad)
    }
    fn session(&self) -> Box<dyn WhiteBoxSession + '_> {
        self.0.session()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::training_pairs;
    use mpass_corpus::{CorpusConfig, Dataset};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn dataset() -> Dataset {
        Dataset::generate(&CorpusConfig {
            n_malware: 16,
            n_benign: 16,
            seed: 5,
            no_slack_fraction: 0.0,
        })
    }

    #[test]
    fn malconv_learns_the_corpus() {
        let ds = dataset();
        let pairs = training_pairs(&ds.samples.iter().collect::<Vec<_>>());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut m = MalConv::new(ByteConvConfig::tiny(), &mut rng);
        m.train(&pairs, 6, 5e-3, &mut rng);
        let correct = ds
            .samples
            .iter()
            .filter(|s| {
                (m.score(&s.bytes) > 0.5) == (s.label == mpass_corpus::Label::Malware)
            })
            .count();
        assert!(correct >= 28, "train accuracy {correct}/32");
    }

    #[test]
    fn nonneg_constraint_holds_after_training() {
        let ds = dataset();
        let pairs = training_pairs(&ds.samples.iter().collect::<Vec<_>>());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut m = NonNeg::new(ByteConvConfig::tiny(), &mut rng);
        m.train(&pairs, 3, 5e-3, &mut rng);
        assert!(m.weights_nonnegative());
    }

    #[test]
    fn benign_grad_points_downhill() {
        // Taking a small step along -grad in embedding space must reduce
        // the benign-direction loss (first-order sanity of the whole chain).
        let ds = dataset();
        let pairs = training_pairs(&ds.samples.iter().collect::<Vec<_>>());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut m = MalConv::new(ByteConvConfig::tiny(), &mut rng);
        m.train(&pairs, 4, 5e-3, &mut rng);
        let mal = &ds.malware()[0].bytes;
        let mut ws = Workspace::default();
        let mut grad = Vec::new();
        let loss = m.benign_loss_grad_into(mal, &mut ws, &mut grad);
        assert!(loss.is_finite());
        // Finite-difference along the negative gradient direction, probed
        // through the embedding of byte 0 at position 100 (inside .text is
        // offset >= 1024; position 1030 is inside code for tiny window 2048).
        let dim = m.embedding().dim();
        let pos = 1030usize;
        let gslice = &grad[pos * dim..(pos + 1) * dim];
        let gnorm: f32 = gslice.iter().map(|g| g * g).sum::<f32>().sqrt();
        // If the gradient at this position is degenerate pick any nonzero one.
        let (pos, gslice, _) = if gnorm > 1e-9 {
            (pos, gslice.to_vec(), gnorm)
        } else {
            let mut best = (0usize, Vec::new(), 0.0f32);
            for p in 0..m.window() {
                let gs = &grad[p * dim..(p + 1) * dim];
                let n: f32 = gs.iter().map(|g| g * g).sum::<f32>().sqrt();
                if n > best.2 {
                    best = (p, gs.to_vec(), n);
                }
            }
            best
        };
        assert!(!gslice.is_empty(), "gradient identically zero");
        // Move the byte at `pos` to the token whose embedding best follows
        // -grad; loss should not increase.
        let cur = mal.get(pos).copied().unwrap_or(0) as usize;
        let step: Vec<f32> = m
            .embedding()
            .vector(cur)
            .iter()
            .zip(&gslice)
            .map(|(e, g)| e - 0.5 * g)
            .collect();
        let newtok = m.embedding().nearest_token(&step, 256);
        let mut modified = mal.clone();
        if pos < modified.len() {
            modified[pos] = newtok as u8;
            let loss2 = m.benign_loss_grad_into(&modified, &mut ws, &mut grad);
            assert!(loss2 <= loss + 1e-3, "loss rose from {loss} to {loss2}");
        }
    }

    #[test]
    fn score_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let m = MalConv::new(ByteConvConfig::tiny(), &mut rng);
        let b = vec![7u8; 512];
        assert_eq!(m.score(&b), m.score(&b));
    }

    #[test]
    fn short_and_empty_inputs_score() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let m = MalConv::new(ByteConvConfig::tiny(), &mut rng);
        assert!(m.score(&[]).is_finite());
        assert!(m.score(&[1, 2, 3]).is_finite());
    }

    fn trained_tiny() -> MalConv {
        let ds = dataset();
        let pairs = training_pairs(&ds.samples.iter().collect::<Vec<_>>());
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut m = MalConv::new(ByteConvConfig::tiny(), &mut rng);
        m.train(&pairs, 3, 5e-3, &mut rng);
        m
    }

    /// The batched forward skips all-PAD windows and reuses scratch, but
    /// its scores must stay bit-identical to N sequential `score` calls —
    /// including empty input, files shorter than one kernel, and files
    /// longer than the model window.
    #[test]
    fn score_batch_is_bit_identical_to_sequential_scores() {
        let m = trained_tiny();
        let ds = dataset();
        let window = m.0.config().window;
        let mut owned: Vec<Vec<u8>> = ds.samples.iter().map(|s| s.bytes.clone()).collect();
        owned.push(Vec::new());
        owned.push(vec![0x4d; 3]);
        owned.push(vec![0xcc; 70]);
        owned.push(vec![0xab; window + 257]);
        let items: Vec<&[u8]> = owned.iter().map(|b| b.as_slice()).collect();
        let mut scores = Vec::new();
        let mut raw = Vec::new();
        m.score_batch(&items, &mut scores);
        m.raw_score_batch(&items, &mut raw);
        assert_eq!(scores.len(), items.len());
        for (i, bytes) in items.iter().enumerate() {
            assert_eq!(
                scores[i].to_bits(),
                m.score(bytes).to_bits(),
                "item {i} (len {}): batched {} vs sequential {}",
                bytes.len(),
                scores[i],
                m.score(bytes)
            );
            assert_eq!(raw[i].to_bits(), m.raw_score(bytes).to_bits(), "raw item {i}");
        }
        let mut verdicts = Vec::new();
        m.classify_batch(&items, &mut verdicts);
        for (i, bytes) in items.iter().enumerate() {
            assert_eq!(verdicts[i], m.classify(bytes), "verdict item {i}");
        }
    }

    /// The int8 path is tolerance-gated against f32: score divergence
    /// stays within 1e-2, and any classification flip must be a genuinely
    /// borderline score (f32 score within the divergence budget of the
    /// threshold).
    #[test]
    fn quantized_score_tracks_f32_score() {
        let m = trained_tiny();
        assert!(m.has_quantized_path());
        let ds = dataset();
        let window = m.0.config().window;
        let mut owned: Vec<Vec<u8>> = ds.samples.iter().map(|s| s.bytes.clone()).collect();
        owned.push(Vec::new());
        owned.push(vec![0x4d; 3]);
        owned.push(vec![0xab; window + 257]);
        for (i, bytes) in owned.iter().enumerate() {
            let f = m.score(bytes);
            let qv = m.score_quantized(bytes);
            assert!(
                (f - qv).abs() <= 1e-2,
                "item {i}: f32 {f} vs quantized {qv} diverge past 1e-2"
            );
            if (qv > m.threshold()) != (f > m.threshold()) {
                assert!(
                    (f - m.threshold()).abs() <= 1e-2,
                    "item {i}: non-borderline verdict flip (f32 {f}, quantized {qv})"
                );
            }
        }
    }

    /// The quantized path is integer arithmetic per item: batched scoring
    /// must be bit-identical to N sequential `score_quantized` calls.
    #[test]
    fn quantized_batch_is_bit_identical_to_sequential() {
        let m = trained_tiny();
        let ds = dataset();
        let mut owned: Vec<Vec<u8>> = ds.samples.iter().map(|s| s.bytes.clone()).collect();
        owned.push(Vec::new());
        owned.push(vec![0xcc; 70]);
        let items: Vec<&[u8]> = owned.iter().map(|b| b.as_slice()).collect();
        let mut batched = Vec::new();
        m.score_quantized_batch(&items, &mut batched);
        assert_eq!(batched.len(), items.len());
        for (i, bytes) in items.iter().enumerate() {
            assert_eq!(
                batched[i].to_bits(),
                m.score_quantized(bytes).to_bits(),
                "item {i} (len {})",
                bytes.len()
            );
        }
    }

    /// Training must invalidate the cached quantized layers along with the
    /// token tables, or stale int8 weights would keep scoring.
    #[test]
    fn training_invalidates_quantized_cache() {
        let ds = dataset();
        let pairs = training_pairs(&ds.samples.iter().collect::<Vec<_>>());
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut m = MalConv::new(ByteConvConfig::tiny(), &mut rng);
        m.train(&pairs, 1, 5e-3, &mut rng);
        let bytes = &ds.malware()[0].bytes;
        let before = m.score_quantized(bytes);
        assert!(m.0.quant.is_built());
        m.train(&pairs, 2, 5e-3, &mut rng);
        let after = m.score_quantized(bytes);
        // Same fixed point would mean the cache survived the weight update.
        assert!(
            (before - after).abs() > 0.0 || m.score(bytes) == before,
            "quantized score unchanged by further training"
        );
        assert!((m.score(bytes) - after).abs() <= 1e-2);
    }

    /// The tabled white-box forward must agree with the naive score path
    /// within float-reassociation error.
    #[test]
    fn tabled_logit_matches_naive_logit() {
        let m = trained_tiny();
        let ds = dataset();
        for s in ds.samples.iter().take(6) {
            let naive = m.raw_score(&s.bytes);
            let tabled = m.0.session().score_delta(&s.bytes, &[]);
            assert!(
                (naive - tabled).abs() < 1e-4,
                "{}: naive {naive} vs tabled {tabled}",
                s.name
            );
        }
    }

    /// Property: incremental `score_delta` over random dirty spans is
    /// bit-identical to a full recompute — including spans that straddle
    /// conv-window boundaries and the end of the model window.
    #[test]
    fn score_delta_matches_full_recompute_exactly() {
        let m = trained_tiny();
        let ds = dataset();
        let mut bytes = ds.malware()[0].bytes.clone();
        let mut sess = m.0.session();
        sess.score_delta(&bytes, &[]); // prime
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        // kernel = stride = 64 for tiny: 60..70 straddles a boundary,
        // 4090..4100 straddles the window edge (window = 4096).
        let fixed: [(usize, usize); 3] = [(60, 70), (4090, 4100), (0, 1)];
        for trial in 0..20 {
            let (lo, hi) = if trial < fixed.len() {
                fixed[trial]
            } else {
                let lo = rng.gen_range(0..bytes.len().min(4200));
                (lo, (lo + rng.gen_range(1..80)).min(bytes.len()))
            };
            let hi = hi.min(bytes.len());
            if lo >= hi {
                continue;
            }
            for b in &mut bytes[lo..hi] {
                *b = rng.gen();
            }
            let incremental = sess.score_delta(&bytes, std::slice::from_ref(&(lo..hi)));
            let full = m.0.session().score_delta(&bytes, &[]);
            assert_eq!(
                incremental.to_bits(),
                full.to_bits(),
                "trial {trial} span [{lo},{hi}): incremental {incremental} vs full {full}"
            );
        }
    }

    /// Property: incremental `loss_grad_delta` (loss and the full gradient
    /// buffer) is bit-identical to a fresh session's full recompute.
    #[test]
    fn loss_grad_delta_matches_full_recompute_exactly() {
        let m = trained_tiny();
        let ds = dataset();
        let mut bytes = ds.malware()[1].bytes.clone();
        let mut sess = m.0.session();
        let mut g_inc = Vec::new();
        let mut g_full = Vec::new();
        sess.loss_grad_delta(&bytes, &[], &mut g_inc); // prime
        let mut rng = ChaCha8Rng::seed_from_u64(78);
        for trial in 0..10 {
            let lo = rng.gen_range(0..4096.min(bytes.len() - 1));
            let hi = (lo + rng.gen_range(1..100)).min(bytes.len());
            for b in &mut bytes[lo..hi] {
                *b = rng.gen();
            }
            let li = sess.loss_grad_delta(&bytes, std::slice::from_ref(&(lo..hi)), &mut g_inc);
            let lf = m.0.session().loss_grad_delta(&bytes, &[], &mut g_full);
            assert_eq!(li.to_bits(), lf.to_bits(), "trial {trial} loss mismatch");
            assert_eq!(g_inc, g_full, "trial {trial} gradient mismatch");
        }
    }

    /// The zero-clone gradient path: the model's own parameter-gradient
    /// accumulators stay untouched (nothing backpropagates into them), and
    /// the workspace reaches a steady state where repeated calls recycle
    /// every buffer instead of allocating.
    #[test]
    fn gradient_path_is_zero_clone_and_reuses_buffers() {
        let m = trained_tiny();
        let ds = dataset();
        let bytes = &ds.malware()[0].bytes;
        let mut ws = Workspace::default();
        let mut grad = Vec::new();
        let l1 = m.0.benign_loss_grad_into(bytes, &mut ws, &mut grad);
        let pooled_after_first = ws.pooled();
        let g1 = grad.clone();
        let l2 = m.0.benign_loss_grad_into(bytes, &mut ws, &mut grad);
        assert_eq!(l1.to_bits(), l2.to_bits());
        assert_eq!(g1, grad, "repeated calls must be deterministic");
        assert_eq!(ws.pooled(), pooled_after_first, "buffer pool must reach steady state");
        // &self throughout: parameter gradients cannot have been touched.
        assert!(m.0.conv_a.weight.g.iter().all(|&g| g == 0.0));
        assert!(m.0.conv_b.weight.g.iter().all(|&g| g == 0.0));
        assert!(m.0.head1.weight.g.iter().all(|&g| g == 0.0));
        // And the tables were built exactly once, on first use.
        assert!(m.0.tables.is_built());
    }
}
