//! The LightGBM/EMBER-style detector: gradient-boosted trees over static
//! PE features.
//!
//! This is the paper's third offline target. Deliberately *not* a
//! [`crate::WhiteBoxModel`]: "LightGBM is not used as a known model since
//! it cannot be backpropagated" (paper footnote 6), so MPass attacks it by
//! pure transfer from the differentiable ensemble.

use crate::features::{FeatureExtractor, FeatureScratch};
use crate::traits::Detector;
use mpass_corpus::Sample;
use mpass_ml::{FlatForest, Gbdt, GbdtParams, Snapshot, SnapshotBuilder, SnapshotError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// GBDT over EMBER-style features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LightGbm {
    extractor: FeatureExtractor,
    model: Gbdt,
    threshold: f32,
}

impl LightGbm {
    /// Train on labelled samples.
    pub fn train<R: Rng + ?Sized>(
        samples: &[&Sample],
        params: GbdtParams,
        rng: &mut R,
    ) -> LightGbm {
        let extractor = FeatureExtractor::new();
        let features: Vec<Vec<f32>> =
            samples.iter().map(|s| extractor.extract(&s.bytes)).collect();
        let labels: Vec<f32> = samples.iter().map(|s| s.label.target()).collect();
        let model = Gbdt::train(&features, &labels, params, rng);
        LightGbm { extractor, model, threshold: 0.5 }
    }

    /// The underlying tree count (diagnostic).
    pub fn tree_count(&self) -> usize {
        self.model.tree_count()
    }

    /// Pack the trained forest into a versioned, checksummed [`Snapshot`]:
    /// the flattened SoA node columns plus base and threshold scalars.
    pub fn to_snapshot(&self) -> Snapshot {
        let flat = self.model.flatten();
        let (roots, feature, value, left, right) = flat.columns();
        let mut b = SnapshotBuilder::new();
        b.meta("detector", "LightGBM")
            .meta("feature_dim", crate::features::FEATURE_DIM)
            .tensor("gbdt.base", &[flat.base()])
            .tensor_u32("gbdt.roots", &roots)
            .tensor_u32("gbdt.feature", &feature)
            .tensor("gbdt.value", &value)
            .tensor_u32("gbdt.left", &left)
            .tensor_u32("gbdt.right", &right)
            .tensor("threshold", &[self.threshold]);
        b.finish()
    }

    /// Rebuild the exact model a [`LightGbm::to_snapshot`] captured;
    /// scores are bit-identical to the source model's. The forest topology
    /// is re-validated, so hostile snapshots fail typed instead of looping
    /// or panicking.
    pub fn from_snapshot(snap: &Snapshot) -> Result<LightGbm, SnapshotError> {
        let dim: usize = snap.meta_parsed("feature_dim")?;
        if dim != crate::features::FEATURE_DIM {
            return Err(SnapshotError::BadMeta {
                key: "feature_dim".to_owned(),
                value: dim.to_string(),
            });
        }
        let forest = FlatForest::from_columns(
            snap.tensor_scalar("gbdt.base")?,
            snap.tensor_u32("gbdt.roots")?,
            snap.tensor_u32("gbdt.feature")?,
            snap.tensor("gbdt.value")?.to_vec(),
            snap.tensor_u32("gbdt.left")?,
            snap.tensor_u32("gbdt.right")?,
        )
        .map_err(|e| SnapshotError::BadMeta { key: "gbdt".to_owned(), value: e })?;
        let model = Gbdt::from_flat(&forest)
            .map_err(|e| SnapshotError::BadMeta { key: "gbdt".to_owned(), value: e })?;
        Ok(LightGbm {
            extractor: FeatureExtractor::new(),
            model,
            threshold: snap.tensor_scalar("threshold")?,
        })
    }
}

impl Detector for LightGbm {
    fn name(&self) -> &str {
        "LightGBM"
    }

    fn score(&self, bytes: &[u8]) -> f32 {
        self.model.score(&self.extractor.extract(bytes))
    }

    fn raw_score(&self, bytes: &[u8]) -> f32 {
        self.model.logit(&self.extractor.extract(bytes))
    }

    fn threshold(&self) -> f32 {
        self.threshold
    }

    fn score_batch(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        // Feature extraction dominates tree walking; the batch path keeps
        // the per-item arithmetic identical and recycles the feature buffer
        // plus all extraction scratch (window-entropy, section-concat, API
        // counters) across the batch.
        let mut scratch = FeatureScratch::new();
        let mut features = Vec::with_capacity(self.extractor.dim());
        out.reserve(items.len());
        for bytes in items {
            self.extractor.extract_with(bytes, &mut scratch, &mut features);
            out.push(self.model.score(&features));
        }
    }

    fn raw_score_batch(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        let mut scratch = FeatureScratch::new();
        let mut features = Vec::with_capacity(self.extractor.dim());
        out.reserve(items.len());
        for bytes in items {
            self.extractor.extract_with(bytes, &mut scratch, &mut features);
            out.push(self.model.logit(&features));
        }
    }
}

// Footnote 6: trees cannot be back-propagated, so `as_white_box` stays at
// its default `None` — LightGBM is never a known model.
impl crate::traits::DetectorExt for LightGbm {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::score_pairs;
    use mpass_corpus::{CorpusConfig, Dataset};
    use mpass_ml::metrics;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn learns_and_generalizes() {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 30,
            n_benign: 30,
            seed: 9,
            no_slack_fraction: 0.1,
        });
        let (train, test) = ds.split(5);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = LightGbm::train(&train, GbdtParams::default(), &mut rng);
        let pairs = score_pairs(&model, &test);
        let acc = metrics::accuracy(&pairs, model.threshold());
        let auc = metrics::auc(&pairs);
        // 48 training samples of the shortcut-free corpus: sanity floor.
        assert!(acc >= 0.8, "test accuracy {acc}");
        assert!(auc >= 0.85, "test auc {auc}");
    }

    #[test]
    fn appending_overlay_barely_moves_score() {
        // Tree features are ratio-based; a modest overlay should not flip a
        // confident malware verdict (which is why append-only baselines
        // struggle against feature-space models).
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 20,
            n_benign: 20,
            seed: 2,
            no_slack_fraction: 0.0,
        });
        let all: Vec<_> = ds.samples.iter().collect();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let model = LightGbm::train(&all, GbdtParams::default(), &mut rng);
        let s = ds.malware()[0];
        let base = model.score(&s.bytes);
        let mut pe = s.pe().unwrap().clone();
        pe.append_overlay(&vec![0x41; 256]);
        let with = model.score(&pe.to_bytes());
        assert!(base > 0.5);
        assert!((base - with).abs() < 0.4);
    }
}
