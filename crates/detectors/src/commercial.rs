//! Simulated commercial ML AVs (the paper's AV₁–AV₅: MAX, CrowdStrike,
//! Acronis, SentinelOne, Cylance).
//!
//! Each AV is an ensemble of a GBDT and an MLP over a per-vendor subset of
//! the EMBER-style features, *plus* static packer heuristics (entry point
//! in the last section, very high section entropy, unusual entry-section
//! names, oversized overlays) that offline academic models lack, *plus* an
//! n-gram [`SignatureStore`] fed by [`CommercialAv::weekly_update`] — the
//! continual-learning loop of §IV-C / Figure 4.
//!
//! The heuristics are why commercial ASR is structurally lower than
//! offline ASR in the paper's tables: a runtime-recovery attack necessarily
//! retargets the entry point into a fresh high-entropy section, which the
//! heuristics partially price in, while offline models never see such
//! artifacts during training.

use crate::features::FeatureExtractor;
use crate::signatures::SignatureStore;
use crate::traits::Detector;
use mpass_corpus::Sample;
use mpass_ml::{Adam, Gbdt, GbdtParams, Mlp};
use mpass_binary::{BinaryFormat, BinaryImage};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Per-vendor configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvProfile {
    /// Display name (`AV1`…`AV5`).
    pub name: String,
    /// Decision threshold on the blended score.
    pub threshold: f32,
    /// Weight of the packer-heuristic score contribution.
    pub heuristic_weight: f32,
    /// Blend weight of the GBDT (MLP gets `1 - gbdt_blend`).
    pub gbdt_blend: f32,
    /// Fraction of features this vendor ignores (vendor feature-set
    /// diversity).
    pub feature_dropout: f32,
    /// Seed controlling which features are dropped and model init.
    pub seed: u64,
    /// Fraction of a submission batch a gram must appear in to be mined.
    pub mine_support: f32,
    /// Maximum signatures added per weekly update.
    pub mine_cap: usize,
}

/// The five vendor profiles used throughout the experiments, with
/// deliberately diverse thresholds, heuristics and learning aggressiveness.
pub fn default_profiles() -> Vec<AvProfile> {
    vec![
        AvProfile {
            name: "AV1".into(),
            threshold: 0.50,
            heuristic_weight: 0.35,
            gbdt_blend: 0.6,
            feature_dropout: 0.10,
            seed: 101,
            mine_support: 0.30,
            mine_cap: 64,
        },
        AvProfile {
            name: "AV2".into(),
            threshold: 0.46,
            heuristic_weight: 0.40,
            gbdt_blend: 0.5,
            feature_dropout: 0.20,
            seed: 202,
            mine_support: 0.25,
            mine_cap: 96,
        },
        AvProfile {
            name: "AV3".into(),
            threshold: 0.55,
            heuristic_weight: 0.30,
            gbdt_blend: 0.7,
            feature_dropout: 0.15,
            seed: 303,
            mine_support: 0.35,
            mine_cap: 48,
        },
        AvProfile {
            name: "AV4".into(),
            threshold: 0.52,
            heuristic_weight: 0.32,
            gbdt_blend: 0.4,
            feature_dropout: 0.25,
            seed: 404,
            mine_support: 0.30,
            mine_cap: 64,
        },
        AvProfile {
            name: "AV5".into(),
            threshold: 0.44,
            heuristic_weight: 0.45,
            gbdt_blend: 0.5,
            feature_dropout: 0.05,
            seed: 505,
            mine_support: 0.25,
            mine_cap: 128,
        },
    ]
}

/// Stub signatures of packers/protectors predominantly seen on malware.
/// (The benign installer packer in the training corpus is deliberately
/// absent from this list.)
const KNOWN_PACKER_MARKERS: &[&[u8]] = &[b"UPX!", b"PESpin", b"ASPack", b".aspack"];

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// A simulated commercial ML AV.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommercialAv {
    profile: AvProfile,
    extractor: FeatureExtractor,
    feature_mask: Vec<bool>,
    gbdt: Gbdt,
    mlp: Mlp,
    signatures: SignatureStore,
    clean_reference: Vec<Vec<u8>>,
}

impl CommercialAv {
    /// Train a vendor model on labelled samples. The benign portion of the
    /// training set doubles as the clean reference that signature mining
    /// must never collide with.
    pub fn train(profile: AvProfile, samples: &[&Sample]) -> CommercialAv {
        let mut rng = ChaCha8Rng::seed_from_u64(profile.seed);
        let extractor = FeatureExtractor::new();
        let dim = extractor.dim();
        let feature_mask: Vec<bool> =
            (0..dim).map(|_| !rng.gen_bool(profile.feature_dropout as f64)).collect();
        let mask = |f: Vec<f32>| -> Vec<f32> {
            f.into_iter()
                .zip(&feature_mask)
                .map(|(v, &keep)| if keep { v } else { 0.0 })
                .collect()
        };
        let features: Vec<Vec<f32>> =
            samples.iter().map(|s| mask(extractor.extract(&s.bytes))).collect();
        let labels: Vec<f32> = samples.iter().map(|s| s.label.target()).collect();
        let gbdt = Gbdt::train(
            &features,
            &labels,
            GbdtParams { trees: 50, ..GbdtParams::default() },
            &mut rng,
        );
        let mut mlp = Mlp::new(dim, 24, &mut rng);
        let pairs: Vec<(Vec<f32>, f32)> =
            features.iter().cloned().zip(labels.iter().copied()).collect();
        let adam = Adam::with_lr(5e-3);
        for _ in 0..20 {
            mlp.train_epoch(&pairs, &adam);
        }
        let clean_reference = samples
            .iter()
            .filter(|s| s.label == mpass_corpus::Label::Benign)
            .map(|s| s.bytes.clone())
            .collect();
        CommercialAv {
            profile,
            extractor,
            feature_mask,
            gbdt,
            mlp,
            signatures: SignatureStore::new(),
            clean_reference,
        }
    }

    /// The vendor profile.
    pub fn profile(&self) -> &AvProfile {
        &self.profile
    }

    /// Number of learned signatures.
    pub fn signature_count(&self) -> usize {
        self.signatures.len()
    }

    /// Whether any learned signature matches `bytes` (diagnostic for the
    /// learning experiments; [`Detector::score`] already prices this in).
    pub fn signature_matches(&self, bytes: &[u8]) -> bool {
        self.signatures.matches(bytes)
    }

    fn masked_features(&self, bytes: &[u8]) -> Vec<f32> {
        self.extractor
            .extract(bytes)
            .into_iter()
            .zip(&self.feature_mask)
            .map(|(v, &keep)| if keep { v } else { 0.0 })
            .collect()
    }

    /// The ML-ensemble component of the score.
    pub fn ml_score(&self, bytes: &[u8]) -> f32 {
        let f = self.masked_features(bytes);
        let g = self.gbdt.score(&f);
        let m = self.mlp.score(&f);
        self.profile.gbdt_blend * g + (1.0 - self.profile.gbdt_blend) * m
    }

    /// The packer-heuristic component in `[0, 1.5]`.
    ///
    /// Real AV engines carry static indicators academic models lack:
    /// entry points in trailing sections, unusually named entry sections,
    /// localized very-high-entropy regions outside resources, oversized
    /// overlays — and, decisively, the stub signatures of packers that are
    /// predominantly used to protect malware ([`KNOWN_PACKER_MARKERS`]).
    /// Because packed *benign* software exists in the training corpus, the
    /// indicators contribute score rather than verdicts.
    pub fn heuristic_score(&self, bytes: &[u8]) -> f32 {
        let Ok(image) = BinaryImage::parse_auto(bytes) else {
            return 1.5; // unparseable executables are flagged outright
        };
        let mut h = 0.0f32;
        let n = image.section_count();
        let entry_idx = image.section_index_containing_va(image.entry_point());
        if let Some(idx) = entry_idx {
            if n > 1 && idx >= n - 2 {
                h += 0.4; // entry point in a trailing section: stub
            }
            let entry_name =
                image.section_meta(idx).map(|m| m.name).unwrap_or_default();
            if !matches!(entry_name.as_str(), ".text" | "CODE" | ".code" | "__text") {
                h += 0.15;
            }
        } else {
            h += 0.6; // entry outside every section
        }
        let high_entropy_secs = (0..n)
            .filter(|&i| {
                image
                    .section_meta(i)
                    .is_some_and(|m| m.kind != mpass_binary::SectionKind::Resource)
            })
            .filter_map(|i| image.section_data(i))
            .filter(|d| d.len() >= 256 && mpass_pe::entropy(d) > 7.5)
            .count();
        if high_entropy_secs > 0 {
            h += 0.25;
        }
        if image.overlay().len() * 2 > bytes.len() {
            h += 0.2; // more than half the file is overlay
        }
        if KNOWN_PACKER_MARKERS.iter().any(|m| contains(bytes, m)) {
            h += 0.6; // stub signature of a malware-associated packer
        }
        h.min(1.5)
    }

    /// Weekly continual-learning update: mine shared n-grams from the
    /// submitted samples into the signature store. Returns how many
    /// signatures were added.
    pub fn weekly_update(&mut self, submissions: &[&[u8]]) -> usize {
        let clean: Vec<&[u8]> =
            self.clean_reference.iter().map(|v| v.as_slice()).collect();
        // Absolute floor of four corroborating submissions: production
        // engines never ship a signature observed in a couple of files.
        let min_support = ((submissions.len() as f32 * self.profile.mine_support).ceil()
            as usize)
            .max(4);
        self.signatures.mine(submissions, &clean, min_support, self.profile.mine_cap)
    }
}

impl Detector for CommercialAv {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn score(&self, bytes: &[u8]) -> f32 {
        if self.signatures.matches(bytes) {
            return 0.99;
        }
        let ml = self.ml_score(bytes);
        let h = self.heuristic_score(bytes);
        (ml + self.profile.heuristic_weight * h).min(1.0)
    }

    fn threshold(&self) -> f32 {
        self.profile.threshold
    }
}

// Commercial engines are pure black boxes to the attacker.
impl crate::traits::DetectorExt for CommercialAv {}

/// A memoizing wrapper around a commercial AV: repeated scores for
/// byte-identical submissions are served from an in-memory cache.
///
/// Attack campaigns re-query the same image often (sample-quality
/// screening, the per-round verdict, the final verification pass), and the
/// heuristic + ensemble scoring path is the dominant cost of the
/// commercial experiments. Hits and misses are recorded to the
/// `av/cache_hit` / `av/cache_miss` metrics counters, so the engine's
/// metrics file reports the cache hit rate per shard.
///
/// The cache keys on the *full submission bytes* — an earlier revision
/// keyed on a 64-bit FNV-1a hash alone, which would silently serve one
/// submission's score for a colliding one. Lock acquisition recovers
/// from poisoning: a panicking worker (now isolated by the engine's
/// `catch_unwind`) must not wedge the cache for every other shard, and
/// a cache map is valid after any interrupted insert.
#[derive(Debug)]
pub struct CachedAv {
    inner: CommercialAv,
    cache: std::sync::Mutex<std::collections::HashMap<Vec<u8>, f32>>,
}

impl CachedAv {
    /// Wrap a trained AV.
    pub fn new(inner: CommercialAv) -> CachedAv {
        CachedAv { inner, cache: std::sync::Mutex::new(std::collections::HashMap::new()) }
    }

    fn cache(&self) -> std::sync::MutexGuard<'_, std::collections::HashMap<Vec<u8>, f32>> {
        self.cache.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The wrapped AV.
    pub fn inner(&self) -> &CommercialAv {
        &self.inner
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        self.cache().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Apply a weekly update to the wrapped AV. The cache is invalidated:
    /// freshly mined signatures change verdicts for already-seen bytes.
    pub fn weekly_update(&mut self, submissions: &[&[u8]]) -> usize {
        let added = self.inner.weekly_update(submissions);
        self.cache().clear();
        added
    }
}

impl Detector for CachedAv {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn score(&self, bytes: &[u8]) -> f32 {
        if let Some(&s) = self.cache().get(bytes) {
            mpass_engine::metrics::counter("av/cache_hit", 1);
            return s;
        }
        mpass_engine::metrics::counter("av/cache_miss", 1);
        let s = self.inner.score(bytes);
        self.cache().insert(bytes.to_vec(), s);
        s
    }

    fn raw_score(&self, bytes: &[u8]) -> f32 {
        self.inner.raw_score(bytes)
    }

    fn threshold(&self) -> f32 {
        self.inner.threshold()
    }

    fn score_batch(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        // Resolve cache hits and batch-local duplicates in one lock pass,
        // then score only the unique misses against the inner AV. Metric
        // totals match the sequential loop exactly — one hit *or* miss per
        // item, never one per batch — and a byte-identical duplicate later
        // in the batch counts as a hit, because a sequential loop would
        // already have inserted its first occurrence.
        enum Slot {
            Hit(f32),
            Pending(usize),
        }
        let mut pending: Vec<&[u8]> = Vec::new();
        let mut slots: Vec<Slot> = Vec::with_capacity(items.len());
        let (mut hits, mut misses) = (0u64, 0u64);
        {
            let mut seen: std::collections::HashMap<&[u8], usize> =
                std::collections::HashMap::new();
            let cache = self.cache();
            for &bytes in items {
                if let Some(&s) = cache.get(bytes) {
                    hits += 1;
                    slots.push(Slot::Hit(s));
                } else if let Some(&i) = seen.get(bytes) {
                    hits += 1;
                    slots.push(Slot::Pending(i));
                } else {
                    misses += 1;
                    seen.insert(bytes, pending.len());
                    slots.push(Slot::Pending(pending.len()));
                    pending.push(bytes);
                }
            }
        }
        if hits > 0 {
            mpass_engine::metrics::counter("av/cache_hit", hits);
        }
        if misses > 0 {
            mpass_engine::metrics::counter("av/cache_miss", misses);
        }
        let mut fresh = Vec::with_capacity(pending.len());
        self.inner.score_batch(&pending, &mut fresh);
        {
            let mut cache = self.cache();
            for (bytes, &s) in pending.iter().zip(&fresh) {
                cache.insert(bytes.to_vec(), s);
            }
        }
        out.reserve(slots.len());
        out.extend(slots.into_iter().map(|slot| match slot {
            Slot::Hit(s) => s,
            Slot::Pending(i) => fresh[i],
        }));
    }

    fn raw_score_batch(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        self.inner.raw_score_batch(items, out)
    }
}

impl crate::traits::DetectorExt for CachedAv {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Verdict;
    use mpass_corpus::{CorpusConfig, Dataset};

    fn dataset() -> Dataset {
        Dataset::generate(&CorpusConfig {
            n_malware: 24,
            n_benign: 24,
            seed: 13,
            no_slack_fraction: 0.1,
        })
    }

    fn one_av(ds: &Dataset) -> CommercialAv {
        let samples: Vec<_> = ds.samples.iter().collect();
        CommercialAv::train(default_profiles().remove(0), &samples)
    }

    #[test]
    fn five_distinct_profiles() {
        let ps = default_profiles();
        assert_eq!(ps.len(), 5);
        let names: std::collections::HashSet<_> = ps.iter().map(|p| p.name.clone()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn detects_malware_passes_benign() {
        let ds = dataset();
        let av = one_av(&ds);
        let mal_detected = ds
            .malware()
            .iter()
            .filter(|s| av.classify(&s.bytes).is_malicious())
            .count();
        let ben_passed = ds
            .benign()
            .iter()
            .filter(|s| av.classify(&s.bytes).is_benign())
            .count();
        assert!(mal_detected >= 22, "detected {mal_detected}/24 malware");
        assert!(ben_passed >= 22, "passed {ben_passed}/24 benign");
    }

    #[test]
    fn heuristics_flag_tail_entry_sections() {
        let ds = dataset();
        let av = one_av(&ds);
        let s = ds.malware()[0];
        let base_h = av.heuristic_score(&s.bytes);
        let mut pe = s.pe().unwrap().clone();
        let rva = pe
            .add_section(".newsec", vec![0x90; 512], mpass_pe::SectionFlags::CODE)
            .unwrap();
        pe.set_entry_point(rva).unwrap();
        let h = av.heuristic_score(&pe.to_bytes());
        assert!(h > base_h, "tail entry must raise heuristic: {base_h} -> {h}");
        assert!(h >= 0.5);
    }

    #[test]
    fn unparseable_bytes_are_flagged() {
        let ds = dataset();
        let av = one_av(&ds);
        assert_eq!(av.classify(&[0u8; 300]), Verdict::Malicious);
    }

    #[test]
    fn weekly_update_learns_fixed_patterns() {
        let ds = dataset();
        let mut av = one_av(&ds);
        // Craft 10 "AEs": same malware with one fixed appended pattern.
        let pattern = b"#FIXED-ATTACK-STUB-PATTERN#";
        let subs: Vec<Vec<u8>> = ds.malware()[..10]
            .iter()
            .map(|s| {
                let mut pe = s.pe().unwrap().clone();
                pe.append_overlay(pattern);
                pe.to_bytes()
            })
            .collect();
        let sub_refs: Vec<&[u8]> = subs.iter().map(|v| v.as_slice()).collect();
        let added = av.weekly_update(&sub_refs);
        assert!(added > 0, "fixed pattern must be mined");
        // A *new* sample carrying the pattern is now signature-detected.
        let mut pe = ds.malware()[11].pe().unwrap().clone();
        pe.append_overlay(pattern);
        assert_eq!(av.score(&pe.to_bytes()), 0.99);
    }

    #[test]
    fn weekly_update_ignores_diverse_submissions() {
        let ds = dataset();
        let mut av = one_av(&ds);
        // Every "AE" appends different random-looking content.
        let subs: Vec<Vec<u8>> = ds.malware()[..10]
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut pe = s.pe().unwrap().clone();
                let junk: Vec<u8> =
                    (0..200u64).map(|j| ((i as u64 * 97 + j * 13 + i as u64 * j) % 256) as u8).collect();
                pe.append_overlay(&junk);
                pe.to_bytes()
            })
            .collect();
        let sub_refs: Vec<&[u8]> = subs.iter().map(|v| v.as_slice()).collect();
        let before = av.signature_count();
        av.weekly_update(&sub_refs);
        // Only grams shared across >= 30% of submissions qualify; the junk
        // differs per submission. Shared grams from the underlying corpus
        // generator may be mined but the per-AE junk must not explode the
        // store.
        assert!(av.signature_count() - before <= av.profile().mine_cap);
    }

    #[test]
    fn cached_av_matches_and_counts() {
        let ds = dataset();
        let av = one_av(&ds);
        let cached = CachedAv::new(av.clone());
        mpass_engine::metrics::install(mpass_engine::Collector::default());
        for s in ds.malware()[..4].iter() {
            assert_eq!(cached.score(&s.bytes), av.score(&s.bytes));
            assert_eq!(cached.score(&s.bytes), av.score(&s.bytes)); // hit
        }
        let shard = mpass_engine::metrics::take().unwrap().finish("t", 0.0);
        assert_eq!(shard.counters["av/cache_miss"], 4);
        assert_eq!(shard.counters["av/cache_hit"], 4);
        assert_eq!(cached.len(), 4);
    }

    /// Batch scoring must meter the cache per item (not per batch) and
    /// score byte-identical duplicates against the inner AV only once.
    #[test]
    fn batched_cache_counts_per_item_and_dedups_inner_scoring() {
        let ds = dataset();
        let av = one_av(&ds);
        let cached = CachedAv::new(av.clone());
        let a = ds.malware()[0].bytes.clone();
        let b = ds.malware()[1].bytes.clone();
        let c = ds.benign()[0].bytes.clone();
        // Pre-cache `a` so the batch sees a genuine cache hit too.
        cached.score(&a);
        mpass_engine::metrics::install(mpass_engine::Collector::default());
        let items: Vec<&[u8]> = vec![&a, &b, &b, &c, &b];
        let mut scores = Vec::new();
        cached.score_batch(&items, &mut scores);
        let shard = mpass_engine::metrics::take().unwrap().finish("t", 0.0);
        // Per item: a=hit, b=miss, b=dup hit, c=miss, b=dup hit.
        assert_eq!(shard.counters["av/cache_hit"], 3);
        assert_eq!(shard.counters["av/cache_miss"], 2);
        // The two unique misses were inserted exactly once each.
        assert_eq!(cached.len(), 3);
        for (i, bytes) in items.iter().enumerate() {
            assert_eq!(scores[i].to_bits(), av.score(bytes).to_bits(), "item {i}");
        }
        // A sequential replay over a fresh wrapper yields the same metric
        // totals as the batch did.
        let seq = CachedAv::new(av.clone());
        seq.score(&a);
        mpass_engine::metrics::install(mpass_engine::Collector::default());
        let mut seq_scores = Vec::new();
        for bytes in &items {
            seq_scores.push(seq.score(bytes));
        }
        let shard2 = mpass_engine::metrics::take().unwrap().finish("t", 0.0);
        assert_eq!(shard2.counters["av/cache_hit"], 3);
        assert_eq!(shard2.counters["av/cache_miss"], 2);
        for (s1, s2) in scores.iter().zip(&seq_scores) {
            assert_eq!(s1.to_bits(), s2.to_bits());
        }
    }

    #[test]
    fn cache_keys_on_full_bytes_not_a_hash() {
        let ds = dataset();
        let av = one_av(&ds);
        let cached = CachedAv::new(av.clone());
        // Distinct submissions each get their own entry and their own
        // correct score; a hash-keyed cache could conflate them.
        let a = &ds.malware()[0].bytes;
        let b = &ds.benign()[0].bytes;
        assert_eq!(cached.score(a), av.score(a));
        assert_eq!(cached.score(b), av.score(b));
        assert_eq!(cached.len(), 2);
        // Served from cache, still per-submission.
        assert_eq!(cached.score(a), av.score(a));
        assert_eq!(cached.score(b), av.score(b));
    }

    #[test]
    fn cached_av_invalidates_on_weekly_update() {
        let ds = dataset();
        let mut cached = CachedAv::new(one_av(&ds));
        let pattern = b"#FIXED-ATTACK-STUB-PATTERN#";
        let probe = {
            let mut pe = ds.malware()[11].pe().unwrap().clone();
            pe.append_overlay(pattern);
            pe.to_bytes()
        };
        let before = cached.score(&probe);
        let subs: Vec<Vec<u8>> = ds.malware()[..10]
            .iter()
            .map(|s| {
                let mut pe = s.pe().unwrap().clone();
                pe.append_overlay(pattern);
                pe.to_bytes()
            })
            .collect();
        let sub_refs: Vec<&[u8]> = subs.iter().map(|v| v.as_slice()).collect();
        assert!(cached.weekly_update(&sub_refs) > 0);
        // A stale cache would keep returning `before`; invalidation lets
        // the new signature fire.
        assert_eq!(cached.score(&probe), 0.99);
        assert_ne!(cached.score(&probe), before);
    }

    #[test]
    fn benign_reference_prevents_self_poisoning() {
        let ds = dataset();
        let mut av = one_av(&ds);
        // Submissions are literally benign files: nothing should be mined
        // that then flags other benign files.
        let subs: Vec<&[u8]> = ds.benign()[..10].iter().map(|s| s.bytes.as_slice()).collect();
        av.weekly_update(&subs);
        let passed = ds
            .benign()
            .iter()
            .filter(|s| av.classify(&s.bytes).is_benign())
            .count();
        assert!(passed >= 22, "benign still passes after update: {passed}/24");
    }
}
