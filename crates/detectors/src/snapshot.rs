//! Detector reconstruction from weight snapshots.
//!
//! Every offline detector can pack its trained weights into a
//! [`Snapshot`] (one checksummed payload; see `mpass-ml::snapshot`) and be
//! rebuilt from one with **bit-identical scores** — so a serving daemon's
//! hot reload costs one file read instead of a retrain, and N workers
//! sharing the reloaded model share one weight buffer through the
//! snapshot's `Arc` payload.
//!
//! [`detector_from_snapshot`] is the registry: it dispatches on the
//! snapshot's `detector` metadata and returns the model behind the
//! [`Detector`] object the [`crate::SwappableDetector`] slot expects.

use crate::lightgbm::LightGbm;
use crate::malconv::{MalConv, NonNeg};
use crate::malgcg::MalGcg;
use crate::traits::Detector;
use mpass_ml::{Snapshot, SnapshotError};
use std::sync::Arc;

/// Rebuild the detector a snapshot captured, dispatching on its
/// `detector` metadata (`MalConv`, `NonNeg`, `MalGCG`, or `LightGBM`).
/// Unknown architectures and malformed payloads fail typed.
pub fn detector_from_snapshot(snap: &Snapshot) -> Result<Arc<dyn Detector>, SnapshotError> {
    match snap.meta("detector") {
        Some("MalConv") => Ok(Arc::new(MalConv::from_snapshot(snap)?)),
        Some("NonNeg") => Ok(Arc::new(NonNeg::from_snapshot(snap)?)),
        Some("MalGCG") => Ok(Arc::new(MalGcg::from_snapshot(snap)?)),
        Some("LightGBM") => Ok(Arc::new(LightGbm::from_snapshot(snap)?)),
        Some(other) => Err(SnapshotError::UnknownDetector(other.to_owned())),
        None => Err(SnapshotError::MissingMeta("detector".to_owned())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::malconv::ByteConvConfig;
    use crate::malgcg::MalGcgConfig;
    use crate::train::training_pairs;
    use mpass_corpus::{CorpusConfig, Dataset};
    use mpass_ml::GbdtParams;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn dataset() -> Dataset {
        Dataset::generate(&CorpusConfig {
            n_malware: 12,
            n_benign: 12,
            seed: 21,
            no_slack_fraction: 0.0,
        })
    }

    fn assert_bit_identical(original: &dyn Detector, reloaded: &dyn Detector, ds: &Dataset) {
        assert_eq!(original.name(), reloaded.name());
        assert_eq!(original.threshold().to_bits(), reloaded.threshold().to_bits());
        for s in &ds.samples {
            assert_eq!(
                original.score(&s.bytes).to_bits(),
                reloaded.score(&s.bytes).to_bits(),
                "{}: score drifted through the snapshot",
                s.name
            );
            assert_eq!(
                original.raw_score(&s.bytes).to_bits(),
                reloaded.raw_score(&s.bytes).to_bits(),
                "{}: raw score drifted through the snapshot",
                s.name
            );
        }
    }

    #[test]
    fn malconv_snapshot_round_trips_bit_identically() {
        let ds = dataset();
        let pairs = training_pairs(&ds.samples.iter().collect::<Vec<_>>());
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let mut m = MalConv::new(ByteConvConfig::tiny(), &mut rng);
        m.train(&pairs, 2, 5e-3, &mut rng);
        // Through the registry AND through a byte-level encode/decode.
        let bytes = m.to_snapshot().to_bytes();
        let snap = Snapshot::from_bytes(&bytes).expect("snapshot decodes");
        let back = detector_from_snapshot(&snap).expect("registry rebuilds");
        assert_bit_identical(&m, back.as_ref(), &ds);
    }

    #[test]
    fn nonneg_snapshot_round_trips_bit_identically() {
        let ds = dataset();
        let pairs = training_pairs(&ds.samples.iter().collect::<Vec<_>>());
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let mut m = NonNeg::new(ByteConvConfig::tiny(), &mut rng);
        m.train(&pairs, 2, 5e-3, &mut rng);
        let snap = Snapshot::from_bytes(&m.to_snapshot().to_bytes()).expect("decodes");
        let back = detector_from_snapshot(&snap).expect("registry rebuilds");
        assert_bit_identical(&m, back.as_ref(), &ds);
        // The reloaded model keeps the non-negativity property.
        let reloaded = NonNeg::from_snapshot(&snap).expect("rebuilds");
        assert!(reloaded.weights_nonnegative());
    }

    #[test]
    fn malgcg_snapshot_round_trips_bit_identically() {
        let ds = dataset();
        let pairs = training_pairs(&ds.samples.iter().collect::<Vec<_>>());
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let mut m = MalGcg::new(MalGcgConfig::tiny(), &mut rng);
        m.train(&pairs, 2, 5e-3, &mut rng);
        let snap = Snapshot::from_bytes(&m.to_snapshot().to_bytes()).expect("decodes");
        let back = detector_from_snapshot(&snap).expect("registry rebuilds");
        assert_bit_identical(&m, back.as_ref(), &ds);
    }

    #[test]
    fn lightgbm_snapshot_round_trips_bit_identically() {
        let ds = dataset();
        let all: Vec<_> = ds.samples.iter().collect();
        let mut rng = ChaCha8Rng::seed_from_u64(34);
        let m = LightGbm::train(&all, GbdtParams::default(), &mut rng);
        let snap = Snapshot::from_bytes(&m.to_snapshot().to_bytes()).expect("decodes");
        let back = detector_from_snapshot(&snap).expect("registry rebuilds");
        assert_bit_identical(&m, back.as_ref(), &ds);
    }

    #[test]
    fn unknown_and_missing_architectures_fail_typed() {
        let mut b = mpass_ml::SnapshotBuilder::new();
        b.meta("detector", "Mystery");
        assert!(matches!(
            detector_from_snapshot(&b.finish()),
            Err(SnapshotError::UnknownDetector(name)) if name == "Mystery"
        ));
        let empty = mpass_ml::SnapshotBuilder::new().finish();
        assert!(matches!(
            detector_from_snapshot(&empty),
            Err(SnapshotError::MissingMeta(_))
        ));
    }

    /// A [`crate::SwappableDetector`] reloaded from a weight snapshot must
    /// score bit-identically to the freshly trained model it replaces —
    /// the regression guarding the daemon's O(read) hot-reload path.
    #[test]
    fn swappable_reload_from_snapshot_is_bit_identical() {
        let ds = dataset();
        let pairs = training_pairs(&ds.samples.iter().collect::<Vec<_>>());
        let mut rng = ChaCha8Rng::seed_from_u64(35);
        let mut fresh = MalConv::new(ByteConvConfig::tiny(), &mut rng);
        fresh.train(&pairs, 2, 5e-3, &mut rng);
        let snap_bytes = fresh.to_snapshot().to_bytes();

        let slot = crate::SwappableDetector::new("malconv", Arc::new(fresh.clone()));
        let (before, v0) = slot.current();
        let reloaded = detector_from_snapshot(
            &Snapshot::from_bytes(&snap_bytes).expect("snapshot decodes"),
        )
        .expect("reload rebuilds");
        let v1 = slot.swap(reloaded);
        assert!(v1 > v0);
        let (after, _) = slot.current();
        for s in &ds.samples {
            assert_eq!(
                before.score(&s.bytes).to_bits(),
                after.score(&s.bytes).to_bits(),
                "{}: reload changed the score",
                s.name
            );
        }
    }
}
