//! MalGCG — the paper's fourth offline model, standing in for "Classifying
//! sequences of extreme length with constant memory" (Raff et al., 2021).
//!
//! Architecturally distinct from MalConv: two *stacked* byte convolutions
//! (a local feature layer feeding a coarse aggregation layer) with
//! concatenated mean- and max-pooling, so its critical byte regions and
//! gradients differ from the MalConv family — which is what makes it a
//! meaningful fourth transfer target.

use crate::traits::{Detector, WhiteBoxModel, WhiteBoxSession};
use mpass_ml::{
    bce_with_logits, bce_with_logits_backward, global_max_pool, global_max_pool_backward,
    relu, relu_backward, sigmoid, Adam, Cached, Conv1d, Embedding, Linear, QuantizedConv1d,
    QuantizedVec, Snapshot, SnapshotBuilder, SnapshotError, TokenConv,
    Workspace,
};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::ops::Range;

use crate::malconv::{PAD, VOCAB};

/// Hyper-parameters for [`MalGcg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MalGcgConfig {
    /// Leading file bytes consumed.
    pub window: usize,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// First-layer channels.
    pub ch1: usize,
    /// First-layer kernel/stride (byte positions).
    pub kernel1: usize,
    /// First-layer stride.
    pub stride1: usize,
    /// Second-layer channels.
    pub ch2: usize,
    /// Second-layer kernel (over layer-1 windows).
    pub kernel2: usize,
    /// Second-layer stride.
    pub stride2: usize,
    /// Dense head width.
    pub hidden: usize,
}

impl Default for MalGcgConfig {
    fn default() -> Self {
        MalGcgConfig {
            window: 16 * 1024,
            embed_dim: 4,
            ch1: 12,
            kernel1: 128,
            stride1: 64,
            ch2: 16,
            kernel2: 4,
            stride2: 2,
            hidden: 16,
        }
    }
}

impl MalGcgConfig {
    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        MalGcgConfig {
            window: 4096,
            embed_dim: 4,
            ch1: 6,
            kernel1: 32,
            stride1: 32,
            ch2: 8,
            kernel2: 4,
            stride2: 2,
            hidden: 8,
        }
    }
}

/// The MalGCG detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MalGcg {
    config: MalGcgConfig,
    embedding: Embedding,
    conv1: Conv1d,
    conv2: Conv1d,
    head1: Linear,
    head2: Linear,
    threshold: f32,
    /// Token-indexed layer-1 responses; rebuilt lazily after training.
    tables: Cached<GcgTables>,
    /// Int8-quantized inference layers, rebuilt lazily after training.
    quant: Cached<QuantizedGcg>,
}

/// Token-indexed response table of the first conv layer. The second layer
/// runs over layer-1 activations (not tokens), so it keeps the plain
/// [`Conv1d`] per-window kernel.
#[derive(Debug, Clone)]
struct GcgTables {
    t1: TokenConv,
}

/// Int8-quantized layer 1, used by the opt-in `score_quantized` path.
/// Quantization is deliberately **hybrid**: layer 1 slides over the full
/// byte window and dominates the compute, so it runs int8; stacking a
/// second quantized conv on top of requantized activations compounds
/// the error past the 1e-2 score budget, so layer 2 and the heads stay
/// f32.
#[derive(Debug, Clone)]
struct QuantizedGcg {
    c1: QuantizedConv1d,
}

struct Activations {
    tokens: Vec<usize>,
    x: Vec<f32>,
    c1: Vec<f32>,
    r1: Vec<f32>,
    c2: Vec<f32>,
    r2: Vec<f32>,
    argmax: Vec<usize>,
    pooled: Vec<f32>, // max ++ mean, length 2*ch2
    a1: Vec<f32>,
    h1: Vec<f32>,
    logit: f32,
}

impl MalGcg {
    /// Fresh untrained model.
    pub fn new<R: Rng + ?Sized>(config: MalGcgConfig, rng: &mut R) -> Self {
        MalGcg {
            config,
            embedding: Embedding::new(VOCAB, config.embed_dim, rng),
            conv1: Conv1d::new(config.embed_dim, config.ch1, config.kernel1, config.stride1, rng),
            conv2: Conv1d::new(config.ch1, config.ch2, config.kernel2, config.stride2, rng),
            head1: Linear::new(config.ch2 * 2, config.hidden, rng),
            head2: Linear::new(config.hidden, 1, rng),
            threshold: 0.5,
            tables: Cached::new(),
            quant: Cached::new(),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &MalGcgConfig {
        &self.config
    }

    /// Pack the trained weights into a versioned, checksummed
    /// [`Snapshot`]; see [`Snapshot`] for the reload contract.
    pub fn to_snapshot(&self) -> Snapshot {
        let c = &self.config;
        let mut b = SnapshotBuilder::new();
        b.meta("detector", "MalGCG")
            .meta("window", c.window)
            .meta("embed_dim", c.embed_dim)
            .meta("ch1", c.ch1)
            .meta("kernel1", c.kernel1)
            .meta("stride1", c.stride1)
            .meta("ch2", c.ch2)
            .meta("kernel2", c.kernel2)
            .meta("stride2", c.stride2)
            .meta("hidden", c.hidden)
            .tensor("embedding", &self.embedding.table.w)
            .tensor("conv1.weight", &self.conv1.weight.w)
            .tensor("conv1.bias", &self.conv1.bias.w)
            .tensor("conv2.weight", &self.conv2.weight.w)
            .tensor("conv2.bias", &self.conv2.bias.w)
            .tensor("head1.weight", &self.head1.weight.w)
            .tensor("head1.bias", &self.head1.bias.w)
            .tensor("head2.weight", &self.head2.weight.w)
            .tensor("head2.bias", &self.head2.bias.w)
            .tensor("threshold", &[self.threshold]);
        b.finish()
    }

    /// Rebuild the exact model a [`MalGcg::to_snapshot`] captured: scores
    /// are bit-identical to the source model's. Shape-validated and
    /// panic-free on untrusted snapshots.
    pub fn from_snapshot(snap: &Snapshot) -> Result<MalGcg, SnapshotError> {
        let config = MalGcgConfig {
            window: snap.meta_parsed("window")?,
            embed_dim: snap.meta_parsed("embed_dim")?,
            ch1: snap.meta_parsed("ch1")?,
            kernel1: snap.meta_parsed("kernel1")?,
            stride1: snap.meta_parsed("stride1")?,
            ch2: snap.meta_parsed("ch2")?,
            kernel2: snap.meta_parsed("kernel2")?,
            stride2: snap.meta_parsed("stride2")?,
            hidden: snap.meta_parsed("hidden")?,
        };
        if config.kernel1 == 0 || config.stride1 == 0 || config.kernel2 == 0 || config.stride2 == 0
        {
            return Err(SnapshotError::BadMeta {
                key: "kernel1".to_owned(),
                value: format!(
                    "kernel1 {} stride1 {} kernel2 {} stride2 {}",
                    config.kernel1, config.stride1, config.kernel2, config.stride2
                ),
            });
        }
        let embedding = Embedding::from_weights(
            VOCAB,
            config.embed_dim,
            snap.tensor_sized("embedding", VOCAB * config.embed_dim)?.to_vec(),
        );
        let conv1 = Conv1d::from_weights(
            config.embed_dim,
            config.ch1,
            config.kernel1,
            config.stride1,
            snap.tensor_sized("conv1.weight", config.ch1 * config.kernel1 * config.embed_dim)?
                .to_vec(),
            snap.tensor_sized("conv1.bias", config.ch1)?.to_vec(),
        );
        let conv2 = Conv1d::from_weights(
            config.ch1,
            config.ch2,
            config.kernel2,
            config.stride2,
            snap.tensor_sized("conv2.weight", config.ch2 * config.kernel2 * config.ch1)?
                .to_vec(),
            snap.tensor_sized("conv2.bias", config.ch2)?.to_vec(),
        );
        let head1 = Linear::from_weights(
            config.ch2 * 2,
            config.hidden,
            snap.tensor_sized("head1.weight", config.hidden * config.ch2 * 2)?.to_vec(),
            snap.tensor_sized("head1.bias", config.hidden)?.to_vec(),
        );
        let head2 = Linear::from_weights(
            config.hidden,
            1,
            snap.tensor_sized("head2.weight", config.hidden)?.to_vec(),
            snap.tensor_sized("head2.bias", 1)?.to_vec(),
        );
        Ok(MalGcg {
            config,
            embedding,
            conv1,
            conv2,
            head1,
            head2,
            threshold: snap.tensor_scalar("threshold")?,
            tables: Cached::new(),
            quant: Cached::new(),
        })
    }

    fn tokenize(&self, bytes: &[u8]) -> Vec<usize> {
        (0..self.config.window)
            .map(|i| bytes.get(i).map(|&b| b as usize).unwrap_or(PAD))
            .collect()
    }

    /// Re-tokenize into an existing `window`-sized buffer.
    fn tokenize_into(&self, bytes: &[u8], tokens: &mut [usize]) {
        debug_assert_eq!(tokens.len(), self.config.window);
        for (i, t) in tokens.iter_mut().enumerate() {
            *t = bytes.get(i).map(|&b| b as usize).unwrap_or(PAD);
        }
    }

    /// The token-indexed layer-1 table, built on first use after training.
    fn tables(&self) -> &GcgTables {
        self.tables
            .get_or_build(|| GcgTables { t1: TokenConv::build(&self.conv1, &self.embedding) })
    }

    /// The int8-quantized inference layers, built on first use after
    /// training (per-output-channel symmetric weight quantization).
    fn quantized(&self) -> &QuantizedGcg {
        self.quant.get_or_build(|| QuantizedGcg { c1: QuantizedConv1d::from_f32(&self.conv1) })
    }

    /// Tabled stacked forward: layer 1 via the token table, layer 2 via the
    /// per-window conv kernel over layer-1 activations. Fills `c1`/`r1`
    /// (`[windows1 × ch1]`) and `c2`/`r2` (`[windows2 × ch2]`).
    fn stacked_forward(
        &self,
        t: &GcgTables,
        tokens: &[usize],
        c1: &mut Vec<f32>,
        r1: &mut Vec<f32>,
        c2: &mut Vec<f32>,
        r2: &mut Vec<f32>,
    ) {
        t.t1.forward_into(tokens, c1);
        r1.clear();
        r1.extend(c1.iter().map(|&v| v.max(0.0)));
        let ch2 = self.config.ch2;
        let windows2 = self.conv2.windows(r1.len() / self.config.ch1);
        c2.clear();
        c2.resize(windows2 * ch2, 0.0);
        // One transpose amortized over all layer-2 windows; bit-identical
        // to the scalar per-window kernel.
        let x2 = self.conv2.transposed();
        for w in 0..windows2 {
            x2.forward_window_into(r1, w, &mut c2[w * ch2..(w + 1) * ch2]);
        }
        r2.clear();
        r2.extend(c2.iter().map(|&v| v.max(0.0)));
    }

    /// The mixed max/mean pooled features over cached `r2` activations,
    /// with the exact arithmetic of [`MalGcg::forward`]; also returns the
    /// max-pool argmax for backprop.
    fn pool_r2(&self, r2: &[f32]) -> (Vec<f32>, Vec<usize>) {
        let ch2 = self.config.ch2;
        let (maxed, argmax) = global_max_pool(r2, ch2);
        let windows2 = r2.len() / ch2;
        let mut mean = vec![0.0f32; ch2];
        for w in 0..windows2 {
            for c in 0..ch2 {
                mean[c] += r2[w * ch2 + c];
            }
        }
        for m in &mut mean {
            *m /= windows2 as f32;
        }
        let mut pooled = maxed;
        pooled.extend_from_slice(&mean);
        (pooled, argmax)
    }

    /// Pool + dense head over cached `r2` activations; returns the logit.
    fn head_logit(&self, r2: &[f32]) -> f32 {
        let (pooled, _) = self.pool_r2(r2);
        let h1 = relu(&self.head1.forward(&pooled));
        self.head2.forward(&h1)[0]
    }

    /// From cached stacked-conv activations: pool + head forward, then the
    /// input-grad-only backward through both conv layers. Every layer is
    /// used through `&self`, so no scratch model clone exists on this path.
    /// Returns the benign-direction loss and fills `grad` with `∂ℒ/∂x`
    /// over the full `window × dim` embedded input.
    fn backward_into(
        &self,
        ws: &mut Workspace,
        c1: &[f32],
        r1: &[f32],
        c2: &[f32],
        r2: &[f32],
        grad: &mut Vec<f32>,
    ) -> f32 {
        let ch2 = self.config.ch2;
        let windows2 = r2.len() / ch2;
        let (pooled, argmax) = self.pool_r2(r2);
        let a1 = self.head1.forward(&pooled);
        let h1 = relu(&a1);
        let logit = self.head2.forward(&h1)[0];
        let loss = bce_with_logits(logit, 0.0);
        let dlogit = bce_with_logits_backward(logit, 0.0);
        let mut dh1 = ws.take_f32(self.config.hidden);
        self.head2.backward_input(&[dlogit], &mut dh1);
        let da1 = relu_backward(&a1, &dh1);
        let mut dpooled = ws.take_f32(2 * ch2);
        self.head1.backward_input(&da1, &mut dpooled);
        // Max branch scatters to the winning windows; the mean branch
        // spreads uniformly over all of them.
        let mut dr2 = ws.take_f32(r2.len());
        for (c, &w) in argmax.iter().enumerate() {
            dr2[w * ch2 + c] = dpooled[c];
        }
        for w in 0..windows2 {
            for c in 0..ch2 {
                dr2[w * ch2 + c] += dpooled[ch2 + c] / windows2 as f32;
            }
        }
        let mut dc2 = ws.take_f32(c2.len());
        for i in 0..c2.len() {
            if c2[i] > 0.0 {
                dc2[i] = dr2[i];
            }
        }
        let mut dr1 = ws.take_f32(r1.len());
        self.conv2.backward_input(&dc2, &mut dr1);
        let mut dc1 = ws.take_f32(c1.len());
        for i in 0..c1.len() {
            if c1[i] > 0.0 {
                dc1[i] = dr1[i];
            }
        }
        grad.clear();
        grad.resize(self.config.window * self.embedding.dim(), 0.0);
        self.conv1.backward_input(&dc1, grad);
        ws.give_f32(dc1);
        ws.give_f32(dr1);
        ws.give_f32(dc2);
        ws.give_f32(dr2);
        ws.give_f32(dpooled);
        ws.give_f32(dh1);
        loss
    }

    fn forward(&self, bytes: &[u8]) -> Activations {
        let ch2 = self.config.ch2;
        let tokens = self.tokenize(bytes);
        let x = self.embedding.forward(&tokens);
        let c1 = self.conv1.forward(&x);
        let r1 = relu(&c1);
        let c2 = self.conv2.forward(&r1);
        let r2 = relu(&c2);
        let (maxed, argmax) = global_max_pool(&r2, ch2);
        let windows2 = r2.len() / ch2;
        let mut mean = vec![0.0f32; ch2];
        for w in 0..windows2 {
            for c in 0..ch2 {
                mean[c] += r2[w * ch2 + c];
            }
        }
        for m in &mut mean {
            *m /= windows2 as f32;
        }
        let mut pooled = maxed;
        pooled.extend_from_slice(&mean);
        let a1 = self.head1.forward(&pooled);
        let h1 = relu(&a1);
        let logit = self.head2.forward(&h1)[0];
        Activations { tokens, x, c1, r1, c2, r2, argmax, pooled, a1, h1, logit }
    }

    fn backward(&mut self, act: &Activations, dlogit: f32) -> Vec<f32> {
        let ch2 = self.config.ch2;
        let dh1 = self.head2.backward(&act.h1, &[dlogit]);
        let da1 = relu_backward(&act.a1, &dh1);
        let dpooled = self.head1.backward(&act.pooled, &da1);
        let windows2 = act.r2.len() / ch2;
        let mut dr2 =
            global_max_pool_backward(&dpooled[..ch2], &act.argmax, windows2, ch2);
        // Mean-pool branch gradient.
        for w in 0..windows2 {
            for c in 0..ch2 {
                dr2[w * ch2 + c] += dpooled[ch2 + c] / windows2 as f32;
            }
        }
        let dc2 = relu_backward(&act.c2, &dr2);
        let dr1 = self.conv2.backward(&act.r1, &dc2);
        let dc1 = relu_backward(&act.c1, &dr1);
        self.conv1.backward(&act.x, &dc1)
    }

    /// Train on `(bytes, target)` pairs; returns the mean loss of the last
    /// epoch.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        data: &[(&[u8], f32)],
        epochs: usize,
        lr: f32,
        rng: &mut R,
    ) -> f32 {
        let adam = Adam::with_lr(lr);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut last = 0.0;
        for _ in 0..epochs {
            order.shuffle(rng);
            let mut total = 0.0;
            for &i in &order {
                let (bytes, target) = data[i];
                let act = self.forward(bytes);
                total += bce_with_logits(act.logit, target);
                let dlogit = bce_with_logits_backward(act.logit, target);
                let dx = self.backward(&act, dlogit);
                self.embedding.backward(&act.tokens, &dx);
                adam.step(&mut self.embedding.table);
                adam.step(&mut self.conv1.weight);
                adam.step(&mut self.conv1.bias);
                adam.step(&mut self.conv2.weight);
                adam.step(&mut self.conv2.bias);
                adam.step(&mut self.head1.weight);
                adam.step(&mut self.head1.bias);
                adam.step(&mut self.head2.weight);
                adam.step(&mut self.head2.bias);
            }
            last = total / data.len().max(1) as f32;
        }
        // Weights changed: the derived token table and quantized layers
        // must be rebuilt on next use.
        self.tables.invalidate();
        self.quant.invalidate();
        last
    }

    /// Batched logits, appended to `out` in input order; bit-identical to
    /// N [`Detector::raw_score`] calls. Same pad-replication scheme as the
    /// MalConv batch path, applied at both layers: all-PAD layer-1 windows
    /// produce one constant relu row, and layer-2 windows whose receptive
    /// field lies entirely in that constant region produce one constant
    /// `r2` row — each computed once per batch through the real conv
    /// kernels, then replicated. Scratch is drawn once from a
    /// [`Workspace`] free-list and reused across items.
    fn logit_batch_into(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        let dim = self.config.embed_dim;
        let (window, ch1, ch2) = (self.config.window, self.config.ch1, self.config.ch2);
        let (kernel1, stride1) = (self.config.kernel1, self.config.stride1);
        let (kernel2, stride2) = (self.config.kernel2, self.config.stride2);
        let w1_total = self.conv1.windows(window);
        let w2_total = self.conv2.windows(w1_total);
        // Component-major weight copies, built once per batch: each
        // window's conv becomes lane-chunked axpy over contiguous output
        // channels, bit-identical to the scalar kernel.
        let x1 = self.conv1.transposed();
        let x2 = self.conv2.transposed();
        let mut ws = Workspace::default();
        // Constant rows for the fully-padded tail, layer by layer.
        let mut pad_patch = ws.take_f32(kernel1 * dim);
        for k in 0..kernel1 {
            pad_patch[k * dim..(k + 1) * dim].copy_from_slice(self.embedding.vector(PAD));
        }
        let mut pad_r1 = ws.take_f32(ch1);
        if w1_total > 0 {
            x1.forward_window_into(&pad_patch, 0, &mut pad_r1);
            for v in &mut pad_r1 {
                *v = v.max(0.0);
            }
        }
        let mut pad_r1_patch = ws.take_f32(kernel2 * ch1);
        for k in 0..kernel2 {
            pad_r1_patch[k * ch1..(k + 1) * ch1].copy_from_slice(&pad_r1);
        }
        let mut pad_r2 = ws.take_f32(ch2);
        if w2_total > 0 {
            x2.forward_window_into(&pad_r1_patch, 0, &mut pad_r2);
            for v in &mut pad_r2 {
                *v = v.max(0.0);
            }
        }
        let mut x = ws.take_f32(window * dim);
        let mut c1_row = ws.take_f32(ch1);
        let mut c2_row = ws.take_f32(ch2);
        let mut r1 = ws.take_f32(w1_total * ch1);
        let mut r2 = ws.take_f32(w2_total * ch2);
        out.reserve(items.len());
        for bytes in items {
            let data_len = bytes.len().min(window);
            let data_w1 = if data_len == 0 {
                0
            } else {
                (((data_len - 1) / stride1) + 1).min(w1_total)
            };
            // Embed only what the data-overlapping layer-1 windows see.
            let visible = if data_w1 == 0 {
                0
            } else {
                ((data_w1 - 1) * stride1 + kernel1).min(window)
            };
            let data_fill = data_len.min(visible);
            for (i, &byte) in bytes.iter().enumerate().take(data_fill) {
                x[i * dim..(i + 1) * dim]
                    .copy_from_slice(self.embedding.vector(byte as usize));
            }
            for i in data_fill..visible {
                x[i * dim..(i + 1) * dim].copy_from_slice(self.embedding.vector(PAD));
            }
            for w in 0..data_w1 {
                x1.forward_window_into(&x, w, &mut c1_row);
                for (r, &v) in r1[w * ch1..(w + 1) * ch1].iter_mut().zip(&c1_row) {
                    *r = v.max(0.0);
                }
            }
            // Layer-2 windows read kernel2 consecutive r1 rows; the PAD
            // rows still visible to a data-overlapping layer-2 window must
            // be materialized before the conv runs over them.
            let data_w2 = if data_w1 == 0 {
                0
            } else {
                (((data_w1 - 1) / stride2) + 1).min(w2_total)
            };
            let visible1 = if data_w2 == 0 {
                0
            } else {
                ((data_w2 - 1) * stride2 + kernel2).min(w1_total)
            };
            for w in data_w1..visible1 {
                r1[w * ch1..(w + 1) * ch1].copy_from_slice(&pad_r1);
            }
            for w in 0..data_w2 {
                x2.forward_window_into(&r1, w, &mut c2_row);
                for (r, &v) in r2[w * ch2..(w + 1) * ch2].iter_mut().zip(&c2_row) {
                    *r = v.max(0.0);
                }
            }
            for w in data_w2..w2_total {
                r2[w * ch2..(w + 1) * ch2].copy_from_slice(&pad_r2);
            }
            out.push(self.head_logit(&r2));
        }
    }

    /// Batched int8-quantized logits, appended to `out` in input order.
    /// Hybrid quantization: layer 1 (the full-window slide that dominates
    /// the compute) runs through the int8 kernel; layer 2 and the heads
    /// stay f32, because a second quantized conv over requantized
    /// activations compounds the error past the 1e-2 score budget. Same
    /// pad-replication scheme as the f32 batch path: the constant all-PAD
    /// layer-1 row is computed once per batch through the quantized
    /// kernel (PAD embeds to zero, which lands exactly on the activation
    /// zero-point). Each item's arithmetic is independent of the batch,
    /// so single-item calls are bit-identical to batched ones; accuracy
    /// versus f32 is tolerance-gated (divergence ≤ 1e-2, agreement
    /// ≥ 99%), not bit-exact.
    fn logit_quantized_batch_into(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        let q = self.quantized();
        let dim = self.config.embed_dim;
        let (window, ch1, ch2) = (self.config.window, self.config.ch1, self.config.ch2);
        let (kernel1, stride1) = (self.config.kernel1, self.config.stride1);
        let (kernel2, stride2) = (self.config.kernel2, self.config.stride2);
        let w1_total = self.conv1.windows(window);
        let w2_total = self.conv2.windows(w1_total);
        let x2 = self.conv2.transposed();
        let mut ws = Workspace::default();
        let mut pad_r1 = ws.take_f32(ch1);
        if w1_total > 0 {
            let pad_qx = QuantizedVec::from_f32(&vec![0.0f32; kernel1 * dim]);
            q.c1.forward_window_into(&pad_qx, 0, &mut pad_r1);
            for v in &mut pad_r1 {
                *v = v.max(0.0);
            }
        }
        let mut pad_r1_patch = ws.take_f32(kernel2 * ch1);
        for k in 0..kernel2 {
            pad_r1_patch[k * ch1..(k + 1) * ch1].copy_from_slice(&pad_r1);
        }
        let mut pad_r2 = ws.take_f32(ch2);
        if w2_total > 0 {
            x2.forward_window_into(&pad_r1_patch, 0, &mut pad_r2);
            for v in &mut pad_r2 {
                *v = v.max(0.0);
            }
        }
        let mut x = ws.take_f32(window * dim);
        let mut qx = QuantizedVec::default();
        let mut c1_row = ws.take_f32(ch1);
        let mut c2_row = ws.take_f32(ch2);
        let mut r1 = ws.take_f32(w1_total * ch1);
        let mut r2 = ws.take_f32(w2_total * ch2);
        out.reserve(items.len());
        for bytes in items {
            let data_len = bytes.len().min(window);
            let data_w1 = if data_len == 0 {
                0
            } else {
                (((data_len - 1) / stride1) + 1).min(w1_total)
            };
            let visible = if data_w1 == 0 {
                0
            } else {
                ((data_w1 - 1) * stride1 + kernel1).min(window)
            };
            let data_fill = data_len.min(visible);
            for (i, &byte) in bytes.iter().enumerate().take(data_fill) {
                x[i * dim..(i + 1) * dim]
                    .copy_from_slice(self.embedding.vector(byte as usize));
            }
            for i in data_fill..visible {
                x[i * dim..(i + 1) * dim].copy_from_slice(self.embedding.vector(PAD));
            }
            qx.quantize(&x[..visible * dim]);
            for w in 0..data_w1 {
                q.c1.forward_window_into(&qx, w, &mut c1_row);
                for (r, &v) in r1[w * ch1..(w + 1) * ch1].iter_mut().zip(&c1_row) {
                    *r = v.max(0.0);
                }
            }
            let data_w2 = if data_w1 == 0 {
                0
            } else {
                (((data_w1 - 1) / stride2) + 1).min(w2_total)
            };
            let visible1 = if data_w2 == 0 {
                0
            } else {
                ((data_w2 - 1) * stride2 + kernel2).min(w1_total)
            };
            for w in data_w1..visible1 {
                r1[w * ch1..(w + 1) * ch1].copy_from_slice(&pad_r1);
            }
            // Layer 2 consumes the (dequantized-by-construction) f32 r1
            // rows through the f32 transposed kernel.
            for w in 0..data_w2 {
                x2.forward_window_into(&r1, w, &mut c2_row);
                for (r, &v) in r2[w * ch2..(w + 1) * ch2].iter_mut().zip(&c2_row) {
                    *r = v.max(0.0);
                }
            }
            for w in data_w2..w2_total {
                r2[w * ch2..(w + 1) * ch2].copy_from_slice(&pad_r2);
            }
            out.push(self.head_logit(&r2));
        }
    }
}

impl Detector for MalGcg {
    fn name(&self) -> &str {
        "MalGCG"
    }

    fn score(&self, bytes: &[u8]) -> f32 {
        sigmoid(self.forward(bytes).logit)
    }

    fn raw_score(&self, bytes: &[u8]) -> f32 {
        self.forward(bytes).logit
    }

    fn threshold(&self) -> f32 {
        self.threshold
    }

    fn score_batch(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        let start = out.len();
        self.logit_batch_into(items, out);
        for s in &mut out[start..] {
            *s = sigmoid(*s);
        }
    }

    fn raw_score_batch(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        self.logit_batch_into(items, out);
    }

    fn has_quantized_path(&self) -> bool {
        true
    }

    fn score_quantized(&self, bytes: &[u8]) -> f32 {
        let mut out = Vec::with_capacity(1);
        self.logit_quantized_batch_into(&[bytes], &mut out);
        sigmoid(out[0])
    }

    fn score_quantized_batch(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        let start = out.len();
        self.logit_quantized_batch_into(items, out);
        for s in &mut out[start..] {
            *s = sigmoid(*s);
        }
    }
}

impl crate::traits::DetectorExt for MalGcg {
    fn as_white_box(&self) -> Option<&dyn WhiteBoxModel> {
        Some(self)
    }
}

impl WhiteBoxModel for MalGcg {
    fn embedding(&self) -> &Embedding {
        &self.embedding
    }

    fn window(&self) -> usize {
        self.config.window
    }

    fn benign_loss_grad_into(
        &self,
        bytes: &[u8],
        ws: &mut Workspace,
        grad: &mut Vec<f32>,
    ) -> f32 {
        let t = self.tables();
        let mut tokens = ws.take_idx(self.config.window);
        self.tokenize_into(bytes, &mut tokens);
        let mut c1 = ws.take_f32(0);
        let mut r1 = ws.take_f32(0);
        let mut c2 = ws.take_f32(0);
        let mut r2 = ws.take_f32(0);
        self.stacked_forward(t, &tokens, &mut c1, &mut r1, &mut c2, &mut r2);
        let loss = self.backward_into(ws, &c1, &r1, &c2, &r2, grad);
        ws.give_f32(r2);
        ws.give_f32(c2);
        ws.give_f32(r1);
        ws.give_f32(c1);
        ws.give_idx(tokens);
        loss
    }

    fn session(&self) -> Box<dyn WhiteBoxSession + '_> {
        Box::new(MalGcgSession {
            tables: self.tables(),
            net: self,
            ws: Workspace::default(),
            tokens: Vec::new(),
            c1: Vec::new(),
            r1: Vec::new(),
            c2: Vec::new(),
            r2: Vec::new(),
            len: 0,
            primed: false,
        })
    }
}

/// Incremental inference session: caches the tokenization and both conv
/// layers' activations. Dirty byte spans invalidate layer-1 windows, which
/// in turn invalidate the layer-2 windows whose receptive field overlaps
/// them; everything else is reused. Patched windows use the identical
/// per-window arithmetic as the full stacked forward, so incremental
/// results are bit-equal to a fresh session.
struct MalGcgSession<'a> {
    net: &'a MalGcg,
    tables: &'a GcgTables,
    ws: Workspace,
    tokens: Vec<usize>,
    c1: Vec<f32>,
    r1: Vec<f32>,
    c2: Vec<f32>,
    r2: Vec<f32>,
    len: usize,
    primed: bool,
}

impl MalGcgSession<'_> {
    /// Bring cached activations up to date with `bytes`, trusting `dirty`
    /// to cover every changed offset since the last call.
    fn sync(&mut self, bytes: &[u8], dirty: &[Range<usize>]) {
        let window = self.net.config.window;
        if !self.primed || bytes.len() != self.len {
            self.tokens.clear();
            self.tokens.resize(window, 0);
            self.net.tokenize_into(bytes, &mut self.tokens);
            self.net.stacked_forward(
                self.tables,
                &self.tokens,
                &mut self.c1,
                &mut self.r1,
                &mut self.c2,
                &mut self.r2,
            );
            self.len = bytes.len();
            self.primed = true;
            return;
        }
        let ch1 = self.net.config.ch1;
        let ch2 = self.net.config.ch2;
        let windows1 = self.c1.len() / ch1;
        for r in dirty {
            let lo = r.start.min(window);
            let hi = r.end.min(window);
            if lo >= hi {
                continue;
            }
            for i in lo..hi {
                self.tokens[i] = bytes.get(i).map(|&v| v as usize).unwrap_or(PAD);
            }
            let w1 = self.tables.t1.dirty_windows(window, lo, hi);
            for w in w1.clone() {
                let span = w * ch1..(w + 1) * ch1;
                self.tables.t1.window_into(&self.tokens, w, &mut self.c1[span.clone()]);
                for i in span {
                    self.r1[i] = self.c1[i].max(0.0);
                }
            }
            // Layer-1 windows are layer-2 input positions.
            for w in self.net.conv2.dirty_windows(windows1, w1.start, w1.end) {
                let span = w * ch2..(w + 1) * ch2;
                self.net.conv2.forward_window_into(&self.r1, w, &mut self.c2[span.clone()]);
                for i in span {
                    self.r2[i] = self.c2[i].max(0.0);
                }
            }
        }
        #[cfg(debug_assertions)]
        for (i, &t) in self.tokens.iter().enumerate() {
            debug_assert_eq!(
                t,
                bytes.get(i).map(|&v| v as usize).unwrap_or(PAD),
                "dirty spans did not cover a changed byte at offset {i}"
            );
        }
    }
}

impl WhiteBoxSession for MalGcgSession<'_> {
    fn score_delta(&mut self, bytes: &[u8], dirty: &[Range<usize>]) -> f32 {
        self.sync(bytes, dirty);
        self.net.head_logit(&self.r2)
    }

    fn loss_grad_delta(
        &mut self,
        bytes: &[u8],
        dirty: &[Range<usize>],
        grad: &mut Vec<f32>,
    ) -> f32 {
        self.sync(bytes, dirty);
        self.net.backward_into(&mut self.ws, &self.c1, &self.r1, &self.c2, &self.r2, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::training_pairs;
    use mpass_corpus::{CorpusConfig, Dataset};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn malgcg_learns_the_corpus() {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 16,
            n_benign: 16,
            seed: 6,
            no_slack_fraction: 0.0,
        });
        let samples: Vec<_> = ds.samples.iter().collect();
        let pairs = training_pairs(&samples);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut m = MalGcg::new(MalGcgConfig::tiny(), &mut rng);
        m.train(&pairs, 8, 5e-3, &mut rng);
        let correct = ds
            .samples
            .iter()
            .filter(|s| {
                (m.score(&s.bytes) > 0.5) == (s.label == mpass_corpus::Label::Malware)
            })
            .count();
        assert!(correct >= 27, "train accuracy {correct}/32");
    }

    #[test]
    fn gradient_has_window_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let m = MalGcg::new(MalGcgConfig::tiny(), &mut rng);
        let mut ws = Workspace::default();
        let mut grad = Vec::new();
        let loss = m.benign_loss_grad_into(&[0x55u8; 700], &mut ws, &mut grad);
        assert!(loss.is_finite());
        assert_eq!(grad.len(), m.window() * m.embedding().dim());
    }

    #[test]
    fn score_in_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let m = MalGcg::new(MalGcgConfig::tiny(), &mut rng);
        let s = m.score(&[1, 2, 3, 4]);
        assert!((0.0..=1.0).contains(&s));
    }

    fn trained_tiny() -> (MalGcg, Dataset) {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 16,
            n_benign: 16,
            seed: 6,
            no_slack_fraction: 0.0,
        });
        let samples: Vec<_> = ds.samples.iter().collect();
        let pairs = training_pairs(&samples);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut m = MalGcg::new(MalGcgConfig::tiny(), &mut rng);
        m.train(&pairs, 3, 5e-3, &mut rng);
        (m, ds)
    }

    /// The two-level pad-replication batch path must stay bit-identical
    /// to N sequential `score` calls — including empty input, files
    /// shorter than one layer-1 kernel, and files past the model window.
    #[test]
    fn score_batch_is_bit_identical_to_sequential_scores() {
        let (m, ds) = trained_tiny();
        let window = m.config().window;
        let mut owned: Vec<Vec<u8>> = ds.samples.iter().map(|s| s.bytes.clone()).collect();
        owned.push(Vec::new());
        owned.push(vec![0x4d; 5]);
        owned.push(vec![0xcc; 33]);
        owned.push(vec![0xab; window + 100]);
        let items: Vec<&[u8]> = owned.iter().map(|b| b.as_slice()).collect();
        let mut scores = Vec::new();
        let mut raw = Vec::new();
        m.score_batch(&items, &mut scores);
        m.raw_score_batch(&items, &mut raw);
        for (i, bytes) in items.iter().enumerate() {
            assert_eq!(
                scores[i].to_bits(),
                m.score(bytes).to_bits(),
                "item {i} (len {}): batched {} vs sequential {}",
                bytes.len(),
                scores[i],
                m.score(bytes)
            );
            assert_eq!(raw[i].to_bits(), m.raw_score(bytes).to_bits(), "raw item {i}");
        }
    }

    /// The int8 path is tolerance-gated against f32 through both conv
    /// layers: divergence ≤ 1e-2, and any verdict flip must be borderline.
    #[test]
    fn quantized_score_tracks_f32_score() {
        let (m, ds) = trained_tiny();
        assert!(m.has_quantized_path());
        let window = m.config().window;
        let mut owned: Vec<Vec<u8>> = ds.samples.iter().map(|s| s.bytes.clone()).collect();
        owned.push(Vec::new());
        owned.push(vec![0x4d; 5]);
        owned.push(vec![0xab; window + 100]);
        for (i, bytes) in owned.iter().enumerate() {
            let f = m.score(bytes);
            let qv = m.score_quantized(bytes);
            assert!(
                (f - qv).abs() <= 1e-2,
                "item {i}: f32 {f} vs quantized {qv} diverge past 1e-2"
            );
            if (qv > m.threshold()) != (f > m.threshold()) {
                assert!(
                    (f - m.threshold()).abs() <= 1e-2,
                    "item {i}: non-borderline verdict flip (f32 {f}, quantized {qv})"
                );
            }
        }
    }

    /// Batched quantized scoring must be bit-identical to N sequential
    /// `score_quantized` calls (integer arithmetic, per-item independent).
    #[test]
    fn quantized_batch_is_bit_identical_to_sequential() {
        let (m, ds) = trained_tiny();
        let mut owned: Vec<Vec<u8>> = ds.samples.iter().map(|s| s.bytes.clone()).collect();
        owned.push(Vec::new());
        owned.push(vec![0xcc; 33]);
        let items: Vec<&[u8]> = owned.iter().map(|b| b.as_slice()).collect();
        let mut batched = Vec::new();
        m.score_quantized_batch(&items, &mut batched);
        assert_eq!(batched.len(), items.len());
        for (i, bytes) in items.iter().enumerate() {
            assert_eq!(
                batched[i].to_bits(),
                m.score_quantized(bytes).to_bits(),
                "item {i} (len {})",
                bytes.len()
            );
        }
    }

    /// The tabled white-box forward must agree with the naive score path
    /// within float-reassociation error.
    #[test]
    fn tabled_logit_matches_naive_logit() {
        let (m, ds) = trained_tiny();
        for s in ds.samples.iter().take(6) {
            let naive = m.raw_score(&s.bytes);
            let tabled = m.session().score_delta(&s.bytes, &[]);
            assert!(
                (naive - tabled).abs() < 1e-4,
                "{}: naive {naive} vs tabled {tabled}",
                s.name
            );
        }
    }

    /// Property: incremental `score_delta` over random dirty spans is
    /// bit-identical to a full recompute through the two-layer stack —
    /// including spans straddling layer-1 window boundaries and the end of
    /// the model window.
    #[test]
    fn score_delta_matches_full_recompute_exactly() {
        let (m, ds) = trained_tiny();
        let mut bytes = ds.malware()[0].bytes.clone();
        let mut sess = m.session();
        sess.score_delta(&bytes, &[]); // prime
        let mut rng = ChaCha8Rng::seed_from_u64(79);
        // kernel1 = stride1 = 32 for tiny: 30..34 straddles a layer-1
        // boundary; 4090..4100 straddles the window edge (window = 4096).
        let fixed: [(usize, usize); 3] = [(30, 34), (4090, 4100), (0, 1)];
        for trial in 0..20 {
            let (lo, hi) = if trial < fixed.len() {
                fixed[trial]
            } else {
                let lo = rng.gen_range(0..bytes.len().min(4200));
                (lo, (lo + rng.gen_range(1..80)).min(bytes.len()))
            };
            let hi = hi.min(bytes.len());
            if lo >= hi {
                continue;
            }
            for b in &mut bytes[lo..hi] {
                *b = rng.gen();
            }
            let incremental = sess.score_delta(&bytes, std::slice::from_ref(&(lo..hi)));
            let full = m.session().score_delta(&bytes, &[]);
            assert_eq!(
                incremental.to_bits(),
                full.to_bits(),
                "trial {trial} span [{lo},{hi}): incremental {incremental} vs full {full}"
            );
        }
    }

    /// Property: incremental `loss_grad_delta` (loss and the full gradient
    /// buffer) is bit-identical to a fresh session's full recompute.
    #[test]
    fn loss_grad_delta_matches_full_recompute_exactly() {
        let (m, ds) = trained_tiny();
        let mut bytes = ds.malware()[1].bytes.clone();
        let mut sess = m.session();
        let mut g_inc = Vec::new();
        let mut g_full = Vec::new();
        sess.loss_grad_delta(&bytes, &[], &mut g_inc); // prime
        let mut rng = ChaCha8Rng::seed_from_u64(80);
        for trial in 0..10 {
            let lo = rng.gen_range(0..4096.min(bytes.len() - 1));
            let hi = (lo + rng.gen_range(1..100)).min(bytes.len());
            for b in &mut bytes[lo..hi] {
                *b = rng.gen();
            }
            let li = sess.loss_grad_delta(&bytes, std::slice::from_ref(&(lo..hi)), &mut g_inc);
            let lf = m.session().loss_grad_delta(&bytes, &[], &mut g_full);
            assert_eq!(li.to_bits(), lf.to_bits(), "trial {trial} loss mismatch");
            assert_eq!(g_inc, g_full, "trial {trial} gradient mismatch");
        }
    }

    /// The gradient path never clones the model and recycles its workspace
    /// buffers across calls.
    #[test]
    fn gradient_path_is_zero_clone_and_reuses_buffers() {
        let (m, ds) = trained_tiny();
        let bytes = &ds.malware()[0].bytes;
        let mut ws = Workspace::default();
        let mut grad = Vec::new();
        let l1 = m.benign_loss_grad_into(bytes, &mut ws, &mut grad);
        let pooled_after_first = ws.pooled();
        let g1 = grad.clone();
        let l2 = m.benign_loss_grad_into(bytes, &mut ws, &mut grad);
        assert_eq!(l1.to_bits(), l2.to_bits());
        assert_eq!(g1, grad, "repeated calls must be deterministic");
        assert_eq!(ws.pooled(), pooled_after_first, "buffer pool must reach steady state");
        // &self throughout: parameter gradients cannot have been touched.
        assert!(m.conv1.weight.g.iter().all(|&g| g == 0.0));
        assert!(m.conv2.weight.g.iter().all(|&g| g == 0.0));
        assert!(m.head1.weight.g.iter().all(|&g| g == 0.0));
        assert!(m.tables.is_built());
    }
}
