//! MalGCG — the paper's fourth offline model, standing in for "Classifying
//! sequences of extreme length with constant memory" (Raff et al., 2021).
//!
//! Architecturally distinct from MalConv: two *stacked* byte convolutions
//! (a local feature layer feeding a coarse aggregation layer) with
//! concatenated mean- and max-pooling, so its critical byte regions and
//! gradients differ from the MalConv family — which is what makes it a
//! meaningful fourth transfer target.

use crate::traits::{Detector, WhiteBoxModel};
use mpass_ml::{
    bce_with_logits, bce_with_logits_backward, global_max_pool, global_max_pool_backward,
    relu, relu_backward, sigmoid, Adam, Conv1d, Embedding, Linear,
};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::malconv::{PAD, VOCAB};

/// Hyper-parameters for [`MalGcg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MalGcgConfig {
    /// Leading file bytes consumed.
    pub window: usize,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// First-layer channels.
    pub ch1: usize,
    /// First-layer kernel/stride (byte positions).
    pub kernel1: usize,
    /// First-layer stride.
    pub stride1: usize,
    /// Second-layer channels.
    pub ch2: usize,
    /// Second-layer kernel (over layer-1 windows).
    pub kernel2: usize,
    /// Second-layer stride.
    pub stride2: usize,
    /// Dense head width.
    pub hidden: usize,
}

impl Default for MalGcgConfig {
    fn default() -> Self {
        MalGcgConfig {
            window: 16 * 1024,
            embed_dim: 4,
            ch1: 12,
            kernel1: 128,
            stride1: 64,
            ch2: 16,
            kernel2: 4,
            stride2: 2,
            hidden: 16,
        }
    }
}

impl MalGcgConfig {
    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        MalGcgConfig {
            window: 4096,
            embed_dim: 4,
            ch1: 6,
            kernel1: 32,
            stride1: 32,
            ch2: 8,
            kernel2: 4,
            stride2: 2,
            hidden: 8,
        }
    }
}

/// The MalGCG detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MalGcg {
    config: MalGcgConfig,
    embedding: Embedding,
    conv1: Conv1d,
    conv2: Conv1d,
    head1: Linear,
    head2: Linear,
    threshold: f32,
}

struct Activations {
    tokens: Vec<usize>,
    x: Vec<f32>,
    c1: Vec<f32>,
    r1: Vec<f32>,
    c2: Vec<f32>,
    r2: Vec<f32>,
    argmax: Vec<usize>,
    pooled: Vec<f32>, // max ++ mean, length 2*ch2
    a1: Vec<f32>,
    h1: Vec<f32>,
    logit: f32,
}

impl MalGcg {
    /// Fresh untrained model.
    pub fn new<R: Rng + ?Sized>(config: MalGcgConfig, rng: &mut R) -> Self {
        MalGcg {
            config,
            embedding: Embedding::new(VOCAB, config.embed_dim, rng),
            conv1: Conv1d::new(config.embed_dim, config.ch1, config.kernel1, config.stride1, rng),
            conv2: Conv1d::new(config.ch1, config.ch2, config.kernel2, config.stride2, rng),
            head1: Linear::new(config.ch2 * 2, config.hidden, rng),
            head2: Linear::new(config.hidden, 1, rng),
            threshold: 0.5,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &MalGcgConfig {
        &self.config
    }

    fn tokenize(&self, bytes: &[u8]) -> Vec<usize> {
        (0..self.config.window)
            .map(|i| bytes.get(i).map(|&b| b as usize).unwrap_or(PAD))
            .collect()
    }

    fn forward(&self, bytes: &[u8]) -> Activations {
        let ch2 = self.config.ch2;
        let tokens = self.tokenize(bytes);
        let x = self.embedding.forward(&tokens);
        let c1 = self.conv1.forward(&x);
        let r1 = relu(&c1);
        let c2 = self.conv2.forward(&r1);
        let r2 = relu(&c2);
        let (maxed, argmax) = global_max_pool(&r2, ch2);
        let windows2 = r2.len() / ch2;
        let mut mean = vec![0.0f32; ch2];
        for w in 0..windows2 {
            for c in 0..ch2 {
                mean[c] += r2[w * ch2 + c];
            }
        }
        for m in &mut mean {
            *m /= windows2 as f32;
        }
        let mut pooled = maxed;
        pooled.extend_from_slice(&mean);
        let a1 = self.head1.forward(&pooled);
        let h1 = relu(&a1);
        let logit = self.head2.forward(&h1)[0];
        Activations { tokens, x, c1, r1, c2, r2, argmax, pooled, a1, h1, logit }
    }

    fn backward(&mut self, act: &Activations, dlogit: f32) -> Vec<f32> {
        let ch2 = self.config.ch2;
        let dh1 = self.head2.backward(&act.h1, &[dlogit]);
        let da1 = relu_backward(&act.a1, &dh1);
        let dpooled = self.head1.backward(&act.pooled, &da1);
        let windows2 = act.r2.len() / ch2;
        let mut dr2 =
            global_max_pool_backward(&dpooled[..ch2], &act.argmax, windows2, ch2);
        // Mean-pool branch gradient.
        for w in 0..windows2 {
            for c in 0..ch2 {
                dr2[w * ch2 + c] += dpooled[ch2 + c] / windows2 as f32;
            }
        }
        let dc2 = relu_backward(&act.c2, &dr2);
        let dr1 = self.conv2.backward(&act.r1, &dc2);
        let dc1 = relu_backward(&act.c1, &dr1);
        self.conv1.backward(&act.x, &dc1)
    }

    /// Train on `(bytes, target)` pairs; returns the mean loss of the last
    /// epoch.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        data: &[(&[u8], f32)],
        epochs: usize,
        lr: f32,
        rng: &mut R,
    ) -> f32 {
        let adam = Adam::with_lr(lr);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut last = 0.0;
        for _ in 0..epochs {
            order.shuffle(rng);
            let mut total = 0.0;
            for &i in &order {
                let (bytes, target) = data[i];
                let act = self.forward(bytes);
                total += bce_with_logits(act.logit, target);
                let dlogit = bce_with_logits_backward(act.logit, target);
                let dx = self.backward(&act, dlogit);
                self.embedding.backward(&act.tokens, &dx);
                adam.step(&mut self.embedding.table);
                adam.step(&mut self.conv1.weight);
                adam.step(&mut self.conv1.bias);
                adam.step(&mut self.conv2.weight);
                adam.step(&mut self.conv2.bias);
                adam.step(&mut self.head1.weight);
                adam.step(&mut self.head1.bias);
                adam.step(&mut self.head2.weight);
                adam.step(&mut self.head2.bias);
            }
            last = total / data.len().max(1) as f32;
        }
        last
    }
}

impl Detector for MalGcg {
    fn name(&self) -> &str {
        "MalGCG"
    }

    fn score(&self, bytes: &[u8]) -> f32 {
        sigmoid(self.forward(bytes).logit)
    }

    fn raw_score(&self, bytes: &[u8]) -> f32 {
        self.forward(bytes).logit
    }

    fn threshold(&self) -> f32 {
        self.threshold
    }
}

impl crate::traits::DetectorExt for MalGcg {
    fn as_white_box(&self) -> Option<&dyn WhiteBoxModel> {
        Some(self)
    }
}

impl WhiteBoxModel for MalGcg {
    fn embedding(&self) -> &Embedding {
        &self.embedding
    }

    fn window(&self) -> usize {
        self.config.window
    }

    fn benign_loss_and_grad(&self, bytes: &[u8]) -> (f32, Vec<f32>) {
        let act = self.forward(bytes);
        let loss = bce_with_logits(act.logit, 0.0);
        let dlogit = bce_with_logits_backward(act.logit, 0.0);
        let mut scratch = self.clone();
        let dx = scratch.backward(&act, dlogit);
        (loss, dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::training_pairs;
    use mpass_corpus::{CorpusConfig, Dataset};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn malgcg_learns_the_corpus() {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 16,
            n_benign: 16,
            seed: 6,
            no_slack_fraction: 0.0,
        });
        let samples: Vec<_> = ds.samples.iter().collect();
        let pairs = training_pairs(&samples);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut m = MalGcg::new(MalGcgConfig::tiny(), &mut rng);
        m.train(&pairs, 8, 5e-3, &mut rng);
        let correct = ds
            .samples
            .iter()
            .filter(|s| {
                (m.score(&s.bytes) > 0.5) == (s.label == mpass_corpus::Label::Malware)
            })
            .count();
        assert!(correct >= 27, "train accuracy {correct}/32");
    }

    #[test]
    fn gradient_has_window_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let m = MalGcg::new(MalGcgConfig::tiny(), &mut rng);
        let (loss, grad) = m.benign_loss_and_grad(&[0x55u8; 700]);
        assert!(loss.is_finite());
        assert_eq!(grad.len(), m.window() * m.embedding().dim());
    }

    #[test]
    fn score_in_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let m = MalGcg::new(MalGcgConfig::tiny(), &mut rng);
        let s = m.score(&[1, 2, 3, 4]);
        assert!((0.0..=1.0).contains(&s));
    }
}
