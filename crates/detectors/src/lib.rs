//! # mpass-detectors — learning-based static malware detectors
//!
//! The paper evaluates MPass against four state-of-the-art offline models
//! and five commercial ML AVs. This crate reimplements all nine targets on
//! top of the [`mpass_ml`] substrate, trained in-process on the synthetic
//! [`mpass_corpus`] corpus:
//!
//! | Paper target | Implementation |
//! |---|---|
//! | MalConv (Raff et al.) | [`MalConv`]: byte embedding → gated 1-D conv → global max pool → dense head |
//! | NonNeg (Fleshman et al.) | [`NonNeg`]: same architecture with non-negative conv/head weights |
//! | LightGBM / EMBER | [`LightGbm`]: gradient-boosted trees over [`features::FeatureExtractor`] EMBER-style features |
//! | MalGCG (Raff et al. 2021) | [`MalGcg`]: two stacked byte convolutions with mixed mean/max pooling |
//! | MAX / CrowdStrike / Acronis / SentinelOne / Cylance | [`CommercialAv`] profiles AV₁–AV₅: ML ensemble + packer heuristics + an n-gram signature store with weekly [`CommercialAv::weekly_update`] learning |
//!
//! Two capability levels mirror the paper's threat model:
//!
//! * [`Detector`] — the hard-label black-box interface every attack
//!   queries ([`Detector::classify`]); scores exist internally but the
//!   attacks in `mpass-core`/`mpass-baselines` never read them.
//! * [`WhiteBoxModel`] — the *known models* used by MPass's ensemble
//!   transfer optimization, exposing the byte-embedding table and the
//!   gradient of the benign-direction loss w.r.t. input embeddings.
//!   `LightGbm` deliberately does not implement it (paper footnote 6:
//!   trees cannot be back-propagated).

//!
//! The query *transport* is modelled separately from the models: every
//! detector is a perfectly reliable [`Oracle`], and
//! [`UnreliableOracle`] wraps any detector in a seeded, replayable
//! fault-injection schedule (timeouts, rate limits, outages) for the
//! fault-tolerance experiments.

pub mod commercial;
pub mod features;
mod lightgbm;
mod malconv;
mod malgcg;
pub mod oracle;
mod signatures;
pub mod snapshot;
pub mod swap;
mod traits;
pub mod train;

pub use commercial::{AvProfile, CachedAv, CommercialAv};
pub use lightgbm::LightGbm;
pub use malconv::{ByteConvConfig, MalConv, NonNeg};
pub use malgcg::{MalGcg, MalGcgConfig};
pub use oracle::{FaultProfile, Oracle, UnreliableOracle};
pub use signatures::SignatureStore;
pub use snapshot::detector_from_snapshot;
pub use swap::SwappableDetector;
pub use traits::{benign_loss, Detector, DetectorExt, Verdict, WhiteBoxModel, WhiteBoxSession};
