//! The unreliable-oracle channel: a query-transport abstraction over
//! [`Detector`], plus a deterministic fault-injection wrapper.
//!
//! The paper's commercial targets (AV₁–AV₅) are *services*, not local
//! models: submissions time out, get rate-limited, or hit an outage.
//! [`Oracle`] models that transport — a submission either delivers a
//! [`Verdict`] or reports an [`OracleFault`] — while every in-process
//! [`Detector`] is trivially an `Oracle` that never fails.
//!
//! [`UnreliableOracle`] wraps any detector and injects faults from a
//! seeded, replayable schedule: the fault decision for submission *i*
//! under seed *s* is a pure function of *(s, i)*, so two runs of the
//! same campaign see byte-identical fault sequences regardless of
//! thread scheduling. Experiment runners derive the per-shard seed from
//! the engine's `shard_seed`, keeping whole fault-injected campaigns
//! reproducible across worker counts.

use std::sync::Mutex;

use mpass_engine::metrics as trace;
use mpass_engine::OracleFault;
use serde::{Deserialize, Serialize};

use crate::traits::{Detector, Verdict};

/// A hard-label query channel that can fail.
///
/// This is the transport layer *below* `HardLabelTarget`: no budget, no
/// retries — one submission, one verdict or one fault. Retry policy
/// lives above, in the target wrapper.
pub trait Oracle: Send + Sync {
    /// The target's display name.
    fn name(&self) -> &str;

    /// Submit one file for classification.
    fn submit(&self, bytes: &[u8]) -> Result<Verdict, OracleFault>;

    /// Submit a batch of files, appending one result per item to `out`
    /// in input order.
    ///
    /// Contract: the appended results are identical to `N` sequential
    /// [`Oracle::submit`] calls on the same channel state — for
    /// fault-injecting transports that means the batch consumes the
    /// same per-submission schedule indices a sequential loop would,
    /// so batched and sequential campaigns see byte-identical fault
    /// sequences. The default loops over `submit`; implementations
    /// override it to amortize transport and scoring overhead.
    fn submit_batch(&self, items: &[&[u8]], out: &mut Vec<Result<Verdict, OracleFault>>) {
        out.reserve(items.len());
        for bytes in items {
            out.push(self.submit(bytes));
        }
    }
}

/// Every in-process detector is a perfectly reliable oracle.
impl<D: Detector + ?Sized> Oracle for D {
    fn name(&self) -> &str {
        Detector::name(self)
    }

    fn submit(&self, bytes: &[u8]) -> Result<Verdict, OracleFault> {
        Ok(self.classify(bytes))
    }

    fn submit_batch(&self, items: &[&[u8]], out: &mut Vec<Result<Verdict, OracleFault>>) {
        let mut verdicts = Vec::with_capacity(items.len());
        self.classify_batch(items, &mut verdicts);
        out.extend(verdicts.into_iter().map(Ok));
    }
}

/// Fault-injection schedule parameters for an [`UnreliableOracle`].
///
/// Probabilities are per submission attempt. `burst_cap` bounds the
/// consecutive faults injected in a row; keeping it below the retry
/// policy's `max_attempts` guarantees every query eventually delivers a
/// verdict, which is what makes injected transient faults semantically
/// transparent to an attack (same verdicts, extra retries).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Seed of the deterministic fault schedule.
    pub seed: u64,
    /// Probability of a transient failure per submission.
    pub transient: f64,
    /// Probability of a rate-limit response per submission.
    pub rate_limited: f64,
    /// Retry-after hint attached to rate-limit responses.
    pub retry_after_ms: u64,
    /// Probability of a slow (but successful) response.
    pub slow: f64,
    /// Added latency of a slow response; `0` records the event without
    /// sleeping (the default — simulated campaigns want the schedule,
    /// not the wall-clock).
    pub slow_ms: u64,
    /// Maximum consecutive injected faults; `0` disables the cap.
    pub burst_cap: u32,
    /// After this many submissions the service goes down for good and
    /// every further submission is [`OracleFault::Fatal`].
    pub outage_after: Option<u64>,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            seed: 0x0FA1_7000,
            transient: 0.15,
            rate_limited: 0.05,
            retry_after_ms: 20,
            slow: 0.05,
            slow_ms: 0,
            burst_cap: 2,
            outage_after: None,
        }
    }
}

impl FaultProfile {
    /// The default fault mix under a specific schedule seed.
    pub fn seeded(seed: u64) -> Self {
        FaultProfile { seed, ..FaultProfile::default() }
    }

    /// This profile re-keyed to another seed (e.g. mixed with a shard
    /// seed so every shard draws an independent schedule).
    pub fn reseeded(&self, seed: u64) -> Self {
        FaultProfile { seed, ..*self }
    }
}

#[derive(Debug, Default)]
struct FaultState {
    submissions: u64,
    consecutive_faults: u32,
    faults_injected: u64,
}

/// What the schedule decided for one submission.
enum Decision {
    Deliver { slow: bool },
    Inject(OracleFault),
}

/// A [`Detector`] wrapped in a deterministic fault injector.
///
/// Injected faults are recorded to the `oracle/fault_transient`,
/// `oracle/fault_rate_limited`, `oracle/fault_fatal` and
/// `oracle/fault_slow` metrics counters.
pub struct UnreliableOracle<'a> {
    inner: &'a dyn Detector,
    profile: FaultProfile,
    state: Mutex<FaultState>,
}

impl<'a> UnreliableOracle<'a> {
    /// Wrap `inner` with the fault schedule described by `profile`.
    pub fn new(inner: &'a dyn Detector, profile: FaultProfile) -> Self {
        UnreliableOracle { inner, profile, state: Mutex::new(FaultState::default()) }
    }

    /// The schedule parameters.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// The wrapped detector.
    pub fn inner(&self) -> &'a dyn Detector {
        self.inner
    }

    /// Submissions seen so far (delivered or faulted).
    pub fn submissions(&self) -> u64 {
        self.state().submissions
    }

    /// Faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.state().faults_injected
    }

    fn state(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Decide submission `index`'s fate and update the burst state.
    /// Called under the state lock; pure in `(profile.seed, index)`
    /// apart from the burst cap, which depends on submission order —
    /// itself deterministic for a single-threaded shard.
    fn decide(&self, state: &mut FaultState, index: u64) -> Decision {
        if let Some(outage) = self.profile.outage_after {
            if index >= outage {
                state.faults_injected += 1;
                return Decision::Inject(OracleFault::Fatal);
            }
        }
        let capped = self.profile.burst_cap > 0
            && state.consecutive_faults >= self.profile.burst_cap;
        let draw = unit(self.profile.seed, index, 1);
        if !capped && draw < self.profile.transient {
            state.consecutive_faults += 1;
            state.faults_injected += 1;
            return Decision::Inject(OracleFault::Transient);
        }
        if !capped && draw < self.profile.transient + self.profile.rate_limited {
            state.consecutive_faults += 1;
            state.faults_injected += 1;
            return Decision::Inject(OracleFault::RateLimited {
                retry_after_ms: self.profile.retry_after_ms,
            });
        }
        state.consecutive_faults = 0;
        Decision::Deliver { slow: unit(self.profile.seed, index, 2) < self.profile.slow }
    }
}

impl Oracle for UnreliableOracle<'_> {
    fn name(&self) -> &str {
        Detector::name(self.inner)
    }

    fn submit(&self, bytes: &[u8]) -> Result<Verdict, OracleFault> {
        let decision = {
            let mut state = self.state();
            let index = state.submissions;
            state.submissions += 1;
            self.decide(&mut state, index)
        };
        match decision {
            Decision::Inject(fault) => {
                match fault {
                    OracleFault::Transient => trace::counter("oracle/fault_transient", 1),
                    OracleFault::RateLimited { .. } => {
                        trace::counter("oracle/fault_rate_limited", 1)
                    }
                    OracleFault::Fatal => trace::counter("oracle/fault_fatal", 1),
                }
                Err(fault)
            }
            Decision::Deliver { slow } => {
                if slow {
                    trace::counter("oracle/fault_slow", 1);
                    if self.profile.slow_ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(
                            self.profile.slow_ms,
                        ));
                    }
                }
                // Classification runs outside the state lock.
                Ok(self.inner.classify(bytes))
            }
        }
    }

    fn submit_batch(&self, items: &[&[u8]], out: &mut Vec<Result<Verdict, OracleFault>>) {
        // One lock round-trip decides the whole batch, advancing the
        // per-submission schedule index item by item — exactly the
        // indices (and burst-cap state transitions) a sequential loop
        // of `submit` calls would consume.
        let decisions: Vec<Decision> = {
            let mut state = self.state();
            items
                .iter()
                .map(|_| {
                    let index = state.submissions;
                    state.submissions += 1;
                    self.decide(&mut state, index)
                })
                .collect()
        };
        let mut delivered: Vec<&[u8]> = Vec::with_capacity(items.len());
        for (bytes, decision) in items.iter().zip(&decisions) {
            match decision {
                Decision::Inject(fault) => match fault {
                    OracleFault::Transient => trace::counter("oracle/fault_transient", 1),
                    OracleFault::RateLimited { .. } => {
                        trace::counter("oracle/fault_rate_limited", 1)
                    }
                    OracleFault::Fatal => trace::counter("oracle/fault_fatal", 1),
                },
                Decision::Deliver { slow } => {
                    if *slow {
                        trace::counter("oracle/fault_slow", 1);
                        if self.profile.slow_ms > 0 {
                            std::thread::sleep(std::time::Duration::from_millis(
                                self.profile.slow_ms,
                            ));
                        }
                    }
                    delivered.push(bytes);
                }
            }
        }
        // The delivered subset rides the detector's batched scorer.
        let mut verdicts = Vec::with_capacity(delivered.len());
        self.inner.classify_batch(&delivered, &mut verdicts);
        let mut verdicts = verdicts.into_iter();
        out.reserve(decisions.len());
        for decision in decisions {
            out.push(match decision {
                Decision::Inject(fault) => Err(fault),
                Decision::Deliver { .. } => {
                    Ok(verdicts.next().expect("one verdict per delivered item"))
                }
            });
        }
    }
}

/// A uniform draw in `[0, 1)` keyed on `(seed, submission index, salt)`
/// through a SplitMix64 finalizer.
fn unit(seed: u64, index: u64, salt: u64) -> f64 {
    let mut z = seed
        ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ salt.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f32);
    impl Detector for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn score(&self, _: &[u8]) -> f32 {
            self.0
        }
    }

    fn kinds(oracle: &UnreliableOracle<'_>, n: usize) -> Vec<String> {
        (0..n)
            .map(|_| match oracle.submit(b"probe") {
                Ok(v) => v.to_string(),
                Err(f) => f.to_string(),
            })
            .collect()
    }

    #[test]
    fn reliable_detectors_are_oracles() {
        let det = Fixed(0.9);
        let oracle: &dyn Oracle = &det;
        assert_eq!(oracle.name(), "fixed");
        assert_eq!(oracle.submit(b"x"), Ok(Verdict::Malicious));
    }

    #[test]
    fn schedule_is_replayable() {
        let det = Fixed(0.9);
        let a = UnreliableOracle::new(&det, FaultProfile::seeded(7));
        let b = UnreliableOracle::new(&det, FaultProfile::seeded(7));
        assert_eq!(kinds(&a, 200), kinds(&b, 200));
        assert!(a.faults_injected() > 0, "default mix must inject something in 200 tries");
        assert_eq!(a.faults_injected(), b.faults_injected());
        assert_eq!(a.submissions(), 200);
    }

    #[test]
    fn different_seeds_draw_different_schedules() {
        let det = Fixed(0.9);
        let a = UnreliableOracle::new(&det, FaultProfile::seeded(7));
        let b = UnreliableOracle::new(&det, FaultProfile::seeded(8));
        assert_ne!(kinds(&a, 200), kinds(&b, 200));
    }

    #[test]
    fn burst_cap_bounds_consecutive_faults() {
        let det = Fixed(0.9);
        // Brutal fault rate, but bursts capped at 2.
        let profile = FaultProfile {
            transient: 0.9,
            rate_limited: 0.05,
            burst_cap: 2,
            ..FaultProfile::seeded(3)
        };
        let oracle = UnreliableOracle::new(&det, profile);
        let mut consecutive = 0u32;
        for _ in 0..500 {
            match oracle.submit(b"probe") {
                Err(_) => {
                    consecutive += 1;
                    assert!(consecutive <= 2, "burst cap violated");
                }
                Ok(_) => consecutive = 0,
            }
        }
    }

    #[test]
    fn delivered_verdicts_match_inner_detector() {
        let det = Fixed(0.9);
        let oracle = UnreliableOracle::new(&det, FaultProfile::seeded(11));
        for _ in 0..100 {
            if let Ok(v) = oracle.submit(b"probe") {
                assert_eq!(v, det.classify(b"probe"));
            }
        }
    }

    #[test]
    fn outage_is_permanent() {
        let det = Fixed(0.1);
        let profile = FaultProfile {
            transient: 0.0,
            rate_limited: 0.0,
            outage_after: Some(5),
            ..FaultProfile::seeded(1)
        };
        let oracle = UnreliableOracle::new(&det, profile);
        for _ in 0..5 {
            assert_eq!(oracle.submit(b"x"), Ok(Verdict::Benign));
        }
        for _ in 0..10 {
            assert_eq!(oracle.submit(b"x"), Err(OracleFault::Fatal));
        }
    }

    #[test]
    fn faults_are_counted_in_metrics() {
        let det = Fixed(0.9);
        let profile = FaultProfile {
            transient: 0.5,
            rate_limited: 0.3,
            burst_cap: 0,
            ..FaultProfile::seeded(5)
        };
        mpass_engine::metrics::install(mpass_engine::Collector::default());
        let oracle = UnreliableOracle::new(&det, profile);
        for _ in 0..100 {
            let _ = oracle.submit(b"probe");
        }
        let shard = mpass_engine::metrics::take().unwrap().finish("t", 0.0);
        let transient = shard.counters.get("oracle/fault_transient").copied().unwrap_or(0);
        let limited = shard.counters.get("oracle/fault_rate_limited").copied().unwrap_or(0);
        assert!(transient > 0 && limited > 0, "transient {transient}, limited {limited}");
        assert_eq!(transient + limited, oracle.faults_injected());
    }

    #[test]
    fn submit_batch_consumes_the_same_schedule_as_sequential_submits() {
        let det = Fixed(0.9);
        let seq = UnreliableOracle::new(&det, FaultProfile::seeded(7));
        let bat = UnreliableOracle::new(&det, FaultProfile::seeded(7));
        let items: Vec<Vec<u8>> = (0..64).map(|i| vec![i as u8; 4]).collect();
        let refs: Vec<&[u8]> = items.iter().map(|v| v.as_slice()).collect();
        let sequential: Vec<_> = refs.iter().map(|b| seq.submit(b)).collect();
        // Split across two batches to prove schedule state carries over.
        let mut batched = Vec::new();
        bat.submit_batch(&refs[..20], &mut batched);
        bat.submit_batch(&refs[20..], &mut batched);
        assert_eq!(sequential, batched);
        assert_eq!(seq.faults_injected(), bat.faults_injected());
        assert_eq!(seq.submissions(), bat.submissions());
    }

    #[test]
    fn reliable_batch_delivers_every_verdict() {
        let det = Fixed(0.9);
        let oracle: &dyn Oracle = &det;
        let mut out = Vec::new();
        oracle.submit_batch(&[b"a".as_slice(), b"b".as_slice()], &mut out);
        assert_eq!(out, vec![Ok(Verdict::Malicious), Ok(Verdict::Malicious)]);
    }

    #[test]
    fn profile_reseeding_keeps_the_mix() {
        let p = FaultProfile { transient: 0.4, ..FaultProfile::seeded(1) };
        let q = p.reseeded(99);
        assert_eq!(q.seed, 99);
        assert_eq!(q.transient, 0.4);
        assert_eq!(q.burst_cap, p.burst_cap);
    }
}
