//! Detector capability traits: the hard-label black-box interface and the
//! white-box interface of MPass's known-model ensemble.

use mpass_ml::{bce_with_logits, Embedding, Workspace};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// A hard-label classification result — the only signal the black-box
/// attacks receive from a target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// The detector flags the file.
    Malicious,
    /// The detector passes the file.
    Benign,
}

impl Verdict {
    /// `true` when the detector flagged the file.
    pub fn is_malicious(self) -> bool {
        self == Verdict::Malicious
    }

    /// `true` when the detector passed the file.
    pub fn is_benign(self) -> bool {
        self == Verdict::Benign
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Malicious => "malicious",
            Verdict::Benign => "benign",
        })
    }
}

/// A static malware detector over raw file bytes.
///
/// [`Detector::score`] exists for training/evaluation; the attack code
/// paths only consume [`Detector::classify`], preserving the paper's
/// hard-label threat model.
pub trait Detector: Send + Sync {
    /// Short stable name (used in tables).
    fn name(&self) -> &str;

    /// Malicious probability in `[0, 1]`.
    fn score(&self, bytes: &[u8]) -> f32;

    /// An uncalibrated continuous decision value (e.g. the pre-sigmoid
    /// logit). Explainability methods (PEM) difference this instead of
    /// [`Detector::score`]: a well-trained model saturates its probability
    /// near 0/1, flattening the marginal contributions Shapley values
    /// measure, while the margin keeps them visible. Defaults to the
    /// probability for detectors without a natural margin.
    fn raw_score(&self, bytes: &[u8]) -> f32 {
        self.score(bytes)
    }

    /// Decision threshold on [`Detector::score`].
    fn threshold(&self) -> f32 {
        0.5
    }

    /// Hard-label classification.
    fn classify(&self, bytes: &[u8]) -> Verdict {
        if self.score(bytes) > self.threshold() {
            Verdict::Malicious
        } else {
            Verdict::Benign
        }
    }

    /// Score a batch of files, appending one probability per item to
    /// `out` in input order.
    ///
    /// Contract: the appended scores are **bit-identical** to `N`
    /// sequential [`Detector::score`] calls — batching is a throughput
    /// optimization, never a numerics change. The default loops over
    /// `score`, so third-party detectors keep working unchanged;
    /// implementations override it to amortize per-call overhead
    /// (dispatch, feature extraction, scratch allocation) across the
    /// batch. `out` is appended to (not cleared) so callers can
    /// accumulate several batches into one buffer.
    fn score_batch(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        out.reserve(items.len());
        for bytes in items {
            out.push(self.score(bytes));
        }
    }

    /// Batched [`Detector::raw_score`]: append one margin per item to
    /// `out` in input order, bit-identical to `N` sequential calls.
    /// Consumers that difference margins in bulk (ensemble transfer loss,
    /// PEM ablation masks) go through this instead of `score_batch` for
    /// the same reason `raw_score` exists at all.
    fn raw_score_batch(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        out.reserve(items.len());
        for bytes in items {
            out.push(self.raw_score(bytes));
        }
    }

    /// `true` when [`Detector::score_quantized`] runs a genuinely
    /// quantized kernel instead of falling back to the f32 path.
    fn has_quantized_path(&self) -> bool {
        false
    }

    /// Malicious probability through the int8-quantized inference path,
    /// when the detector has one (`has_quantized_path`). An **opt-in**
    /// approximation: deterministic, batch-stable, and gated by
    /// bounded-error property tests (score divergence ≤ 1e-2 from
    /// [`Detector::score`], classification agreement ≥ 99% on generated
    /// corpora), but *not* bit-identical to the f32 score. Defaults to
    /// the f32 path so every detector can be asked.
    fn score_quantized(&self, bytes: &[u8]) -> f32 {
        self.score(bytes)
    }

    /// Batched [`Detector::score_quantized`]: append one probability per
    /// item to `out` in input order. Contract mirrors `score_batch`: the
    /// appended scores are **bit-identical** to `N` sequential
    /// `score_quantized` calls (integer accumulation has no association
    /// error, so batching quantized inference never changes numerics).
    fn score_quantized_batch(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        out.reserve(items.len());
        for bytes in items {
            out.push(self.score_quantized(bytes));
        }
    }

    /// Classify a batch of files, appending one verdict per item to
    /// `out` in input order. Equivalent to thresholding
    /// [`Detector::score_batch`] with the strict `>` of
    /// [`Detector::classify`].
    fn classify_batch(&self, items: &[&[u8]], out: &mut Vec<Verdict>) {
        let mut scores = Vec::new();
        self.score_batch(items, &mut scores);
        let threshold = self.threshold();
        out.reserve(scores.len());
        out.extend(scores.into_iter().map(|s| {
            if s > threshold {
                Verdict::Malicious
            } else {
                Verdict::Benign
            }
        }));
    }
}

/// Capability discovery over [`Detector`] trait objects.
///
/// Every concrete detector implements this; rosters can then be held as a
/// single `Vec<&dyn DetectorExt>` and the white-box subset (MPass's known
/// models) recovered with [`DetectorExt::as_white_box`] — no parallel
/// `&dyn Detector` / `&dyn WhiteBoxModel` lists.
pub trait DetectorExt: Detector {
    /// The white-box interface of this detector, if it exposes one.
    /// Defaults to `None`; gradient-capable models override it with
    /// `Some(self)`.
    fn as_white_box(&self) -> Option<&dyn WhiteBoxModel> {
        None
    }
}

/// A *known model* in MPass's ensemble transfer attack: a detector whose
/// byte-embedding table and input gradients are available (§III-D).
pub trait WhiteBoxModel: Detector {
    /// The byte-embedding table through which perturbations are lifted to
    /// continuous space and mapped back to bytes.
    fn embedding(&self) -> &Embedding;

    /// Number of leading file bytes the model consumes (its input window).
    fn window(&self) -> usize;

    /// Compute `ℒ(F(bytes), benign)` and its gradient with respect to the
    /// embedding vector of every input position, writing the gradient into
    /// `grad` (resized to `window() * embedding().dim()`) and drawing all
    /// scratch from `ws`.
    ///
    /// This is the allocation-free kernel of the attack loop: the model is
    /// `&self` throughout, so implementations cannot clone it for scratch
    /// parameter accumulators — the gradient path must be input-grad-only.
    /// Positions past the end of file correspond to the padding token and
    /// carry gradients too, though the attack never selects them.
    fn benign_loss_grad_into(&self, bytes: &[u8], ws: &mut Workspace, grad: &mut Vec<f32>)
        -> f32;

    /// Open a stateful inference session for repeated evaluation of
    /// *nearby* inputs (the optimizer mutates a handful of bytes per
    /// iteration). The default falls back to full recomputation per call;
    /// models with incremental kernels override it.
    fn session(&self) -> Box<dyn WhiteBoxSession + '_> {
        Box::new(FullSession { model: self, ws: Workspace::default() })
    }
}

/// A stateful white-box inference session over one evolving byte buffer.
///
/// Contract: across consecutive calls on one session, `dirty` must cover
/// every byte offset that changed since the previous call (supersets are
/// fine — they only cost extra recompute). The first call on a fresh
/// session recomputes everything regardless of `dirty`, as does any call
/// that changes `bytes.len()`. Incremental results are **exactly** equal
/// to a full recompute of the same session (bit-identical windows), never
/// an approximation.
pub trait WhiteBoxSession {
    /// The model's raw decision margin (pre-sigmoid logit) for `bytes`,
    /// recomputing only conv windows whose receptive field overlaps a
    /// dirty span.
    fn score_delta(&mut self, bytes: &[u8], dirty: &[Range<usize>]) -> f32;

    /// Benign-direction loss and input-space gradient for `bytes`, with
    /// the same incremental forward as [`WhiteBoxSession::score_delta`].
    /// `grad` is resized to `window() * embedding().dim()`.
    fn loss_grad_delta(
        &mut self,
        bytes: &[u8],
        dirty: &[Range<usize>],
        grad: &mut Vec<f32>,
    ) -> f32;
}

/// The non-incremental [`WhiteBoxSession`] fallback: every call is a full
/// recompute through the model's one-shot entry points. Correct for any
/// model; incremental implementations exist to beat it.
struct FullSession<'a, M: ?Sized + WhiteBoxModel> {
    model: &'a M,
    ws: Workspace,
}

impl<M: ?Sized + WhiteBoxModel> WhiteBoxSession for FullSession<'_, M> {
    fn score_delta(&mut self, bytes: &[u8], _dirty: &[Range<usize>]) -> f32 {
        self.model.raw_score(bytes)
    }

    fn loss_grad_delta(
        &mut self,
        bytes: &[u8],
        _dirty: &[Range<usize>],
        grad: &mut Vec<f32>,
    ) -> f32 {
        self.model.benign_loss_grad_into(bytes, &mut self.ws, grad)
    }
}

/// `bce_with_logits(logit, benign)` — the benign-direction loss every
/// white-box path derives from a raw logit. Exposed so sessions and
/// optimizers turn [`WhiteBoxSession::score_delta`] margins into losses
/// with the exact arithmetic of the gradient path.
pub fn benign_loss(logit: f32) -> f32 {
    bce_with_logits(logit, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f32);
    impl Detector for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn score(&self, _: &[u8]) -> f32 {
            self.0
        }
    }
    impl DetectorExt for Fixed {}

    #[test]
    fn classify_uses_threshold() {
        assert_eq!(Fixed(0.9).classify(b"x"), Verdict::Malicious);
        assert_eq!(Fixed(0.1).classify(b"x"), Verdict::Benign);
        assert_eq!(Fixed(0.5).classify(b"x"), Verdict::Benign); // strict >
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::Malicious.to_string(), "malicious");
        assert_eq!(Verdict::Benign.to_string(), "benign");
    }

    #[test]
    fn verdict_helpers() {
        assert!(Verdict::Malicious.is_malicious());
        assert!(!Verdict::Malicious.is_benign());
        assert!(Verdict::Benign.is_benign());
        assert!(!Verdict::Benign.is_malicious());
    }

    /// A detector whose score depends on the input, for batch-order tests.
    struct LenScore;
    impl Detector for LenScore {
        fn name(&self) -> &str {
            "len"
        }
        fn score(&self, bytes: &[u8]) -> f32 {
            bytes.len() as f32 / 10.0
        }
    }

    #[test]
    fn default_batch_methods_match_sequential_calls() {
        let det = LenScore;
        let items: Vec<&[u8]> = vec![b"abc", b"", b"0123456789", b"abcdef"];
        let mut scores = vec![f32::NAN]; // pre-existing entries survive
        det.score_batch(&items, &mut scores);
        assert!(scores[0].is_nan());
        for (batch, bytes) in scores[1..].iter().zip(&items) {
            assert_eq!(batch.to_bits(), det.score(bytes).to_bits());
        }
        let mut verdicts = Vec::new();
        det.classify_batch(&items, &mut verdicts);
        let seq: Vec<Verdict> = items.iter().map(|b| det.classify(b)).collect();
        assert_eq!(verdicts, seq);
    }

    #[test]
    fn batch_methods_are_object_safe() {
        let d: Box<dyn Detector> = Box::new(LenScore);
        let mut out = Vec::new();
        d.classify_batch(&[b"0123456789".as_slice(), b"x".as_slice()], &mut out);
        assert_eq!(out, vec![Verdict::Malicious, Verdict::Benign]);
    }

    #[test]
    fn detector_is_object_safe() {
        let d: Box<dyn Detector> = Box::new(Fixed(0.7));
        assert_eq!(d.classify(b"y"), Verdict::Malicious);
    }

    #[test]
    fn as_white_box_defaults_to_none() {
        let d: &dyn DetectorExt = &Fixed(0.7);
        assert!(d.as_white_box().is_none());
        // The black-box interface stays available through the same object.
        assert_eq!(d.classify(b"y"), Verdict::Malicious);
    }
}
