//! Byte n-gram signature store — the continual-learning component of the
//! simulated commercial AVs.
//!
//! Real ML AVs "constantly learn from abundant samples submitted" (paper
//! §IV-C). The tractable, transparent mechanism reproduced here is n-gram
//! mining: given a batch of submitted (adversarial) samples, find byte
//! n-grams shared by a large fraction of the batch but absent from a clean
//! reference corpus, and add them as detection signatures. Attacks whose
//! perturbations carry a fixed pattern (fixed packer stubs, a fixed donor
//! section set, a language model's repetitive output) are learned within
//! one update; MPass's shuffled stubs and per-sample benign content leave
//! no shared gram to mine — which is exactly the Figure-4 dynamic.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Width of mined byte n-grams.
pub const GRAM_LEN: usize = 12;
/// Width of the novelty sub-windows checked against the clean reference.
pub const SUBGRAM_LEN: usize = 8;

fn gram_hash(window: &[u8]) -> u64 {
    // FNV-1a over the fixed-width window.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in window {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Offset where a file's content region begins. Header bytes are excluded
/// from mining: unrelated executables share header structure (alignments,
/// default sizes, round entry addresses), so header grams would be
/// false-positive-prone "signatures" no real engine would ship.
/// Unparseable blobs are mined whole.
fn content_start(bytes: &[u8]) -> usize {
    match mpass_binary::BinaryImage::parse_auto(bytes) {
        Ok(mpass_binary::BinaryImage::Pe(pe)) => {
            (pe.optional().size_of_headers as usize).min(bytes.len())
        }
        // A Mach-O's header region is the mach header plus its load
        // commands.
        Ok(mpass_binary::BinaryImage::MachO(m)) => {
            (mpass_macho::cmds::MACH_HEADER_SIZE + m.sizeofcmds() as usize)
                .min(bytes.len())
        }
        Err(_) => 0,
    }
}

/// Distinct grams (raw windows) of one file's content region (stride 1).
fn raw_grams_of(bytes: &[u8]) -> HashSet<Vec<u8>> {
    let content = &bytes[content_start(bytes)..];
    if content.len() < GRAM_LEN {
        return HashSet::new();
    }
    content.windows(GRAM_LEN).map(|w| w.to_vec()).collect()
}

/// A grow-only store of byte n-gram signatures.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignatureStore {
    grams: HashSet<u64>,
}

impl SignatureStore {
    /// Empty store.
    pub fn new() -> Self {
        SignatureStore::default()
    }

    /// Number of stored signatures.
    pub fn len(&self) -> usize {
        self.grams.len()
    }

    /// Whether the store holds no signatures.
    pub fn is_empty(&self) -> bool {
        self.grams.is_empty()
    }

    /// Whether `bytes` contains any stored signature gram.
    pub fn matches(&self, bytes: &[u8]) -> bool {
        if self.grams.is_empty() || bytes.len() < GRAM_LEN {
            return false;
        }
        bytes.windows(GRAM_LEN).any(|w| self.grams.contains(&gram_hash(w)))
    }

    /// Mine signatures from `submissions`: grams occurring in at least
    /// `min_support` distinct submissions are candidates; a candidate is
    /// stored only when it is *entirely novel* relative to
    /// `clean_reference` — none of its [`SUBGRAM_LEN`]-byte sub-windows may
    /// occur anywhere in the reference. Real engines FP-test candidate
    /// signatures against goodware corpora orders of magnitude larger than
    /// our reference; the sub-window novelty requirement approximates that
    /// scale, rejecting signatures built from fragments of known-benign
    /// content (shared string-table entries, common instruction idioms) in
    /// merely novel juxtapositions. At most `cap` new signatures are
    /// stored per call (most-shared first). Returns how many were added.
    pub fn mine(
        &mut self,
        submissions: &[&[u8]],
        clean_reference: &[&[u8]],
        min_support: usize,
        cap: usize,
    ) -> usize {
        if submissions.is_empty() {
            return 0;
        }
        // Support counting keeps the raw windows (not just hashes) so the
        // novelty check can inspect sub-windows.
        let mut support: HashMap<Vec<u8>, usize> = HashMap::new();
        for s in submissions {
            for g in raw_grams_of(s) {
                *support.entry(g).or_insert(0) += 1;
            }
        }
        let mut clean_sub: HashSet<u64> = HashSet::new();
        for c in clean_reference {
            let start = content_start(c);
            let content = &c[start..];
            if content.len() >= SUBGRAM_LEN {
                clean_sub.extend(content.windows(SUBGRAM_LEN).map(gram_hash));
            }
        }
        let novel = |g: &[u8]| -> bool {
            g.windows(SUBGRAM_LEN).all(|w| !clean_sub.contains(&gram_hash(w)))
        };
        // Low-diversity grams — a couple of distinct bytes amid padding —
        // would match the zero-padded regions of arbitrary executables.
        // Real engines impose entropy floors on byte signatures for the
        // same reason; require at least four distinct byte values.
        let diverse = |g: &[u8]| -> bool {
            let mut seen = [false; 256];
            let mut n = 0;
            for &b in g {
                if !seen[b as usize] {
                    seen[b as usize] = true;
                    n += 1;
                }
            }
            n >= 4
        };
        let mut candidates: Vec<(Vec<u8>, usize)> = support
            .into_iter()
            .filter(|(g, n)| {
                *n >= min_support
                    && !self.grams.contains(&gram_hash(g))
                    && diverse(g)
                    && novel(g)
            })
            .collect();
        candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let added = candidates.len().min(cap);
        for (g, _) in candidates.into_iter().take(added) {
            self.grams.insert(gram_hash(&g));
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_pattern(pattern: &[u8], filler_seed: u8, len: usize) -> Vec<u8> {
        let mut v: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(filler_seed | 1)).collect();
        let at = len / 2;
        v[at..at + pattern.len()].copy_from_slice(pattern);
        v
    }

    const PATTERN: &[u8] = b"FIXED_STUB_PATTERN";

    #[test]
    fn mines_shared_pattern() {
        let subs: Vec<Vec<u8>> =
            (0..10).map(|i| with_pattern(PATTERN, i as u8, 400)).collect();
        let sub_refs: Vec<&[u8]> = subs.iter().map(|v| v.as_slice()).collect();
        let mut store = SignatureStore::new();
        let added = store.mine(&sub_refs, &[], 5, 64);
        assert!(added > 0);
        // A fresh file carrying the same pattern is now detected.
        let fresh = with_pattern(PATTERN, 99, 300);
        assert!(store.matches(&fresh));
        // A file without the pattern is not.
        let clean: Vec<u8> = (0..300).map(|i| (i % 251) as u8).collect();
        assert!(!store.matches(&clean));
    }

    #[test]
    fn clean_reference_suppresses_mining() {
        let subs: Vec<Vec<u8>> = (0..10).map(|i| with_pattern(PATTERN, i, 400)).collect();
        let sub_refs: Vec<&[u8]> = subs.iter().map(|v| v.as_slice()).collect();
        let clean = with_pattern(PATTERN, 200, 500);
        let mut store = SignatureStore::new();
        store.mine(&sub_refs, &[clean.as_slice()], 5, 64);
        let fresh = with_pattern(PATTERN, 99, 300);
        assert!(!store.matches(&fresh), "benign-known grams must not become signatures");
    }

    #[test]
    fn unshared_content_is_not_mined() {
        // Every submission has entirely different content.
        let subs: Vec<Vec<u8>> = (0..10u64)
            .map(|i| {
                (0..400u64)
                    .map(|j| ((i * 131 + j * 17 + (i * j) % 7) % 256) as u8)
                    .collect()
            })
            .collect();
        let sub_refs: Vec<&[u8]> = subs.iter().map(|v| v.as_slice()).collect();
        let mut store = SignatureStore::new();
        let added = store.mine(&sub_refs, &[], 4, 64);
        assert_eq!(added, 0);
    }

    #[test]
    fn cap_limits_additions() {
        // Identical varied content in every submission: far more than one
        // candidate gram qualifies, but the cap admits only one.
        let subs: Vec<Vec<u8>> =
            (0..6).map(|_| (0..600u32).map(|j| (j % 251) as u8).collect()).collect();
        let sub_refs: Vec<&[u8]> = subs.iter().map(|v| v.as_slice()).collect();
        let mut store = SignatureStore::new();
        let added = store.mine(&sub_refs, &[], 3, 1);
        assert_eq!(added, 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn min_support_respected() {
        let mut subs: Vec<Vec<u8>> = (0..9u64)
            .map(|i| (0..300u64).map(|j| ((i * 37 + j * 11) % 256) as u8).collect())
            .collect();
        subs.push(with_pattern(PATTERN, 1, 400)); // pattern only once
        let sub_refs: Vec<&[u8]> = subs.iter().map(|v| v.as_slice()).collect();
        let mut store = SignatureStore::new();
        store.mine(&sub_refs, &[], 3, 64);
        assert!(!store.matches(&with_pattern(PATTERN, 42, 300)));
    }

    #[test]
    fn short_inputs_are_safe() {
        let mut store = SignatureStore::new();
        assert_eq!(store.mine(&[b"short".as_slice()], &[], 1, 10), 0);
        assert!(!store.matches(b"tiny"));
    }
}
