//! Hot-swappable scoring target: an atomic epoch/`Arc` model slot.
//!
//! A long-lived scoring service (`mpass serve`) must survive the
//! commercial-AV weekly-learning dynamic: the model behind it is
//! retrained and replaced *while requests are in flight*. The
//! [`SwappableDetector`] makes that safe with the classic epoch/`Arc`
//! scheme:
//!
//! * the live model lives in a slot as `Arc<dyn Detector>` tagged with a
//!   monotonically increasing **epoch** number;
//! * every scoring call snapshots the slot **once** (cloning the `Arc`,
//!   not the model) and runs entirely against that snapshot — a batch
//!   never straddles a swap, and an in-flight request keeps its model
//!   alive through the `Arc` even after a swap retires it from the slot;
//! * [`SwappableDetector::swap`] publishes a new model atomically and
//!   bumps the epoch; readers that snapshotted before the swap finish on
//!   the old model, readers after get the new one. Nothing blocks, and
//!   no request is ever dropped or torn across models.
//!
//! The slot itself is a `RwLock` held only for the duration of an `Arc`
//! clone (a few instructions) — scoring work happens outside it, so
//! swap latency is bounded by the slowest *snapshot*, not the slowest
//! *request*.

use crate::traits::{Detector, Verdict};
use std::sync::{Arc, RwLock};

struct Slot {
    model: Arc<dyn Detector>,
    epoch: u64,
}

/// A [`Detector`] whose underlying model can be replaced atomically at
/// runtime. See the module docs for the epoch/`Arc` scheme.
///
/// The swappable carries its own stable `name` (the slot's models may
/// have different names across epochs, and `Detector::name` must return
/// a `&str` that outlives the slot snapshot).
pub struct SwappableDetector {
    name: String,
    slot: RwLock<Slot>,
}

impl SwappableDetector {
    /// A slot serving `initial` at epoch 1.
    pub fn new(name: impl Into<String>, initial: Arc<dyn Detector>) -> Self {
        SwappableDetector {
            name: name.into(),
            slot: RwLock::new(Slot { model: initial, epoch: 1 }),
        }
    }

    /// Snapshot the live model and its epoch. The returned `Arc` keeps
    /// that model alive regardless of later swaps; callers score against
    /// the snapshot so one logical operation never spans two models.
    pub fn current(&self) -> (Arc<dyn Detector>, u64) {
        let slot = self.slot.read().unwrap_or_else(|p| p.into_inner());
        (Arc::clone(&slot.model), slot.epoch)
    }

    /// The epoch of the live model.
    pub fn epoch(&self) -> u64 {
        self.slot.read().unwrap_or_else(|p| p.into_inner()).epoch
    }

    /// Atomically publish `next` as the live model and return the new
    /// epoch. In-flight snapshots of the previous model stay valid; new
    /// snapshots observe `next`.
    pub fn swap(&self, next: Arc<dyn Detector>) -> u64 {
        let mut slot = self.slot.write().unwrap_or_else(|p| p.into_inner());
        slot.model = next;
        slot.epoch += 1;
        slot.epoch
    }
}

impl Detector for SwappableDetector {
    fn name(&self) -> &str {
        &self.name
    }

    fn score(&self, bytes: &[u8]) -> f32 {
        let (model, _) = self.current();
        model.score(bytes)
    }

    fn raw_score(&self, bytes: &[u8]) -> f32 {
        let (model, _) = self.current();
        model.raw_score(bytes)
    }

    fn threshold(&self) -> f32 {
        let (model, _) = self.current();
        model.threshold()
    }

    fn classify(&self, bytes: &[u8]) -> Verdict {
        let (model, _) = self.current();
        model.classify(bytes)
    }

    // One snapshot per *batch*: a batched call is one logical operation
    // and must never straddle a swap mid-batch.
    fn score_batch(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        let (model, _) = self.current();
        model.score_batch(items, out);
    }

    fn raw_score_batch(&self, items: &[&[u8]], out: &mut Vec<f32>) {
        let (model, _) = self.current();
        model.raw_score_batch(items, out);
    }

    fn classify_batch(&self, items: &[&[u8]], out: &mut Vec<Verdict>) {
        let (model, _) = self.current();
        model.classify_batch(items, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    struct Fixed {
        name: &'static str,
        score: f32,
    }
    impl Detector for Fixed {
        fn name(&self) -> &str {
            self.name
        }
        fn score(&self, _: &[u8]) -> f32 {
            self.score
        }
    }

    #[test]
    fn swap_bumps_epoch_and_changes_verdicts() {
        let swappable = SwappableDetector::new(
            "live",
            Arc::new(Fixed { name: "v1", score: 0.9 }),
        );
        assert_eq!(swappable.epoch(), 1);
        assert_eq!(swappable.name(), "live");
        assert_eq!(swappable.classify(b"x"), Verdict::Malicious);

        let epoch = swappable.swap(Arc::new(Fixed { name: "v2", score: 0.1 }));
        assert_eq!(epoch, 2);
        assert_eq!(swappable.epoch(), 2);
        assert_eq!(swappable.classify(b"x"), Verdict::Benign);
    }

    #[test]
    fn snapshot_survives_a_swap() {
        let swappable =
            SwappableDetector::new("live", Arc::new(Fixed { name: "v1", score: 0.9 }));
        let (old, epoch) = swappable.current();
        assert_eq!(epoch, 1);
        swappable.swap(Arc::new(Fixed { name: "v2", score: 0.1 }));
        // The pre-swap snapshot still scores with the old model.
        assert_eq!(old.score(b"x"), 0.9);
        // Fresh snapshots see the new one.
        let (new, epoch) = swappable.current();
        assert_eq!(epoch, 2);
        assert_eq!(new.score(b"x"), 0.1);
    }

    #[test]
    fn batch_snapshots_once_even_if_a_swap_lands_mid_batch() {
        // A malicious-scoring model that, on its first score call, swaps
        // the slot over to a benign-scoring model. If the swappable
        // re-snapshotted per item, items after the first would come back
        // benign; the single-snapshot contract keeps the whole batch on
        // the epoch that was live when the batch started.
        struct SwapsOutFromUnder {
            slot: Arc<SwappableDetector>,
            fired: AtomicBool,
        }
        impl Detector for SwapsOutFromUnder {
            fn name(&self) -> &str {
                "trap"
            }
            fn score(&self, _: &[u8]) -> f32 {
                if !self.fired.swap(true, Ordering::SeqCst) {
                    self.slot.swap(Arc::new(Fixed { name: "v2", score: 0.1 }));
                }
                0.9
            }
        }

        let swappable = Arc::new(SwappableDetector::new(
            "live",
            Arc::new(Fixed { name: "seed", score: 0.5 }),
        ));
        let trap = Arc::new(SwapsOutFromUnder {
            slot: Arc::clone(&swappable),
            fired: AtomicBool::new(false),
        });
        swappable.swap(trap); // epoch 2: the trap is live
        let mut out = Vec::new();
        swappable.classify_batch(&[b"a".as_slice(), b"b".as_slice(), b"c".as_slice()], &mut out);
        // All three items scored through the trap (0.9 -> malicious),
        // even though the trap replaced itself after item one.
        assert_eq!(out, vec![Verdict::Malicious; 3]);
        // The swap the trap performed is visible to *new* calls.
        assert_eq!(swappable.epoch(), 3);
        assert_eq!(swappable.classify(b"x"), Verdict::Benign);
    }

    #[test]
    fn concurrent_swaps_and_scores_are_safe() {
        let swappable =
            SwappableDetector::new("live", Arc::new(Fixed { name: "v1", score: 0.9 }));
        std::thread::scope(|scope| {
            let s = &swappable;
            let swapper = scope.spawn(move || {
                for i in 0..50u32 {
                    let score = if i % 2 == 0 { 0.1 } else { 0.9 };
                    s.swap(Arc::new(Fixed { name: "vN", score }));
                }
            });
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(move || {
                        for _ in 0..50 {
                            // Every read must be a coherent verdict from
                            // *some* epoch — never a torn state.
                            let v = s.classify(b"x");
                            assert!(v.is_malicious() || v.is_benign());
                        }
                    })
                })
                .collect();
            swapper.join().expect("swapper panicked");
            for r in readers {
                r.join().expect("reader panicked");
            }
        });
        assert_eq!(swappable.epoch(), 51);
    }
}
