//! EMBER-style static feature extraction for the tree/dense detectors.
//!
//! Features cover exactly the signal families real static detectors use:
//! byte-distribution statistics, per-section-kind structure and entropy,
//! header metadata, statically visible API invocations (the "invocations to
//! sensitive APIs" the paper names as carried by code sections), and string
//! indicators. Extraction is container-neutral: it reads images through the
//! [`BinaryFormat`] trait, so PE and Mach-O samples land in the same
//! feature space (the PE path is bit-identical to the historical PE-only
//! extractor). Unparseable files fall back to whole-file byte statistics.

use mpass_binary::{BinaryFormat, BinaryImage, SectionKind};
use mpass_pe::{entropy, window_entropy_into};
use mpass_vm::{api, INSTR_SIZE};
use serde::{Deserialize, Serialize};

/// Number of coarse byte-histogram buckets.
const HIST_BUCKETS: usize = 32;
/// Section kinds receiving dedicated feature slots.
const KINDS: [SectionKind; 6] = [
    SectionKind::Code,
    SectionKind::Data,
    SectionKind::ReadOnlyData,
    SectionKind::Resource,
    SectionKind::Relocation,
    SectionKind::Other,
];
/// Substrings whose presence is a string-indicator feature.
const SUSPICIOUS_STRINGS: &[&str] =
    &["http://", "ENCRYPT", "vssadmin", "stratum+", "\\Run\\", "botnet_"];

/// Dual-use import names that receive an indicator feature. The first four
/// are PE import symbols; the last is the Mach-O dylib the corpus treats as
/// dual-use (a Mach-O image's import surface is its dylib list).
const DUAL_USE_IMPORTS: &[&str] = &[
    "VirtualAllocEx",
    "WriteProcessMemory",
    "CreateRemoteThread",
    "AdjustTokenPrivileges",
    "/usr/lib/libproc.dylib",
];

/// Total feature dimensionality.
pub const FEATURE_DIM: usize = HIST_BUCKETS     // byte histogram
    + 4                                          // global: entropy, log-size, max/mean window entropy
    + 6                                          // header features
    + KINDS.len() * 3                            // per-kind: present, size ratio, entropy
    + 32                                         // static API call counts (ids 1..=32)
    + SUSPICIOUS_STRINGS.len()                   // string indicators
    + 3                                          // overlay: present, size ratio, entropy
    + 4; // imports: present, dll count, symbol count, dual-use fraction

/// Stateless extractor producing fixed-size feature vectors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureExtractor;

/// Reusable scratch buffers for [`FeatureExtractor::extract_with`].
/// Batched scoring extracts thousands of candidates; holding the
/// window-entropy buffer, the section-concatenation buffer, and the API
/// counter array across items makes that loop allocation-free.
#[derive(Debug, Clone)]
pub struct FeatureScratch {
    we: Vec<f64>,
    all: Vec<u8>,
    api: [usize; 33],
}

impl Default for FeatureScratch {
    fn default() -> Self {
        FeatureScratch { we: Vec::new(), all: Vec::new(), api: [0; 33] }
    }
}

impl FeatureScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        FeatureScratch::default()
    }
}

impl FeatureExtractor {
    /// Create an extractor.
    pub fn new() -> Self {
        FeatureExtractor
    }

    /// The dimensionality of extracted vectors.
    pub fn dim(&self) -> usize {
        FEATURE_DIM
    }

    /// Extract features from raw file bytes.
    pub fn extract(&self, bytes: &[u8]) -> Vec<f32> {
        let mut f = Vec::with_capacity(FEATURE_DIM);
        self.extract_into(bytes, &mut f);
        f
    }

    /// Extract features into a reused buffer (cleared first), with private
    /// scratch allocated per call. Prefer [`FeatureExtractor::extract_with`]
    /// in batched loops so the scratch survives across items.
    pub fn extract_into(&self, bytes: &[u8], f: &mut Vec<f32>) {
        let mut scratch = FeatureScratch::new();
        self.extract_with(bytes, &mut scratch, f);
    }

    /// Extract features into a reused buffer (cleared first), reusing
    /// `scratch` across calls. The arithmetic is identical to
    /// [`FeatureExtractor::extract_into`] — only the allocations move.
    pub fn extract_with(&self, bytes: &[u8], scratch: &mut FeatureScratch, f: &mut Vec<f32>) {
        f.clear();
        // --- byte histogram (coarse, normalized) ---
        let hist = mpass_pe::byte_histogram(bytes);
        let total = bytes.len().max(1) as f32;
        for bucket in 0..HIST_BUCKETS {
            let lo = bucket * (256 / HIST_BUCKETS);
            let hi = lo + 256 / HIST_BUCKETS;
            let count: u64 = hist[lo..hi].iter().sum();
            f.push(count as f32 / total);
        }
        // --- global statistics ---
        f.push(entropy(bytes) as f32 / 8.0);
        f.push((bytes.len() as f32).ln() / 16.0);
        window_entropy_into(bytes, 256, &mut scratch.we);
        let max_we = scratch.we.iter().cloned().fold(0.0f64, f64::max);
        let mean_we = scratch.we.iter().sum::<f64>() / scratch.we.len().max(1) as f64;
        f.push(max_we as f32 / 8.0);
        f.push(mean_we as f32 / 8.0);

        let image = BinaryImage::parse_auto(bytes).ok();
        let metas: Vec<_> = image
            .iter()
            .flat_map(|img| (0..img.section_count()).filter_map(|i| img.section_meta(i)))
            .collect();
        // --- header features ---
        match &image {
            Some(image) => {
                f.push(metas.len() as f32 / 16.0);
                let ts = image.timestamp();
                f.push(if ts == 0 || ts > 0x7000_0000 { 1.0 } else { 0.0 });
                f.push((ts as f32) / (u32::MAX as f32));
                let entry = image.entry_point();
                let entry_idx = image.section_index_containing_va(entry).unwrap_or(0);
                f.push(entry_idx as f32 / 16.0);
                let last = metas.len().saturating_sub(1);
                f.push(if entry_idx == last && last > 0 { 1.0 } else { 0.0 });
                let std_names = metas.iter().filter(|m| m.standard_name).count();
                f.push(1.0 - std_names as f32 / metas.len().max(1) as f32);
            }
            None => f.extend_from_slice(&[0.0; 6]),
        }
        // --- per-kind section features ---
        match &image {
            Some(image) => {
                for kind in KINDS {
                    let all = &mut scratch.all;
                    all.clear();
                    let mut present = false;
                    for (i, _) in metas.iter().enumerate().filter(|(_, m)| m.kind == kind) {
                        if let Some(d) = image.section_data(i) {
                            present = true;
                            all.extend_from_slice(d);
                        }
                    }
                    if !present {
                        f.extend_from_slice(&[0.0, 0.0, 0.0]);
                    } else {
                        f.push(1.0);
                        f.push(all.len() as f32 / total);
                        f.push(entropy(all) as f32 / 8.0);
                    }
                }
            }
            None => f.extend_from_slice(&[0.0; 18]),
        }
        // --- static API invocation counts ---
        count_api_opcodes_into(bytes, &mut scratch.api);
        let code_units = (bytes.len() / INSTR_SIZE).max(1) as f32;
        for id in 1..=32usize {
            f.push(scratch.api[id] as f32 * 64.0 / code_units);
        }
        // --- string indicators ---
        for s in SUSPICIOUS_STRINGS {
            f.push(if contains_subslice(bytes, s.as_bytes()) { 1.0 } else { 0.0 });
        }
        // --- overlay features ---
        match &image {
            Some(image) if !image.overlay().is_empty() => {
                f.push(1.0);
                f.push(image.overlay().len() as f32 / total);
                f.push(entropy(image.overlay()) as f32 / 8.0);
            }
            _ => f.extend_from_slice(&[0.0, 0.0, 0.0]),
        }
        // --- import-surface features ---
        match image.as_ref().and_then(|image| image.imports_summary()) {
            Some(summary) => {
                let dual = summary
                    .symbols
                    .iter()
                    .filter(|n| DUAL_USE_IMPORTS.contains(&n.as_str()))
                    .count();
                f.push(1.0);
                f.push(summary.libraries as f32 / 16.0);
                f.push(summary.symbol_count as f32 / 128.0);
                f.push(dual as f32 / summary.symbols.len().max(1) as f32);
            }
            None => f.extend_from_slice(&[0.0; 4]),
        }
        debug_assert_eq!(f.len(), FEATURE_DIM);
    }
}

/// Count statically visible `CallApi` encodings anywhere in the file (any
/// byte offset — detectors cannot assume instruction alignment). `counts`
/// is zeroed first and indexed by API id; id 0 is never counted. A fixed
/// array replaces the old per-call hash map: ids are dense in `1..=32`, so
/// direct indexing is both faster and allocation-free.
fn count_api_opcodes_into(bytes: &[u8], counts: &mut [usize; 33]) {
    counts.fill(0);
    if bytes.len() < INSTR_SIZE {
        return;
    }
    for i in 0..=bytes.len() - INSTR_SIZE {
        // CallApi encodes as [0x30, 0, 0, 0, id_lo, id_hi, 0, 0].
        if bytes[i] == 0x30
            && bytes[i + 1] == 0
            && bytes[i + 2] == 0
            && bytes[i + 3] == 0
            && bytes[i + 6] == 0
            && bytes[i + 7] == 0
        {
            let id = u16::from_le_bytes([bytes[i + 4], bytes[i + 5]]);
            if (1..=32).contains(&id) {
                counts[id as usize] += 1;
            }
        }
    }
}

fn contains_subslice(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// Count of statically visible *suspicious* API invocations — a convenience
/// used by tests and the ablation analysis.
pub fn suspicious_api_count(bytes: &[u8]) -> usize {
    let mut counts = [0usize; 33];
    count_api_opcodes_into(bytes, &mut counts);
    counts
        .iter()
        .enumerate()
        .filter(|(id, _)| api::ApiId(*id as u16).is_suspicious())
        .map(|(_, c)| *c)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_corpus::{CorpusConfig, Dataset};

    fn tiny() -> Dataset {
        Dataset::generate(&CorpusConfig {
            n_malware: 8,
            n_benign: 8,
            seed: 11,
            no_slack_fraction: 0.0,
        })
    }

    #[test]
    fn dimension_is_stable() {
        let fx = FeatureExtractor::new();
        let ds = tiny();
        for s in &ds.samples {
            assert_eq!(fx.extract(&s.bytes).len(), FEATURE_DIM);
        }
        // Non-PE garbage still extracts.
        assert_eq!(fx.extract(&[0u8; 100]).len(), FEATURE_DIM);
        assert_eq!(fx.extract(&[]).len(), FEATURE_DIM);
    }

    #[test]
    fn features_are_finite_and_bounded() {
        let fx = FeatureExtractor::new();
        for s in &tiny().samples {
            for (i, v) in fx.extract(&s.bytes).iter().enumerate() {
                assert!(v.is_finite(), "feature {i} not finite");
                assert!(*v >= 0.0, "feature {i} negative: {v}");
            }
        }
    }

    #[test]
    fn malware_has_suspicious_api_features() {
        let ds = tiny();
        for s in ds.malware() {
            assert!(suspicious_api_count(&s.bytes) >= 3, "{}", s.name);
        }
        for s in ds.benign() {
            assert!(suspicious_api_count(&s.bytes) <= 1, "{}", s.name);
        }
    }

    #[test]
    fn classes_are_separable_in_feature_space() {
        // A trivial centroid classifier over our features must beat chance
        // comfortably, otherwise detectors have nothing to learn.
        let fx = FeatureExtractor::new();
        let ds = tiny();
        let mean = |samples: &[&mpass_corpus::Sample]| -> Vec<f32> {
            let mut m = vec![0.0f32; FEATURE_DIM];
            for s in samples {
                for (mi, v) in m.iter_mut().zip(fx.extract(&s.bytes)) {
                    *mi += v;
                }
            }
            m.iter().map(|v| v / samples.len() as f32).collect()
        };
        let mal_c = mean(&ds.malware());
        let ben_c = mean(&ds.benign());
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
        };
        let mut correct = 0;
        for s in &ds.samples {
            let f = fx.extract(&s.bytes);
            let pred_mal = dist(&f, &mal_c) < dist(&f, &ben_c);
            if pred_mal == (s.label == mpass_corpus::Label::Malware) {
                correct += 1;
            }
        }
        // The corpus deliberately avoids linear shortcuts (packed benign,
        // dropper malware, neutral strings); a naive centroid only needs to
        // beat chance clearly.
        assert!(correct >= 12, "centroid classifier got {correct}/16");
    }

    #[test]
    fn overlay_features_respond() {
        let fx = FeatureExtractor::new();
        let ds = tiny();
        let s = &ds.samples[0];
        let base = fx.extract(&s.bytes);
        let mut pe = s.pe().unwrap().clone();
        pe.append_overlay(&[0xAB; 2048]);
        let with = fx.extract(&pe.to_bytes());
        let off = FEATURE_DIM - 7; // overlay features precede the 4 import features
        assert_eq!(base[off], 0.0);
        assert_eq!(with[off], 1.0);
        assert!(with[off + 1] > 0.0);
    }

    #[test]
    fn macho_samples_share_the_feature_space() {
        let fx = FeatureExtractor::new();
        let ds = Dataset::generate_mixed(
            &CorpusConfig { n_malware: 8, n_benign: 8, seed: 11, no_slack_fraction: 0.0 },
            1.0,
        );
        for s in &ds.samples {
            assert_eq!(s.format(), mpass_binary::Format::MachO, "{}", s.name);
            let f = fx.extract(&s.bytes);
            assert_eq!(f.len(), FEATURE_DIM);
            for (i, v) in f.iter().enumerate() {
                assert!(v.is_finite() && *v >= 0.0, "{}: feature {i} = {v}", s.name);
            }
            // Structural features must engage: sections were found and at
            // least one landed in the Code bucket.
            let hdr = HIST_BUCKETS + 4;
            assert!(f[hdr] > 0.0, "{}: no sections seen", s.name);
            assert_eq!(f[hdr + 6], 1.0, "{}: no code section seen", s.name);
        }
        // Suspicious-API separation carries over to Mach-O code sections.
        // Load-command words can alias the CallApi encoding (a 0x30 u32
        // followed by a small u32), so benign counts are compared in
        // aggregate rather than held to the PE corpus's exact bound.
        for s in ds.malware() {
            assert!(suspicious_api_count(&s.bytes) >= 3, "{}", s.name);
        }
        let mal: usize = ds.malware().iter().map(|s| suspicious_api_count(&s.bytes)).sum();
        let ben: usize = ds.benign().iter().map(|s| suspicious_api_count(&s.bytes)).sum();
        assert!(
            mal > 2 * ben.max(1),
            "static API signal does not separate: malware {mal} vs benign {ben}"
        );
    }

    #[test]
    fn macho_dylib_surface_reaches_import_features() {
        let fx = FeatureExtractor::new();
        let ds = Dataset::generate_mixed(
            &CorpusConfig { n_malware: 4, n_benign: 4, seed: 5, no_slack_fraction: 0.0 },
            1.0,
        );
        let present = FEATURE_DIM - 4;
        for s in &ds.samples {
            let f = fx.extract(&s.bytes);
            assert_eq!(f[present], 1.0, "{}: dylib list invisible", s.name);
            assert!(f[present + 1] > 0.0, "{}: zero libraries", s.name);
        }
    }

    #[test]
    fn api_counter_detects_unaligned_patterns() {
        let mut bytes = vec![0u8; 64];
        // Place a CallApi(20) pattern at an odd offset.
        let enc = mpass_vm::Instr::CallApi(mpass_vm::api::ENCRYPT_USER_FILES).encode();
        bytes[13..21].copy_from_slice(&enc);
        assert_eq!(suspicious_api_count(&bytes), 1);
    }
}
