//! Shared training helpers.

use mpass_corpus::Sample;

/// Borrowed `(bytes, target)` pairs from samples, in sample order.
pub fn training_pairs<'a>(samples: &[&'a Sample]) -> Vec<(&'a [u8], f32)> {
    samples.iter().map(|s| (s.bytes.as_slice(), s.label.target())).collect()
}

/// Score/label pairs for metric computation over a detector. Goes through
/// [`crate::Detector::score_batch`] (bit-identical to per-sample `score`
/// calls) so evaluation over a corpus pays batch rates.
pub fn score_pairs<D: crate::Detector + ?Sized>(
    detector: &D,
    samples: &[&Sample],
) -> Vec<(f32, f32)> {
    let items: Vec<&[u8]> = samples.iter().map(|s| s.bytes.as_slice()).collect();
    let mut scores = Vec::with_capacity(items.len());
    detector.score_batch(&items, &mut scores);
    scores.into_iter().zip(samples).map(|(score, s)| (score, s.label.target())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_corpus::{CorpusConfig, Dataset};

    #[test]
    fn pairs_align_with_labels() {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 3,
            n_benign: 3,
            seed: 1,
            no_slack_fraction: 0.0,
        });
        let samples: Vec<_> = ds.samples.iter().collect();
        let pairs = training_pairs(&samples);
        assert_eq!(pairs.len(), 6);
        assert!(pairs[..3].iter().all(|(_, t)| *t == 1.0));
        assert!(pairs[3..].iter().all(|(_, t)| *t == 0.0));
    }
}
