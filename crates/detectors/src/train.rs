//! Shared training helpers.

use mpass_corpus::Sample;

/// Borrowed `(bytes, target)` pairs from samples, in sample order.
pub fn training_pairs<'a>(samples: &[&'a Sample]) -> Vec<(&'a [u8], f32)> {
    samples.iter().map(|s| (s.bytes.as_slice(), s.label.target())).collect()
}

/// Score/label pairs for metric computation over a detector.
pub fn score_pairs<D: crate::Detector + ?Sized>(
    detector: &D,
    samples: &[&Sample],
) -> Vec<(f32, f32)> {
    samples.iter().map(|s| (detector.score(&s.bytes), s.label.target())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_corpus::{CorpusConfig, Dataset};

    #[test]
    fn pairs_align_with_labels() {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 3,
            n_benign: 3,
            seed: 1,
            no_slack_fraction: 0.0,
        });
        let samples: Vec<_> = ds.samples.iter().collect();
        let pairs = training_pairs(&samples);
        assert_eq!(pairs.len(), 6);
        assert!(pairs[..3].iter().all(|(_, t)| *t == 1.0));
        assert!(pairs[3..].iter().all(|(_, t)| *t == 0.0));
    }
}
