//! Engine-pooled behavioural validation of candidate batches.
//!
//! [`Sandbox::validate_batch`] validates candidates sequentially against a
//! shared [`Baseline`]; this module spreads the same work across the
//! engine shard pool, one shard per candidate, so a campaign can amortize
//! a single baseline execution over an arbitrarily wide candidate wave.
//! Per-shard metrics (a `validation/candidates` counter) flow through the
//! usual collector, so `mpass engine-report` shows validation volume next
//! to the attack shards.

use mpass_engine::{metrics as trace, Engine, Shard};
use mpass_sandbox::{Baseline, FunctionalityVerdict, Sandbox, SandboxError};

/// Validate `candidates` against `sample`'s behaviour across the engine
/// worker pool. The sample is baselined exactly once; every candidate
/// replays against the shared baseline under an early-aborting comparing
/// sink. Verdicts come back in input order.
pub fn validate_batch_pooled(
    engine: &Engine,
    sandbox: &Sandbox,
    sample: &[u8],
    candidates: &[&[u8]],
) -> Result<Vec<FunctionalityVerdict>, SandboxError> {
    let baseline = sandbox.baseline_digest(sample)?;
    Ok(validate_against_pooled(engine, sandbox, &baseline, candidates))
}

/// [`validate_batch_pooled`] for a caller that already holds the
/// [`Baseline`] (e.g. one baseline reused across several waves).
pub fn validate_against_pooled(
    engine: &Engine,
    sandbox: &Sandbox,
    baseline: &Baseline,
    candidates: &[&[u8]],
) -> Vec<FunctionalityVerdict> {
    let shards: Vec<Shard<&[u8]>> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| Shard::new(format!("validate/{i}"), *c))
        .collect();
    let run = engine.run(shards, |_ctx, bytes: &[u8]| {
        trace::counter("validation/candidates", 1);
        sandbox.verify_candidate(baseline, bytes)
    });
    // The verify path is panic-free, but a pool-level failure must not
    // silently shift verdict positions: reconstruct input order, filling
    // any failed slot with the conservative non-preserved verdict.
    let mut results = run.results.into_iter();
    let failed: std::collections::HashSet<usize> =
        run.failures.iter().map(|f| f.index).collect();
    (0..candidates.len())
        .map(|i| {
            if failed.contains(&i) {
                FunctionalityVerdict::BrokenExecution { outcome: mpass_vm::Outcome::Aborted }
            } else {
                results.next().unwrap_or(FunctionalityVerdict::BrokenParse)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_corpus::{CorpusConfig, Dataset};

    fn dataset() -> Dataset {
        Dataset::generate(&CorpusConfig {
            n_malware: 4,
            n_benign: 1,
            seed: 31,
            no_slack_fraction: 0.0,
        })
    }

    #[test]
    fn pooled_matches_sequential_validation() {
        let ds = dataset();
        let sandbox = Sandbox::new();
        let engine = Engine::new(mpass_engine::EngineConfig { workers: 2, seed: 9 });
        let sample = &ds.samples[0];
        let garbage = vec![0u8; 48];
        let candidates: Vec<&[u8]> = ds
            .samples
            .iter()
            .map(|s| s.bytes.as_slice())
            .chain(std::iter::once(garbage.as_slice()))
            .collect();
        let baseline = sandbox.baseline_digest(&sample.bytes).unwrap();
        let sequential = sandbox.validate_batch(&baseline, &candidates);
        let pooled =
            validate_batch_pooled(&engine, &sandbox, &sample.bytes, &candidates).unwrap();
        assert_eq!(sequential, pooled);
        assert!(pooled[0].is_preserved());
        assert_eq!(*pooled.last().unwrap(), FunctionalityVerdict::BrokenParse);
    }

    #[test]
    fn unparseable_sample_is_a_typed_error() {
        let sandbox = Sandbox::new();
        let engine = Engine::new(Default::default());
        let err = validate_batch_pooled(&engine, &sandbox, &[0u8; 32], &[]).unwrap_err();
        assert!(matches!(err, SandboxError::Unparseable(_)));
    }
}
