//! EXP-DESIGN — ablations of MPass's own design choices, beyond the
//! paper's tables: they quantify *why* each §III component exists.
//!
//! * **Shuffle on/off** — with the shuffle disabled the recovery stub is a
//!   fixed byte pattern; one AV learning update should signature it,
//!   while shuffled stubs stay unminable (the Fig. 4 mechanism isolated).
//! * **Ensemble size** — transfer ASR against the never-differentiable
//!   LightGBM target as the known ensemble grows 1 → 3 models.
//! * **Init source** — benign-content initial perturbations versus random
//!   bytes: how often the very first query already bypasses.
//! * **Optimization budget** — ASR/AVQ versus iterations per round.

use crate::world::World;
use mpass_core::attack::metrics::summarize;
use mpass_core::modify::{modify, ModificationConfig};
use mpass_core::Attack as _;
use mpass_core::{HardLabelTarget, MPassAttack, MPassConfig, OptimizerConfig};
use mpass_corpus::BenignPool;
use mpass_detectors::Detector as _;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Results of the design ablations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesignResults {
    /// Fraction (%) of modified samples signature-matched after one AV
    /// learning update, with the shuffle enabled vs disabled.
    pub shuffle_on_minable: f64,
    /// Same with `shuffle: false`.
    pub shuffle_off_minable: f64,
    /// `(ensemble size, ASR %)` against LightGBM.
    pub ensemble_sweep: Vec<(usize, f64)>,
    /// `(label, first-query success %)` for benign vs random init.
    pub init_sweep: Vec<(String, f64)>,
    /// `(iterations per round, ASR %, AVQ)` against MalConv.
    pub budget_sweep: Vec<(usize, f64, f64)>,
}

impl DesignResults {
    /// Human-readable summary.
    pub fn summary(&self) -> String {
        let mut out = String::from("Design ablations:\n");
        out.push_str(&format!(
            "  stub minability after one AV update: shuffle ON {:.1}%  vs OFF {:.1}%\n",
            self.shuffle_on_minable, self.shuffle_off_minable
        ));
        out.push_str("  known-ensemble size vs ASR on LightGBM:");
        for (n, asr) in &self.ensemble_sweep {
            out.push_str(&format!("  {n} models -> {asr:.1}%"));
        }
        out.push('\n');
        out.push_str("  initial perturbation source, first-query bypass:");
        for (label, rate) in &self.init_sweep {
            out.push_str(&format!("  {label} {rate:.1}%"));
        }
        out.push('\n');
        out.push_str("  optimizer iterations/round vs (ASR, AVQ) on MalConv:");
        for (iters, asr, avq) in &self.budget_sweep {
            out.push_str(&format!("  γ={iters} -> ({asr:.1}%, {avq:.1})"));
        }
        out.push('\n');
        out
    }
}

fn minability(world: &World, shuffle: bool) -> f64 {
    let cfg = ModificationConfig { shuffle, ..ModificationConfig::default() };
    let mut rng = ChaCha8Rng::seed_from_u64(world.config.seed ^ 0xD51);
    let samples = world.dataset.malware();
    let n = samples.len().min(world.config.attack_samples.max(8));
    let modified: Vec<Vec<u8>> = samples
        .iter()
        .take(n)
        .filter_map(|s| modify(s, &world.pool, &cfg, &mut rng).ok().map(|m| m.bytes))
        .collect();
    if modified.is_empty() {
        return 0.0;
    }
    let mut av = world.avs[0].clone();
    let subs: Vec<&[u8]> = modified.iter().map(|v| v.as_slice()).collect();
    av.weekly_update(&subs);
    // Fresh modifications with new randomness: does the learned store
    // transfer?
    let mut rng = ChaCha8Rng::seed_from_u64(world.config.seed ^ 0xD52);
    let fresh: Vec<Vec<u8>> = samples
        .iter()
        .take(n)
        .filter_map(|s| modify(s, &world.pool, &cfg, &mut rng).ok().map(|m| m.bytes))
        .collect();
    let hits = fresh.iter().filter(|b| av.signature_matches(b)).count();
    100.0 * hits as f64 / fresh.len().max(1) as f64
}

/// Run all four ablations.
pub fn run(world: &World) -> DesignResults {
    let shuffle_on_minable = minability(world, true);
    let shuffle_off_minable = minability(world, false);

    // Ensemble-size sweep against LightGBM (black-box transfer only).
    let all = world.all_known_models();
    let mut ensemble_sweep = Vec::new();
    for n in 1..=all.len() {
        let mut attack = MPassAttack::new(
            all[..n].to_vec(),
            &world.pool,
            MPassConfig::builder()
                .seed(world.config.seed)
                .build()
                .expect("default MPass config is valid"),
        );
        let mut outcomes = Vec::new();
        let cap = world.config.attack_samples.min(12);
        for s in world.attack_set(&world.lightgbm).into_iter().take(cap) {
            let mut oracle = HardLabelTarget::new(&world.lightgbm, world.config.max_queries);
            outcomes.push(attack.attack(s, &mut oracle));
        }
        ensemble_sweep.push((n, summarize(&outcomes).asr));
    }

    // Init-source sweep: benign synthesizer vs random bytes; measure how
    // often the *first* modification (no optimization) bypasses MalConv.
    let mut init_sweep = Vec::new();
    let random_pool = {
        let mut rng = ChaCha8Rng::seed_from_u64(world.config.seed ^ 0xD53);
        BenignPool::from_chunks(
            (0..16).map(|_| (0..32 * 1024).map(|_| rng.gen()).collect()).collect(),
        )
    };
    for (label, pool) in [("benign", &world.pool), ("random", &random_pool)] {
        let mut rng = ChaCha8Rng::seed_from_u64(world.config.seed ^ 0xD54);
        let samples = world.attack_set(&world.malconv);
        let mut first_query_wins = 0;
        let mut total = 0;
        for s in &samples {
            if let Ok(ms) = modify(s, pool, &ModificationConfig::default(), &mut rng) {
                total += 1;
                if world.malconv.classify(&ms.bytes).is_benign() {
                    first_query_wins += 1;
                }
            }
        }
        init_sweep
            .push((label.to_owned(), 100.0 * first_query_wins as f64 / total.max(1) as f64));
    }

    // Optimization-budget sweep on MalConv.
    let mut budget_sweep = Vec::new();
    for iterations in [0usize, 5, 10, 20] {
        let cfg = MPassConfig::builder()
            .seed(world.config.seed)
            .optimizer(OptimizerConfig { iterations, ..OptimizerConfig::default() })
            .build()
            .expect("a positive iteration count keeps the config valid");
        let mut attack =
            MPassAttack::new(world.known_models_excluding("MalConv"), &world.pool, cfg);
        let mut outcomes = Vec::new();
        let cap = world.config.attack_samples.min(12);
        for s in world.attack_set(&world.malconv).into_iter().take(cap) {
            let mut oracle = HardLabelTarget::new(&world.malconv, world.config.max_queries);
            outcomes.push(attack.attack(s, &mut oracle));
        }
        let stats = summarize(&outcomes);
        budget_sweep.push((iterations, stats.asr, stats.avq));
    }

    DesignResults {
        shuffle_on_minable,
        shuffle_off_minable,
        ensemble_sweep,
        init_sweep,
        budget_sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn design_ablations_run_and_shuffle_matters() {
        let mut cfg = WorldConfig::quick();
        cfg.attack_samples = 3;
        let world = World::build(cfg);
        let results = run(&world);
        assert_eq!(results.ensemble_sweep.len(), 3);
        assert_eq!(results.init_sweep.len(), 2);
        assert_eq!(results.budget_sweep.len(), 4);
        // The load-bearing claim: the fixed (unshuffled) stub is minable,
        // the shuffled one is not.
        assert!(
            results.shuffle_off_minable > results.shuffle_on_minable,
            "shuffle off {} !> on {}",
            results.shuffle_off_minable,
            results.shuffle_on_minable
        );
        assert_eq!(results.shuffle_on_minable, 0.0);
        assert!(results.summary().contains("Design ablations"));
    }
}
