//! EXP-F4 — Figure 4: bypass rate of each attack's successful AEs over
//! five weekly commercial-AV learning updates.
//!
//! For each (attack, AV) pair, the AEs that bypassed the fresh AV are
//! re-submitted every simulated week; between weeks the AV runs its
//! continual-learning update over the submitted samples (n-gram signature
//! mining against its clean reference). Attacks whose perturbations share
//! fixed patterns are learned; MPass's shuffled, per-sample-randomized
//! perturbations leave nothing to mine.

use crate::commercial::CommercialResults;
use crate::world::World;
use mpass_detectors::Detector;
use mpass_engine::{metrics as trace, Engine, MetricsFile, Shard};
use serde::{Deserialize, Serialize};

/// Weekly bypass-rate series for one (attack, AV) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearningSeries {
    /// Attack name.
    pub attack: String,
    /// AV name.
    pub av: String,
    /// Bypass rate (%) at week 0 (always 100) through week `weeks`.
    pub bypass_rate: Vec<f64>,
    /// Signatures the AV accumulated by the final week.
    pub signatures_learned: usize,
}

/// Figure 4 results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearningResults {
    /// Number of update rounds (weeks after the first submission).
    pub weeks: usize,
    /// One series per (attack, AV) pair that produced at least one AE.
    pub series: Vec<LearningSeries>,
}

impl LearningResults {
    /// Format the Figure 4 panel for one AV.
    pub fn figure4(&self, av: &str) -> String {
        let x: Vec<String> = (0..=self.weeks).map(|w| format!("wk{w}")).collect();
        let rows: Vec<(String, Vec<f64>)> = self
            .series
            .iter()
            .filter(|s| s.av == av)
            .map(|s| (s.attack.clone(), s.bypass_rate.clone()))
            .collect();
        crate::table::format_series(
            &format!("Fig. 4 ({av}): bypass rate (%) of first-time-successful AEs under weekly AV learning."),
            "Attack",
            &x,
            &rows,
        )
    }

    /// Mean final-week bypass rate of one attack across AVs.
    pub fn final_bypass(&self, attack: &str) -> f64 {
        let finals: Vec<f64> = self
            .series
            .iter()
            .filter(|s| s.attack == attack)
            .filter_map(|s| s.bypass_rate.last().copied())
            .collect();
        if finals.is_empty() {
            0.0
        } else {
            finals.iter().sum::<f64>() / finals.len() as f64
        }
    }
}

/// Run the learning experiment on `engine` over previously collected
/// Figure-3 AEs, one shard per (attack, AV) pair with surviving AEs.
/// Each shard records its weekly bypass rate to the `learning/bypass`
/// metrics series and its query volume to the standard counters.
pub fn run_with_engine(
    world: &World,
    commercial: &CommercialResults,
    weeks: usize,
    engine: &Engine,
) -> (LearningResults, MetricsFile) {
    let eligible: Vec<&crate::commercial::CommercialCell> = commercial
        .cells
        .iter()
        .filter(|cell| !cell.successful_aes.is_empty())
        .filter(|cell| world.avs.iter().any(|a| a.name() == cell.av))
        .collect();
    let shards: Vec<Shard<&crate::commercial::CommercialCell>> = eligible
        .into_iter()
        .map(|cell| Shard::new(format!("{} AEs vs {}", cell.attack, cell.av), cell))
        .collect();
    let run = engine.run(shards, |_ctx, cell| {
        // Fresh copy of the AV so each attack's learning dynamic is
        // observed in isolation.
        let mut av = world
            .avs
            .iter()
            .find(|a| a.name() == cell.av)
            .expect("eligibility filter checked the roster")
            .clone();
        let mut bypass_rate = vec![100.0];
        for _week in 0..weeks {
            let submissions: Vec<&[u8]> =
                cell.successful_aes.iter().map(|v| v.as_slice()).collect();
            av.weekly_update(&submissions);
            let still = cell
                .successful_aes
                .iter()
                .filter(|ae| {
                    trace::counter("queries", 1);
                    av.classify(ae).is_benign()
                })
                .count();
            let rate = 100.0 * still as f64 / cell.successful_aes.len() as f64;
            trace::series("learning/bypass", rate);
            bypass_rate.push(rate);
        }
        LearningSeries {
            attack: cell.attack.clone(),
            av: cell.av.clone(),
            bypass_rate,
            signatures_learned: av.signature_count(),
        }
    });
    let metrics = MetricsFile::from_run("learning", &run);
    (LearningResults { weeks, series: run.results }, metrics)
}

/// Run the learning experiment on a default engine, discarding metrics.
pub fn run(world: &World, commercial: &CommercialResults, weeks: usize) -> LearningResults {
    run_with_engine(world, commercial, weeks, &Engine::new(Default::default())).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commercial::CommercialCell;
    use crate::world::WorldConfig;
    use mpass_core::attack::metrics::AttackStats;

    #[test]
    fn learning_series_start_at_hundred() {
        let world = World::build(WorldConfig::quick());
        // Craft a synthetic commercial result: one cell whose "AEs" are
        // malware with a fixed appended pattern (learnable) that the fresh
        // AV happens to pass — we don't need real evasion to test the
        // learning mechanics, only the bookkeeping.
        let aes: Vec<Vec<u8>> = world
            .dataset
            .malware()
            .iter()
            .take(6)
            .map(|s| {
                let mut pe = s.pe().unwrap().clone();
                pe.append_overlay(b"###FIXED-LEARNABLE-PATTERN-FOR-TEST###");
                pe.to_bytes()
            })
            .collect();
        let commercial = CommercialResults {
            cells: vec![CommercialCell {
                attack: "FixedPattern".into(),
                av: world.avs[0].name().to_owned(),
                stats: AttackStats { asr: 100.0, avq: 1.0, apr: 1.0, samples: 6 },
                successful_aes: aes,
            }],
        };
        let results = run(&world, &commercial, 4);
        assert_eq!(results.series.len(), 1);
        let s = &results.series[0];
        assert_eq!(s.bypass_rate.len(), 5);
        assert_eq!(s.bypass_rate[0], 100.0);
        // A fixed pattern must be learned: final bypass collapses.
        assert!(
            *s.bypass_rate.last().unwrap() < 50.0,
            "fixed pattern survived learning: {:?}",
            s.bypass_rate
        );
        assert!(s.signatures_learned > 0);
        let fig = results.figure4(&s.av);
        assert!(fig.contains("FixedPattern"));
    }
}
