//! EXP-PEM — the §III-B quantitative claim: PEM ranks code and data as
//! the top-2 critical sections across the known models, with the top-2
//! mean Shapley value 1.3–6.0× that of the third-ranked section.

use crate::world::World;
use mpass_core::pem::{run_pem, PemConfig, PemReport};
use mpass_detectors::DetectorExt;
use mpass_pe::SectionKind;
use serde::{Deserialize, Serialize};

/// PEM experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PemResults {
    /// The raw Algorithm 1 report.
    pub report: PemReport,
    /// Per-model top-2 / top-3 ratio (the paper's 1.3–6.0× claim).
    pub top2_over_top3: Vec<(String, Option<f64>)>,
    /// Whether code and data were the common critical sections.
    pub code_data_on_top: bool,
}

impl PemResults {
    /// Human-readable summary.
    pub fn summary(&self) -> String {
        let mut out = String::from("PEM (Algorithm 1) section ranking per known model:\n");
        for m in &self.report.per_model {
            out.push_str(&format!("  {}:", m.model));
            for (kind, v) in m.ranking.iter().take(5) {
                out.push_str(&format!(" {kind}={v:.4}"));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "common critical sections: {:?}\n",
            self.report
                .common_critical
                .iter()
                .map(|k| k.to_string())
                .collect::<Vec<_>>()
        ));
        for (m, r) in &self.top2_over_top3 {
            match r {
                Some(r) => out.push_str(&format!("  {m}: top2/top3 = {r:.2}x\n")),
                None => out.push_str(&format!("  {m}: top2/top3 undefined\n")),
            }
        }
        out.push_str(&format!("code+data on top: {}\n", self.code_data_on_top));
        out
    }
}

/// Run PEM over `n_samples` of the world's malware on the known models.
///
/// All four offline models participate: Algorithm 1 only evaluates
/// `f(x_ŝ)`, so the tree model joins the explainability ensemble even
/// though it cannot join the gradient attack (paper footnote 6 excludes it
/// from back-propagation, not from black-box scoring).
pub fn run(world: &World, n_samples: usize) -> PemResults {
    let samples: Vec<_> = world.dataset.malware().into_iter().take(n_samples).collect();
    let models: Vec<(&str, &dyn DetectorExt)> = vec![
        ("MalConv", &world.malconv as &dyn DetectorExt),
        ("NonNeg", &world.nonneg as &dyn DetectorExt),
        ("LightGBM", &world.lightgbm as &dyn DetectorExt),
        ("MalGCG", &world.malgcg as &dyn DetectorExt),
    ];
    let report = run_pem(&models, &samples, &PemConfig::default());
    let top2_over_top3 = report
        .per_model
        .iter()
        .map(|m| (m.model.clone(), m.top2_over_top3()))
        .collect();
    let code_data_on_top = report.common_critical.len() >= 2
        && report.common_critical[..2].contains(&SectionKind::Code)
        && report.common_critical[..2].contains(&SectionKind::Data);
    PemResults { report, top2_over_top3, code_data_on_top }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn pem_runs_and_summarizes() {
        let world = World::build(WorldConfig::quick());
        let results = run(&world, 4);
        assert_eq!(results.report.per_model.len(), 4);
        let s = results.summary();
        assert!(s.contains("MalConv"));
        assert!(s.contains("common critical sections"));
    }
}
