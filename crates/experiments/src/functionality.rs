//! EXP-FUNC — §IV-A "Verifying functionality-preserving": every AE from
//! the offline campaigns is executed in the sandbox and its API trace
//! compared with the original's. The paper finds 23 % of RLA's AEs broken
//! and every other attack's AEs intact.

use crate::offline::{OfflineResults, ATTACK_NAMES};
use serde::{Deserialize, Serialize};

/// Per-attack functionality verification summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FunctionalityResults {
    /// `(attack, broken %, AEs checked)` rows.
    pub rows: Vec<(String, f64, usize)>,
}

impl FunctionalityResults {
    /// Render the summary.
    pub fn summary(&self) -> String {
        let mut out =
            String::from("Functionality verification of successful AEs (Cuckoo-style sandbox):\n");
        for (attack, broken, checked) in &self.rows {
            out.push_str(&format!(
                "  {attack:<8} broken {broken:5.1}%  ({checked} AEs checked)\n"
            ));
        }
        out
    }
}

/// Aggregate the offline campaign's per-cell verification counters.
pub fn run(offline: &OfflineResults) -> FunctionalityResults {
    let rows = ATTACK_NAMES
        .iter()
        .map(|a| {
            let checked: usize = offline
                .cells
                .iter()
                .filter(|c| c.attack == *a)
                .map(|c| c.checked)
                .sum();
            ((*a).to_owned(), offline.broken_percent(a), checked)
        })
        .collect();
    FunctionalityResults { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::OfflineCell;
    use mpass_core::attack::metrics::AttackStats;

    #[test]
    fn aggregates_broken_percentages() {
        let offline = OfflineResults {
            cells: vec![
                OfflineCell {
                    attack: "RLA".into(),
                    target: "MalConv".into(),
                    stats: AttackStats { asr: 50.0, avq: 5.0, apr: 10.0, samples: 4 },
                    broken: 1,
                    checked: 4,
                },
                OfflineCell {
                    attack: "RLA".into(),
                    target: "NonNeg".into(),
                    stats: AttackStats { asr: 50.0, avq: 5.0, apr: 10.0, samples: 4 },
                    broken: 1,
                    checked: 4,
                },
                OfflineCell {
                    attack: "MPass".into(),
                    target: "MalConv".into(),
                    stats: AttackStats { asr: 100.0, avq: 2.0, apr: 10.0, samples: 4 },
                    broken: 0,
                    checked: 4,
                },
            ],
        };
        let f = run(&offline);
        let rla = f.rows.iter().find(|(a, _, _)| a == "RLA").unwrap();
        assert!((rla.1 - 25.0).abs() < 1e-9);
        assert_eq!(rla.2, 8);
        let mpass = f.rows.iter().find(|(a, _, _)| a == "MPass").unwrap();
        assert_eq!(mpass.1, 0.0);
        assert!(f.summary().contains("RLA"));
    }
}
