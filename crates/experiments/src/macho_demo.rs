//! EXP-MACHO — end-to-end demonstration of the multi-format binary layer.
//!
//! The paper evaluates MPass on Windows PE malware only; the question this
//! demo answers is whether the attack is really *format-agnostic* now that
//! modification runs against the [`BinaryFormat`] trait: an all-Mach-O
//! corpus is generated, byte-level detectors are trained on it, and the
//! unchanged MPass pipeline (encode critical sections, plant a recovery
//! stub in a fresh `__TEXT` section, retarget `LC_MAIN`, optimize the
//! free bytes against a transfer ensemble) attacks each detector under
//! the same 100-query hard-label budget. Every successful AE is executed
//! in the sandbox and its API trace compared with the original's.
//!
//! [`BinaryFormat`]: mpass_binary::BinaryFormat

use crate::table::format_table;
use mpass_binary::Format;
use mpass_core::attack::{
    metrics::{self, AttackStats},
    Attack, HardLabelTarget, MPassAttack, MPassConfig,
};
use mpass_corpus::{BenignPool, CorpusConfig, Dataset, Sample};
use mpass_detectors::train::training_pairs;
use mpass_detectors::{
    ByteConvConfig, Detector, MalConv, MalGcg, MalGcgConfig, NonNeg, WhiteBoxModel,
};
use mpass_sandbox::Sandbox;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the Mach-O demo world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachoDemoConfig {
    /// Corpus generation parameters (every sample is emitted as Mach-O).
    pub corpus: CorpusConfig,
    /// Benign programs harvested into the perturbation pool.
    pub benign_pool_programs: usize,
    /// Convolutional detector architecture.
    pub conv: ByteConvConfig,
    /// MalGCG architecture.
    pub malgcg: MalGcgConfig,
    /// Training epochs.
    pub conv_epochs: usize,
    /// Training learning rate.
    pub conv_lr: f32,
    /// Malware samples attacked per target.
    pub attack_samples: usize,
    /// Hard-label query budget per sample.
    pub max_queries: usize,
    /// Master seed.
    pub seed: u64,
}

impl MachoDemoConfig {
    /// The configuration behind the checked-in `results/exp_macho.json`.
    pub fn full() -> MachoDemoConfig {
        MachoDemoConfig {
            corpus: CorpusConfig {
                n_malware: 60,
                n_benign: 60,
                seed: 0xDAC2023,
                no_slack_fraction: 0.1,
            },
            benign_pool_programs: 20,
            conv: ByteConvConfig::default(),
            malgcg: MalGcgConfig::default(),
            conv_epochs: 5,
            conv_lr: 5e-3,
            attack_samples: 12,
            max_queries: 100,
            seed: 0x4D41_4348,
        }
    }

    /// A down-scaled configuration for tests and smoke runs.
    pub fn quick() -> MachoDemoConfig {
        MachoDemoConfig {
            corpus: CorpusConfig {
                n_malware: 16,
                n_benign: 16,
                seed: 0xDAC2023,
                no_slack_fraction: 0.1,
            },
            benign_pool_programs: 6,
            conv: ByteConvConfig::tiny(),
            malgcg: MalGcgConfig::tiny(),
            conv_epochs: 5,
            conv_lr: 5e-3,
            attack_samples: 5,
            max_queries: 100,
            seed: 0x4D41_4348,
        }
    }
}

/// One target's row of the demo.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachoDemoCell {
    /// Target detector name.
    pub target: String,
    /// Detection accuracy on the Mach-O corpus before the attack.
    pub accuracy: f64,
    /// ASR / AVQ / APR of MPass against this target.
    pub stats: AttackStats,
    /// Successful AEs whose sandbox API trace diverged from the original.
    pub broken: usize,
    /// Successful AEs executed in the sandbox.
    pub checked: usize,
}

/// Results of the Mach-O demo experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachoDemoResults {
    /// Corpus composition sanity counters.
    pub macho_samples: usize,
    /// Samples that were *not* Mach-O (must be 0).
    pub other_samples: usize,
    /// One row per attacked target.
    pub cells: Vec<MachoDemoCell>,
}

impl MachoDemoResults {
    /// Render the demo summary.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "Mach-O corpus: {} samples, {} non-Mach-O\n",
            self.macho_samples, self.other_samples
        );
        let columns: Vec<String> =
            ["Acc%", "ASR%", "AVQ", "APR%", "Broken"].iter().map(|s| (*s).to_owned()).collect();
        let rows: Vec<(String, Vec<f64>)> = self
            .cells
            .iter()
            .map(|c| {
                (
                    c.target.clone(),
                    vec![c.accuracy, c.stats.asr, c.stats.avq, c.stats.apr, c.broken as f64],
                )
            })
            .collect();
        out.push_str(&format_table(
            "MPass against detectors trained on an all-Mach-O corpus \
             (transfer ensemble = the other two models):",
            "Target",
            &columns,
            &rows,
            1,
        ));
        out
    }
}

/// Corpus accuracy of `det` over all samples.
fn accuracy(det: &dyn Detector, samples: &[&Sample]) -> f64 {
    let pairs = mpass_detectors::train::score_pairs(det, samples);
    mpass_ml::metrics::accuracy(&pairs, det.threshold()) as f64
}

/// Malware that `target` initially flags, capped at `n` — the paper's
/// sample-quality requirement (1), applied to the Mach-O corpus.
fn attack_set<'a>(dataset: &'a Dataset, target: &dyn Detector, n: usize) -> Vec<&'a Sample> {
    dataset
        .malware()
        .into_iter()
        .filter(|s| target.classify(&s.bytes).is_malicious())
        .take(n)
        .collect()
}

/// Run the demo: build the Mach-O world, attack every detector, verify
/// every AE's functionality. Deterministic in the configuration.
pub fn run(config: &MachoDemoConfig) -> MachoDemoResults {
    let dataset = Dataset::generate_mixed(&config.corpus, 1.0);
    let macho_samples =
        dataset.samples.iter().filter(|s| s.format() == Format::MachO).count();
    let other_samples = dataset.samples.len() - macho_samples;

    let pool = BenignPool::generate(config.benign_pool_programs, config.seed ^ 0xB00);
    let (train, _test) = dataset.split(5);
    let pairs = training_pairs(&train);

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x7281);
    let mut malconv = MalConv::new(config.conv, &mut rng);
    malconv.train(&pairs, config.conv_epochs, config.conv_lr, &mut rng);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x7282);
    let mut nonneg = NonNeg::new(config.conv, &mut rng);
    nonneg.train(&pairs, config.conv_epochs * 2, config.conv_lr, &mut rng);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x7283);
    let mut malgcg = MalGcg::new(config.malgcg, &mut rng);
    malgcg.train(&pairs, config.conv_epochs, config.conv_lr, &mut rng);

    let roster: Vec<(&str, &dyn Detector, &dyn WhiteBoxModel)> = vec![
        ("MalConv", &malconv, &malconv),
        ("NonNeg", &nonneg, &nonneg),
        ("MalGCG", &malgcg, &malgcg),
    ];
    let all_samples: Vec<&Sample> = dataset.samples.iter().collect();
    let sandbox = Sandbox::new();
    let attack_cfg = MPassConfig::builder()
        .seed(config.seed)
        .build()
        .unwrap_or_default();

    let mut cells = Vec::new();
    for (target_name, target, _) in &roster {
        // Transfer setting: the known ensemble is every model except the
        // target, exactly as in the PE evaluation (paper footnote 6).
        let known: Vec<&dyn WhiteBoxModel> = roster
            .iter()
            .filter(|(n, _, _)| n != target_name)
            .map(|(_, _, w)| *w)
            .collect();
        let mut attack = MPassAttack::new(known, &pool, attack_cfg.clone());
        let mut outcomes = Vec::new();
        let mut broken = 0;
        let mut checked = 0;
        for sample in attack_set(&dataset, *target, config.attack_samples) {
            let mut budget = HardLabelTarget::new(*target, config.max_queries);
            let outcome = attack.attack(sample, &mut budget);
            if let Some(ae) = &outcome.adversarial {
                checked += 1;
                if !sandbox.verify_functionality(&sample.bytes, ae).is_preserved() {
                    broken += 1;
                }
            }
            outcomes.push(outcome);
        }
        cells.push(MachoDemoCell {
            target: (*target_name).to_owned(),
            accuracy: accuracy(*target, &all_samples) * 100.0,
            stats: metrics::summarize(&outcomes),
            broken,
            checked,
        });
    }

    MachoDemoResults { macho_samples, other_samples, cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_demo_attacks_a_pure_macho_corpus() {
        let results = run(&MachoDemoConfig::quick());
        assert_eq!(results.other_samples, 0, "corpus must be pure Mach-O");
        assert!(results.macho_samples >= 32);
        assert_eq!(results.cells.len(), 3);
        for cell in &results.cells {
            assert!(cell.accuracy >= 70.0, "{} accuracy {}", cell.target, cell.accuracy);
            assert!(cell.stats.samples > 0, "{} attacked nothing", cell.target);
        }
        // The pipeline evades at least one target and never breaks
        // functionality: the recovery stub restores the encoded Mach-O
        // sections before the original entry runs.
        assert!(results.cells.iter().any(|c| c.stats.asr > 0.0), "no evasion anywhere");
        let broken: usize = results.cells.iter().map(|c| c.broken).sum();
        assert_eq!(broken, 0, "an AE lost functionality");
        assert!(results.summary().contains("MalConv"));
    }

    #[test]
    fn demo_is_deterministic() {
        let a = run(&MachoDemoConfig::quick());
        let b = run(&MachoDemoConfig::quick());
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}
