//! Paper-style plain-text table formatting.

/// Render a labelled grid as a text table:
///
/// ```text
/// TABLE I: ASR of attacking offline models.
/// Models    | MPass  RLA    MAB    GAMMA  MalRNN
/// ----------+-----------------------------------
/// MalConv   | 98.6   33.7   94.2   81.8   94.3
/// ```
pub fn format_table(
    title: &str,
    corner: &str,
    columns: &[String],
    rows: &[(String, Vec<f64>)],
    decimals: usize,
) -> String {
    let label_w = rows
        .iter()
        .map(|(l, _)| l.len())
        .chain(std::iter::once(corner.len()))
        .max()
        .unwrap_or(6)
        .max(6);
    let col_w = columns
        .iter()
        .map(|c| c.len())
        .max()
        .unwrap_or(6)
        .max(6)
        + 1;
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{corner:<label_w$} |"));
    for c in columns {
        out.push_str(&format!(" {c:>col_w$}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(label_w + 1));
    out.push('+');
    out.push_str(&"-".repeat((col_w + 1) * columns.len()));
    out.push('\n');
    for (label, values) in rows {
        out.push_str(&format!("{label:<label_w$} |"));
        for v in values {
            out.push_str(&format!(" {:>col_w$.decimals$}", v));
        }
        out.push('\n');
    }
    out
}

/// Render a series plot as text (one line per series), for the figures.
pub fn format_series(
    title: &str,
    x_label: &str,
    x_values: &[String],
    series: &[(String, Vec<f64>)],
) -> String {
    let rows: Vec<(String, Vec<f64>)> = series.to_vec();
    format_table(title, x_label, x_values, &rows, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_cells() {
        let t = format_table(
            "TABLE X: demo.",
            "Models",
            &["A".into(), "B".into()],
            &[("row1".into(), vec![1.25, 2.5]), ("row2".into(), vec![3.0, 4.75])],
            1,
        );
        assert!(t.contains("TABLE X"));
        assert!(t.contains("row1"));
        assert!(t.contains("1.2") || t.contains("1.3"));
        assert!(t.contains("4.8") || t.contains("4.7"));
        assert_eq!(t.lines().count(), 5);
    }

    #[test]
    fn series_is_a_table() {
        let s = format_series(
            "Fig: demo",
            "Week",
            &["0".into(), "1".into()],
            &[("MPass".into(), vec![100.0, 100.0])],
        );
        assert!(s.contains("MPass"));
        assert!(s.contains("100.0"));
    }
}
