//! EXP-F3 — Figure 3: ASR of the five attacks against the five simulated
//! commercial ML AVs, keeping successful AEs for the Figure 4 learning
//! experiment.

use crate::campaign::{CampaignOptions, ShardOracle};
use crate::journal::CampaignJournal;
use crate::offline::{make_attack, ATTACK_NAMES};
use crate::world::World;
use mpass_core::attack::metrics::{summarize, AttackStats};
use mpass_core::Attack;
use mpass_detectors::{CachedAv, Detector};
use mpass_engine::{metrics as trace, Engine, MetricsFile, Shard};
use serde::{Deserialize, Serialize};

/// One (attack, AV) cell with its surviving AEs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommercialCell {
    /// Attack name.
    pub attack: String,
    /// AV name.
    pub av: String,
    /// ASR/AVQ/APR statistics.
    pub stats: AttackStats,
    /// The successful adversarial examples (consumed by Fig. 4).
    pub successful_aes: Vec<Vec<u8>>,
}

/// Figure 3 results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommercialResults {
    /// All (attack, AV) cells.
    pub cells: Vec<CommercialCell>,
}

impl CommercialResults {
    /// Look up one cell.
    pub fn cell(&self, attack: &str, av: &str) -> Option<&CommercialCell> {
        self.cells.iter().find(|c| c.attack == attack && c.av == av)
    }

    /// Format the Figure 3 ASR grid.
    pub fn figure3(&self) -> String {
        let avs: Vec<String> = (1..=5).map(|i| format!("AV{i}")).collect();
        let rows: Vec<(String, Vec<f64>)> = crate::offline::ATTACK_NAMES
            .iter()
            .map(|a| {
                let vals = avs
                    .iter()
                    .map(|av| self.cell(a, av).map(|c| c.stats.asr).unwrap_or(f64::NAN))
                    .collect();
                ((*a).to_owned(), vals)
            })
            .collect();
        crate::table::format_table(
            "Fig. 3: ASR (%) of attack methods on commercial ML AVs.",
            "Attack",
            &avs,
            &rows,
            1,
        )
    }
}

/// Run one attack against one AV, collecting successful AE bytes.
pub fn attack_av(world: &World, attack: &mut dyn Attack, av: &dyn Detector) -> CommercialCell {
    let label = format!("{} vs {}", attack.name(), av.name());
    attack_av_with(world, attack, av, &label, &CampaignOptions::default(), None, 0)
}

/// [`attack_av`] with the full campaign machinery — see
/// [`crate::offline::attack_target_with`] for the resume semantics; the
/// collected `successful_aes` rebuild identically from journalled
/// outcomes because the AE bytes ride along in each record.
pub fn attack_av_with(
    world: &World,
    attack: &mut dyn Attack,
    av: &dyn Detector,
    label: &str,
    opts: &CampaignOptions,
    journal: Option<&CampaignJournal>,
    shard_seed: u64,
) -> CommercialCell {
    if let Some(cell) = journal.and_then(|j| j.shard_cell::<CommercialCell>(label)) {
        trace::counter("campaign/shard_resumed", 1);
        return cell;
    }
    let replay_samples = !attack.stateful_across_samples();
    let oracle = ShardOracle::build(av, opts, shard_seed);
    let samples = world.attack_set(av);
    let mut outcomes = Vec::with_capacity(samples.len());
    let mut successful_aes = Vec::new();
    for sample in samples {
        let resumed = replay_samples
            .then(|| journal.and_then(|j| j.sample(label, &sample.name)).cloned())
            .flatten();
        let mut outcome = match resumed {
            Some(outcome) => {
                trace::counter("campaign/sample_resumed", 1);
                outcome
            }
            None => {
                trace::begin_sample(&sample.name);
                let mut target = oracle.target(world.config.max_queries, &opts.retry, shard_seed);
                let outcome = attack.attack(sample, &mut target);
                if let Some(journal) = journal {
                    journal
                        .record_sample(label, &outcome)
                        .unwrap_or_else(|e| panic!("shard {label}: journal write failed: {e}"));
                }
                trace::end_sample();
                outcome
            }
        };
        if let Some(ae) = outcome.adversarial.take() {
            successful_aes.push(ae);
        }
        outcomes.push(outcome);
    }
    let cell = CommercialCell {
        attack: attack.name().to_owned(),
        av: av.name().to_owned(),
        stats: summarize(&outcomes),
        successful_aes,
    };
    if let Some(journal) = journal {
        journal
            .record_shard(label, &cell)
            .unwrap_or_else(|e| panic!("shard {label}: journal write failed: {e}"));
    }
    cell
}

/// Run the full Figure 3 experiment on `engine`, one shard per
/// (attack, AV) campaign. Against AVs the MPass ensemble is all three
/// differentiable offline models (the AVs themselves are black boxes),
/// which `make_attack` provides by excluding a non-AV name. Each shard
/// queries a memoizing [`CachedAv`] copy of its AV so the metrics file
/// records per-shard score-cache hit rates.
pub fn run_with_engine(world: &World, engine: &Engine) -> (CommercialResults, MetricsFile) {
    run_campaign(world, engine, &CampaignOptions::default())
        .expect("no journal configured, so no I/O can fail")
}

/// [`run_with_engine`] under explicit [`CampaignOptions`].
///
/// # Errors
///
/// Fails only on journal filesystem errors.
pub fn run_campaign(
    world: &World,
    engine: &Engine,
    opts: &CampaignOptions,
) -> std::io::Result<(CommercialResults, MetricsFile)> {
    let journal = opts.open_journal()?;
    let journal = journal.as_ref();
    let shards: Vec<Shard<(usize, &str)>> = world
        .avs
        .iter()
        .enumerate()
        .flat_map(|(i, av)| {
            ATTACK_NAMES
                .iter()
                .map(move |attack| Shard::new(format!("{attack} vs {}", av.name()), (i, *attack)))
        })
        .collect();
    let run = engine.run(shards, |ctx, (av_index, attack_name)| {
        let av = CachedAv::new(world.avs[av_index].clone());
        let mut attack = make_attack(world, "LightGBM", attack_name);
        attack_av_with(
            world,
            attack.as_mut(),
            &av,
            ctx.label(),
            opts,
            journal,
            engine.shard_seed(ctx.label()),
        )
    });
    let metrics = MetricsFile::from_run("commercial", &run);
    Ok((CommercialResults { cells: run.results }, metrics))
}

/// Run the full Figure 3 experiment on a default engine, discarding the
/// metrics (test/API convenience).
pub fn run(world: &World) -> CommercialResults {
    run_with_engine(world, &Engine::new(Default::default())).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn commercial_quick_run_shapes() {
        let mut cfg = WorldConfig::quick();
        cfg.attack_samples = 2;
        let world = World::build(cfg);
        let results = run(&world);
        assert_eq!(results.cells.len(), 5 * 5);
        let fig = results.figure3();
        assert!(fig.contains("AV3") && fig.contains("GAMMA"));
        // Successful AE count never exceeds evaded count implied by stats.
        for c in &results.cells {
            let max_evaded = (c.stats.asr / 100.0 * c.stats.samples as f64).round() as usize;
            assert!(c.successful_aes.len() <= max_evaded + 1, "{}/{}", c.attack, c.av);
        }
    }
}
