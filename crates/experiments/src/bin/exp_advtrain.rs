//! EXP-ADV: §VI adversarial-training evaluation.

use mpass_experiments::{advtrain, report, World};

fn main() {
    let args = report::CliArgs::parse();
    let world = World::build(args.world_config());
    let results = advtrain::run(&world);
    println!("{}", results.summary());
    match report::save_json("exp_advtrain", &results) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
