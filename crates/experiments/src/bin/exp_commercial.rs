//! EXP-F3: regenerate Figure 3 (ASR on the five commercial ML AVs).

use mpass_experiments::{commercial, report, World};

fn main() {
    let args = report::CliArgs::parse();
    let world = World::build(args.world_config());
    let engine = args.engine(world.config.seed);
    let opts = args.campaign_options("exp_commercial");
    let (results, metrics) = match commercial::run_campaign(&world, &engine, &opts) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("could not open campaign journal: {e}");
            std::process::exit(1);
        }
    };
    for failure in &metrics.failures {
        eprintln!("shard {} failed: {}", failure.label, failure.panic);
    }
    println!("{}", results.figure3());
    // AEs are large; persist only the stats.
    let slim: Vec<_> = results
        .cells
        .iter()
        .map(|c| (c.attack.clone(), c.av.clone(), c.stats))
        .collect();
    match report::save_json("exp_commercial", &slim) {
        Ok(p) => {
            println!("results written to {}", p.display());
            report::save_metrics(&p, &metrics);
        }
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
