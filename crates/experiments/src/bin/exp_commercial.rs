//! EXP-F3: regenerate Figure 3 (ASR on the five commercial ML AVs).
//!
//! `--processes N` distributes the AV grid across N worker processes
//! (this same binary, re-entered via the hidden `--orchestrate-work`
//! flag) and prints the figure from the merged report — byte-identical
//! to the single-process run's persisted stats.

use mpass_core::attack::metrics::AttackStats;
use mpass_experiments::commercial::{CommercialCell, CommercialResults};
use mpass_experiments::{commercial, orchestrator, report, World};

fn main() {
    if let Some(code) = orchestrator::maybe_run_worker_from_args() {
        std::process::exit(code);
    }
    let args = report::CliArgs::parse();
    if let Some(processes) = args.processes.filter(|n| *n > 0) {
        run_distributed(&args, processes);
        return;
    }
    let world = World::build(args.world_config());
    let engine = args.engine(world.config.seed);
    let opts = args.campaign_options("exp_commercial");
    let (results, metrics) = match commercial::run_campaign(&world, &engine, &opts) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("could not open campaign journal: {e}");
            std::process::exit(1);
        }
    };
    for failure in &metrics.failures {
        eprintln!("shard {} failed: {}", failure.label, failure.panic);
    }
    println!("{}", results.figure3());
    // AEs are large; persist only the stats.
    let slim: Vec<_> = results
        .cells
        .iter()
        .map(|c| (c.attack.clone(), c.av.clone(), c.stats))
        .collect();
    match report::save_json("exp_commercial", &slim) {
        Ok(p) => {
            println!("results written to {}", p.display());
            report::save_metrics(&p, &metrics);
        }
        Err(e) => eprintln!("could not write results: {e}"),
    }
}

fn run_distributed(args: &report::CliArgs, processes: usize) {
    let outcome = orchestrator::run_distributed(
        orchestrator::CampaignKind::Commercial,
        "exp_commercial",
        args.world_config(),
        args.faults,
        processes,
        args.resume,
    );
    let (summary, results_path) = match outcome {
        Ok(out) => out,
        Err(e) => {
            eprintln!("distributed campaign failed: {e}");
            std::process::exit(1);
        }
    };
    // The merged report is the slim (attack, av, stats) rows the
    // single-process run persists; rebuild a printable grid from them.
    match serde_json::from_str::<Vec<(String, String, AttackStats)>>(&summary.report) {
        Ok(rows) => {
            let results = CommercialResults {
                cells: rows
                    .into_iter()
                    .map(|(attack, av, stats)| CommercialCell {
                        attack,
                        av,
                        stats,
                        successful_aes: Vec::new(),
                    })
                    .collect(),
            };
            println!("{}", results.figure3());
        }
        Err(e) => eprintln!("merged report does not parse: {e}"),
    }
    println!(
        "campaign: {} shard(s) over {} process(es), {} reassigned, {} respawned",
        summary.shards, processes, summary.reassigned, summary.respawned
    );
    println!("results written to {}", results_path.display());
    println!("metrics  -> {}", mpass_engine::metrics_path(&results_path).display());
}
