//! EXP-T4: regenerate Table IV (obfuscators vs MPass on commercial AVs).

use mpass_experiments::{packers, report, World};

fn main() {
    let args = report::CliArgs::parse();
    let world = World::build(args.world_config());
    let engine = args.engine(world.config.seed);
    let (results, metrics) = packers::run_with_engine(&world, &engine, None);
    println!("{}", results.table4());
    match report::save_json("exp_packers", &results) {
        Ok(p) => {
            println!("results written to {}", p.display());
            report::save_metrics(&p, &metrics);
        }
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
