//! EXP-PEM: regenerate the §III-B critical-section finding.

use mpass_experiments::{pem, report, World};

fn main() {
    let args = report::CliArgs::parse();
    let world = World::build(args.world_config());
    println!("== detector health ==");
    for (name, acc) in world.detector_health() {
        println!("  {name:<10} accuracy {acc:.3}");
    }
    let n = world.config.attack_samples.min(20);
    let results = pem::run(&world, n);
    println!("{}", results.summary());
    match report::save_json("exp_pem", &results) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
