//! EXP-F4: regenerate Figure 4 (bypass rate under weekly AV learning).

use mpass_experiments::{commercial, learning, report, World};

fn main() {
    let args = report::CliArgs::parse();
    let world = World::build(args.world_config());
    let engine = args.engine(world.config.seed);
    let (fig3, _) = commercial::run_with_engine(&world, &engine);
    let (results, metrics) = learning::run_with_engine(&world, &fig3, 4, &engine);
    for av in world.avs.iter() {
        use mpass_detectors::Detector;
        println!("{}", results.figure4(av.name()));
    }
    println!(
        "final-week mean bypass: MPass {:.1}%  RLA {:.1}%  MAB {:.1}%  GAMMA {:.1}%  MalRNN {:.1}%",
        results.final_bypass("MPass"),
        results.final_bypass("RLA"),
        results.final_bypass("MAB"),
        results.final_bypass("GAMMA"),
        results.final_bypass("MalRNN"),
    );
    let slim: Vec<_> = results
        .series
        .iter()
        .map(|s| (s.attack.clone(), s.av.clone(), s.bypass_rate.clone(), s.signatures_learned))
        .collect();
    match report::save_json("exp_learning", &(results.weeks, slim)) {
        Ok(p) => {
            println!("results written to {}", p.display());
            report::save_metrics(&p, &metrics);
        }
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
