//! EXP-T5/T6: regenerate Tables V (Other-sec) and VI (random data).

use mpass_experiments::{ablation, report, World};

fn main() {
    let args = report::CliArgs::parse();
    let world = World::build(args.world_config());
    let engine = args.engine(world.config.seed);
    let (results, metrics) = ablation::run_with_engine(&world, &engine, None);
    println!("{}", results.table5());
    println!("{}", results.table6());
    match report::save_json("exp_ablation", &results) {
        Ok(p) => {
            println!("results written to {}", p.display());
            report::save_metrics(&p, &metrics);
        }
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
