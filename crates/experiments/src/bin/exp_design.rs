//! EXP-DESIGN: ablations of MPass's own design choices (shuffle,
//! ensemble size, init source, optimization budget).

use mpass_experiments::{design, report, World};

fn main() {
    let args = report::CliArgs::parse();
    let world = World::build(args.world_config());
    let results = design::run(&world);
    println!("{}", results.summary());
    match report::save_json("exp_design", &results) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
