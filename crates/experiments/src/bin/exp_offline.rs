//! EXP-T1/T2/T3: regenerate Tables I (ASR), II (AVQ) and III (APR).

use mpass_experiments::offline::Metric;
use mpass_experiments::{offline, report, World};

fn main() {
    let args = report::CliArgs::parse();
    let world = World::build(args.world_config());
    println!("== detector health ==");
    for (name, acc) in world.detector_health() {
        println!("  {name:<10} accuracy {acc:.3}");
    }
    let engine = args.engine(world.config.seed);
    let opts = args.campaign_options("exp_offline");
    let (results, metrics) = match offline::run_campaign(&world, &engine, &opts) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("could not open campaign journal: {e}");
            std::process::exit(1);
        }
    };
    for failure in &metrics.failures {
        eprintln!("shard {} failed: {}", failure.label, failure.panic);
    }
    println!("{}", results.table(Metric::Asr));
    println!("{}", results.table(Metric::Avq));
    println!("{}", results.table(Metric::Apr));
    match report::save_json("exp_offline", &results) {
        Ok(p) => {
            println!("results written to {}", p.display());
            report::save_metrics(&p, &metrics);
        }
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
