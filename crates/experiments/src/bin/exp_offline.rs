//! EXP-T1/T2/T3: regenerate Tables I (ASR), II (AVQ) and III (APR).
//!
//! `--processes N` distributes the campaign grid across N worker
//! processes (this same binary, re-entered via the hidden
//! `--orchestrate-work` flag) and prints the tables from the merged
//! report — byte-identical to the single-process run.

use mpass_experiments::offline::{Metric, OfflineResults};
use mpass_experiments::{offline, orchestrator, report, World};

fn main() {
    if let Some(code) = orchestrator::maybe_run_worker_from_args() {
        std::process::exit(code);
    }
    let args = report::CliArgs::parse();
    if let Some(processes) = args.processes.filter(|n| *n > 0) {
        run_distributed(&args, processes);
        return;
    }
    let world = World::build(args.world_config());
    println!("== detector health ==");
    for (name, acc) in world.detector_health() {
        println!("  {name:<10} accuracy {acc:.3}");
    }
    let engine = args.engine(world.config.seed);
    let opts = args.campaign_options("exp_offline");
    let (results, metrics) = match offline::run_campaign(&world, &engine, &opts) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("could not open campaign journal: {e}");
            std::process::exit(1);
        }
    };
    for failure in &metrics.failures {
        eprintln!("shard {} failed: {}", failure.label, failure.panic);
    }
    print_tables(&results);
    match report::save_json("exp_offline", &results) {
        Ok(p) => {
            println!("results written to {}", p.display());
            report::save_metrics(&p, &metrics);
        }
        Err(e) => eprintln!("could not write results: {e}"),
    }
}

fn print_tables(results: &OfflineResults) {
    println!("{}", results.table(Metric::Asr));
    println!("{}", results.table(Metric::Avq));
    println!("{}", results.table(Metric::Apr));
}

fn run_distributed(args: &report::CliArgs, processes: usize) {
    let outcome = orchestrator::run_distributed(
        orchestrator::CampaignKind::Offline,
        "exp_offline",
        args.world_config(),
        args.faults,
        processes,
        args.resume,
    );
    let (summary, results_path) = match outcome {
        Ok(out) => out,
        Err(e) => {
            eprintln!("distributed campaign failed: {e}");
            std::process::exit(1);
        }
    };
    match serde_json::from_str::<OfflineResults>(&summary.report) {
        Ok(results) => print_tables(&results),
        Err(e) => eprintln!("merged report does not parse: {e}"),
    }
    println!(
        "campaign: {} shard(s) over {} process(es), {} reassigned, {} respawned",
        summary.shards, processes, summary.reassigned, summary.respawned
    );
    println!("results written to {}", results_path.display());
    println!("metrics  -> {}", mpass_engine::metrics_path(&results_path).display());
}
