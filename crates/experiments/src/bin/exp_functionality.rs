//! EXP-FUNC: §IV-A functionality verification of all offline-campaign AEs.

use mpass_experiments::{functionality, offline, report, World};

fn main() {
    let args = report::CliArgs::parse();
    let world = World::build(args.world_config());
    let offline_results = offline::run(&world);
    let results = functionality::run(&offline_results);
    println!("{}", results.summary());
    match report::save_json("exp_functionality", &results) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
