//! Run the complete evaluation: every table and figure in sequence,
//! sharing one world, one engine (and one Figure-3 AE harvest).

use mpass_experiments::offline::Metric;
use mpass_experiments::{
    ablation, advtrain, commercial, functionality, learning, offline, packers, pem, report,
    World,
};

fn main() {
    let args = report::CliArgs::parse();
    let t0 = std::time::Instant::now();
    let world = World::build(args.world_config());
    let engine = args.engine(world.config.seed);
    println!("== world built in {:.1}s ==", t0.elapsed().as_secs_f32());
    println!("== detector health ==");
    for (name, acc) in world.detector_health() {
        println!("  {name:<10} accuracy {acc:.3}");
    }

    let pem_results = pem::run(&world, world.config.attack_samples.min(20));
    println!("{}", pem_results.summary());
    let _ = report::save_json("exp_pem", &pem_results);

    let (offline_results, offline_metrics) = offline::run_with_engine(&world, &engine);
    println!("{}", offline_results.table(Metric::Asr));
    println!("{}", offline_results.table(Metric::Avq));
    println!("{}", offline_results.table(Metric::Apr));
    if let Ok(p) = report::save_json("exp_offline", &offline_results) {
        report::save_metrics(&p, &offline_metrics);
    }

    let func = functionality::run(&offline_results);
    println!("{}", func.summary());
    let _ = report::save_json("exp_functionality", &func);

    let (fig3, fig3_metrics) = commercial::run_with_engine(&world, &engine);
    println!("{}", fig3.figure3());

    let (fig4, fig4_metrics) = learning::run_with_engine(&world, &fig3, 4, &engine);
    for av in &world.avs {
        use mpass_detectors::Detector;
        println!("{}", fig4.figure4(av.name()));
    }
    let slim: Vec<_> = fig3
        .cells
        .iter()
        .map(|c| (c.attack.clone(), c.av.clone(), c.stats))
        .collect();
    if let Ok(p) = report::save_json("exp_commercial", &slim) {
        report::save_metrics(&p, &fig3_metrics);
    }
    let slim4: Vec<_> = fig4
        .series
        .iter()
        .map(|s| (s.attack.clone(), s.av.clone(), s.bypass_rate.clone(), s.signatures_learned))
        .collect();
    if let Ok(p) = report::save_json("exp_learning", &(fig4.weeks, slim4)) {
        report::save_metrics(&p, &fig4_metrics);
    }

    let mpass_row: Vec<f64> = (1..=5).map(|i| format!("AV{i}")).map(|av| fig3.cell("MPass", &av).map(|c| c.stats.asr).unwrap_or(0.0)).collect();
    let (t4, t4_metrics) = packers::run_with_engine(&world, &engine, Some(mpass_row.clone()));
    println!("{}", t4.table4());
    if let Ok(p) = report::save_json("exp_packers", &t4) {
        report::save_metrics(&p, &t4_metrics);
    }

    let (ab, ab_metrics) = ablation::run_with_engine(&world, &engine, Some(mpass_row.clone()));
    println!("{}", ab.table5());
    println!("{}", ab.table6());
    if let Ok(p) = report::save_json("exp_ablation", &ab) {
        report::save_metrics(&p, &ab_metrics);
    }

    let adv = advtrain::run(&world);
    println!("{}", adv.summary());
    let _ = report::save_json("exp_advtrain", &adv);

    let des = mpass_experiments::design::run(&world);
    println!("{}", des.summary());
    let _ = report::save_json("exp_design", &des);

    println!("== total {:.1}s ==", t0.elapsed().as_secs_f32());
}
