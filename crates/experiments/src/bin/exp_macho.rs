//! EXP-MACHO: the multi-format demo — MPass against detectors trained on
//! an all-Mach-O corpus, through the same `BinaryFormat`-generic pipeline
//! that produces the PE tables.

use mpass_experiments::{macho_demo, report};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config =
        if quick { macho_demo::MachoDemoConfig::quick() } else { macho_demo::MachoDemoConfig::full() };
    let results = macho_demo::run(&config);
    println!("{}", results.summary());
    match report::save_json("exp_macho", &results) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
