//! Campaign-level robustness options shared by the experiment runners:
//! fault injection on the oracle channel, the retry policy applied to
//! it, and the crash-safe resume journal.

use crate::journal::CampaignJournal;
use mpass_core::{HardLabelTarget, QueryBudget, RetryPolicy};
use mpass_detectors::{Detector, FaultProfile, UnreliableOracle};
use std::path::PathBuf;

/// How a campaign run should treat the oracle transport and its own
/// durability. `Default` is the historical behaviour: reliable oracle,
/// no journal.
#[derive(Clone, Debug, Default)]
pub struct CampaignOptions {
    /// Inject faults into every oracle query using this profile
    /// (reseeded per shard so schedules are independent but replayable).
    pub faults: Option<FaultProfile>,
    /// Retry policy for failed submissions. Ignored (no submissions can
    /// fail) when `faults` is `None`.
    pub retry: RetryPolicy,
    /// Write-ahead journal path for crash-safe resume.
    pub journal: Option<PathBuf>,
    /// Resume from an existing journal instead of starting it over.
    pub resume: bool,
}

impl CampaignOptions {
    /// Open the configured journal. A fresh (non-`resume`) run deletes
    /// any stale journal first so recovered records can only come from
    /// *this* campaign.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating or recovering the
    /// journal file.
    pub fn open_journal(&self) -> std::io::Result<Option<CampaignJournal>> {
        let Some(path) = &self.journal else { return Ok(None) };
        if !self.resume {
            match std::fs::remove_file(path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        CampaignJournal::open(path).map(Some)
    }
}

/// The oracle channel one shard queries: the detector itself, or the
/// detector behind a per-shard [`UnreliableOracle`].
///
/// Owning the wrapper here (rather than in the per-sample loop) keeps
/// one fault schedule per shard: sample boundaries advance the schedule
/// exactly as queries do, which is what makes kill-and-resume replay
/// line up with the original run.
pub enum ShardOracle<'a> {
    /// Perfectly reliable in-process detector.
    Reliable(&'a dyn Detector),
    /// Fault-injected channel around the detector.
    Faulty(UnreliableOracle<'a>),
}

impl<'a> ShardOracle<'a> {
    /// Build the channel a shard should query. With faults enabled the
    /// profile is reseeded with `shard_seed` (the engine's label-keyed
    /// seed) so every shard draws an independent, replayable schedule.
    pub fn build(detector: &'a dyn Detector, opts: &CampaignOptions, shard_seed: u64) -> Self {
        match &opts.faults {
            None => ShardOracle::Reliable(detector),
            Some(profile) => ShardOracle::Faulty(UnreliableOracle::new(
                detector,
                profile.reseeded(profile.seed ^ shard_seed),
            )),
        }
    }

    /// A fresh budgeted [`HardLabelTarget`] over this channel for one
    /// sample. `retry_seed` keys the deterministic backoff jitter.
    ///
    /// Campaign targets always validate adversarial candidates before
    /// submission: bytes that do not re-parse and round-trip as a PE
    /// are rejected locally (no budget spent) and recorded in metrics,
    /// so a buggy or hostile mutation can never smuggle a malformed
    /// sample into the oracle channel.
    pub fn target(
        &self,
        max_queries: usize,
        retry: &RetryPolicy,
        retry_seed: u64,
    ) -> HardLabelTarget<'_> {
        match self {
            ShardOracle::Reliable(det) => {
                HardLabelTarget::new(*det, max_queries).with_ae_validation()
            }
            ShardOracle::Faulty(oracle) => {
                HardLabelTarget::unreliable(oracle, QueryBudget::new(max_queries), retry.clone())
                    .with_retry_seed(retry_seed)
                    .with_ae_validation()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_detectors::Verdict;

    struct Benign;
    impl Detector for Benign {
        fn name(&self) -> &str {
            "Benign"
        }
        fn score(&self, _bytes: &[u8]) -> f32 {
            0.0
        }
    }

    #[test]
    fn reliable_channel_by_default() {
        let det = Benign;
        let oracle = ShardOracle::build(&det, &CampaignOptions::default(), 7);
        assert!(matches!(oracle, ShardOracle::Reliable(_)));
        let mut target = oracle.target(3, &RetryPolicy::default(), 7);
        assert!(target.validates_ae());
        // The campaign channel gates submissions: bytes that are not a
        // well-formed PE never reach the oracle and spend no budget.
        assert_eq!(target.query(b"MZ"), Err(mpass_core::QueryError::InvalidCandidate));
        assert_eq!(target.remaining(), 3);
        let ds = mpass_corpus::Dataset::generate(&mpass_corpus::CorpusConfig {
            n_malware: 0,
            n_benign: 1,
            seed: 7,
            no_slack_fraction: 0.0,
        });
        assert_eq!(target.query(&ds.samples[0].bytes), Ok(Verdict::Benign));
        assert_eq!(target.remaining(), 2);
    }

    #[test]
    fn faulty_channel_reseeds_per_shard() {
        let det = Benign;
        let opts = CampaignOptions {
            faults: Some(FaultProfile::seeded(99)),
            ..CampaignOptions::default()
        };
        let a = ShardOracle::build(&det, &opts, 1);
        let b = ShardOracle::build(&det, &opts, 2);
        let (ShardOracle::Faulty(a), ShardOracle::Faulty(b)) = (&a, &b) else {
            panic!("faults configured; expected faulty channels");
        };
        assert_ne!(a.profile().seed, b.profile().seed);
        // Same shard seed reproduces the same schedule seed.
        let ShardOracle::Faulty(a2) = ShardOracle::build(&det, &opts, 1) else {
            panic!("expected a faulty channel");
        };
        assert_eq!(a.profile().seed, a2.profile().seed);
    }

    #[test]
    fn fresh_run_deletes_a_stale_journal() {
        let dir = std::env::temp_dir().join("mpass-campaign-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("stale-{}.jsonl", std::process::id()));
        std::fs::write(&path, "{\"kind\":\"shard\",\"shard\":\"s\",\"cell\":1}\n").unwrap();

        let resumed = CampaignOptions {
            journal: Some(path.clone()),
            resume: true,
            ..CampaignOptions::default()
        };
        let journal = resumed.open_journal().unwrap().unwrap();
        assert_eq!(journal.shard_cell::<u64>("s"), Some(1));
        drop(journal);

        let fresh =
            CampaignOptions { journal: Some(path.clone()), ..CampaignOptions::default() };
        let journal = fresh.open_journal().unwrap().unwrap();
        assert_eq!(journal.shard_cell::<u64>("s"), None);
        drop(journal);
        std::fs::remove_file(&path).unwrap();
    }
}
