//! # mpass-experiments — regenerating the paper's evaluation
//!
//! One runner per table/figure of *MPass* (DAC 2023), all operating on a
//! shared [`World`]: the synthetic corpus, the benign-content pool, four
//! trained offline detectors and five simulated commercial AVs.
//!
//! | Paper artifact | Runner | Binary |
//! |---|---|---|
//! | §III-B PEM claim | [`pem::run`] | `exp_pem` |
//! | Table I (ASR) + II (AVQ) + III (APR) | [`offline::run`] | `exp_offline` |
//! | §IV-A functionality check | [`functionality::run`] | `exp_functionality` |
//! | Figure 3 (commercial ASR) | [`commercial::run`] | `exp_commercial` |
//! | Table IV (packers) | [`packers::run`] | `exp_packers` |
//! | Figure 4 (AV learning) | [`learning::run`] | `exp_learning` |
//! | Table V (Other-sec) + VI (random data) | [`ablation::run`] | `exp_ablation` |
//! | §VI adversarial training | [`advtrain::run`] | `exp_advtrain` |
//! | Multi-format demo (Mach-O) | [`macho_demo::run`] | `exp_macho` |
//!
//! Every binary accepts `--quick` for a down-scaled run and writes JSON
//! results under `results/`.

pub mod ablation;
pub mod advtrain;
pub mod campaign;
pub mod commercial;
pub mod design;
pub mod functionality;
pub mod journal;
pub mod learning;
pub mod macho_demo;
pub mod offline;
pub mod orchestrator;
pub mod packers;
pub mod pem;
pub mod report;
pub mod table;
pub mod validation;
pub mod world;

pub use campaign::{CampaignOptions, ShardOracle};
pub use journal::CampaignJournal;
pub use orchestrator::{CampaignKind, Manifest};
pub use world::{World, WorldConfig};
