//! JSON result persistence for EXPERIMENTS.md bookkeeping.

use serde::Serialize;
use std::io;
use std::path::{Path, PathBuf};

/// Directory results are written to (workspace-relative).
pub const RESULTS_DIR: &str = "results";

/// Serialize `value` as pretty JSON into `results/<name>.json`, creating
/// the directory if needed. Returns the written path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_json<T: Serialize>(name: &str, value: &T) -> io::Result<PathBuf> {
    let dir = Path::new(RESULTS_DIR);
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Parse `--quick` / `--samples N` style CLI flags shared by the binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CliArgs {
    /// Use the down-scaled world.
    pub quick: bool,
    /// Override for the number of attacked samples.
    pub samples: Option<usize>,
}

impl CliArgs {
    /// Parse from `std::env::args`.
    pub fn parse() -> CliArgs {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick");
        let samples = args
            .iter()
            .position(|a| a == "--samples")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok());
        CliArgs { quick, samples }
    }

    /// Materialize the world configuration this invocation asked for.
    pub fn world_config(&self) -> crate::WorldConfig {
        let mut cfg =
            if self.quick { crate::WorldConfig::quick() } else { crate::WorldConfig::full() };
        if let Some(n) = self.samples {
            cfg.attack_samples = n;
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_json_round_trips() {
        #[derive(Serialize)]
        struct Demo {
            x: u32,
        }
        let path = save_json("test_save_json", &Demo { x: 7 }).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"x\": 7"));
        std::fs::remove_file(path).unwrap();
    }
}
