//! JSON result persistence for EXPERIMENTS.md bookkeeping.

use serde::Serialize;
use std::io;
use std::path::{Path, PathBuf};

/// Directory results are written to (workspace-relative).
pub const RESULTS_DIR: &str = "results";

/// Serialize `value` as pretty JSON into `results/<name>.json`, creating
/// the directory if needed. Returns the written path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_json<T: Serialize>(name: &str, value: &T) -> io::Result<PathBuf> {
    let dir = Path::new(RESULTS_DIR);
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Write an engine metrics file next to a `results/<name>.json` produced
/// by [`save_json`] (i.e. at `results/<name>.metrics.json`) and report
/// where it went on stdout.
pub fn save_metrics(results_path: &Path, metrics: &mpass_engine::MetricsFile) {
    let path = mpass_engine::metrics_path(results_path);
    match metrics.save(&path) {
        Ok(()) => println!("metrics  -> {}", path.display()),
        Err(e) => eprintln!("could not save metrics {}: {e}", path.display()),
    }
}

/// Parse `--quick` / `--samples N` / `--workers N` style CLI flags shared
/// by the binaries, plus the robustness flags `--faults SEED` (inject a
/// deterministic oracle fault schedule) and `--resume` (continue a
/// killed run from its journal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CliArgs {
    /// Use the down-scaled world.
    pub quick: bool,
    /// Override for the number of attacked samples.
    pub samples: Option<usize>,
    /// Engine worker threads (`None`/0 = one per shard up to the core
    /// count).
    pub workers: Option<usize>,
    /// Seed for oracle fault injection (`None` = reliable oracle).
    pub faults: Option<u64>,
    /// Resume from the experiment's journal instead of restarting it.
    pub resume: bool,
    /// Distribute the campaign across this many worker *processes*
    /// (`--processes N`; `--workers` stays engine threads).
    pub processes: Option<usize>,
}

impl CliArgs {
    /// Parse from `std::env::args`.
    pub fn parse() -> CliArgs {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick");
        let resume = args.iter().any(|a| a == "--resume");
        let grab = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
        };
        CliArgs {
            quick,
            samples: grab("--samples"),
            workers: grab("--workers"),
            faults: grab("--faults").map(|n: usize| n as u64),
            resume,
            processes: grab("--processes"),
        }
    }

    /// The campaign options this invocation asked for. Journalling is
    /// always on for campaign-capable runners: the write-ahead log at
    /// `results/<experiment>.journal.jsonl` is what `--resume` picks up
    /// after a crash or kill.
    pub fn campaign_options(&self, experiment: &str) -> crate::campaign::CampaignOptions {
        crate::campaign::CampaignOptions {
            faults: self.faults.map(mpass_detectors::FaultProfile::seeded),
            retry: mpass_engine::RetryPolicy::default(),
            journal: Some(
                Path::new(RESULTS_DIR).join(format!("{experiment}.journal.jsonl")),
            ),
            resume: self.resume,
        }
    }

    /// Materialize the world configuration this invocation asked for.
    pub fn world_config(&self) -> crate::WorldConfig {
        let mut cfg =
            if self.quick { crate::WorldConfig::quick() } else { crate::WorldConfig::full() };
        if let Some(n) = self.samples {
            cfg.attack_samples = n;
        }
        cfg
    }

    /// The shared engine this invocation runs its campaigns on. Seeded
    /// from the world seed so shard RNG streams are reproducible.
    pub fn engine(&self, seed: u64) -> mpass_engine::Engine {
        mpass_engine::Engine::new(mpass_engine::EngineConfig {
            workers: self.workers.unwrap_or(0),
            seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_json_round_trips() {
        #[derive(Serialize)]
        struct Demo {
            x: u32,
        }
        let path = save_json("test_save_json", &Demo { x: 7 }).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"x\": 7"));
        std::fs::remove_file(path).unwrap();
    }
}
