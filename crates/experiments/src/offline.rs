//! EXP-T1/T2/T3 — Tables I (ASR), II (AVQ) and III (APR): five attacks
//! against the four offline detectors, plus the §IV-A functionality
//! verification of every generated AE.

use crate::world::World;
use mpass_baselines::{Gamma, GammaConfig, Mab, MabConfig, MalRnn, MalRnnConfig, Rla, RlaConfig};
use mpass_core::attack::metrics::{summarize, AttackStats};
use mpass_core::{Attack, HardLabelTarget, MPassAttack, MPassConfig};
use mpass_detectors::Detector;
use mpass_engine::{metrics as trace, Engine, MetricsFile, Shard};
use mpass_sandbox::Sandbox;
use serde::{Deserialize, Serialize};

/// The attack roster of the offline comparison, in paper column order.
pub const ATTACK_NAMES: [&str; 5] = ["MPass", "RLA", "MAB", "GAMMA", "MalRNN"];

/// One (attack, target) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OfflineCell {
    /// Attack name.
    pub attack: String,
    /// Target model name.
    pub target: String,
    /// ASR/AVQ/APR statistics.
    pub stats: AttackStats,
    /// Successful AEs whose sandbox behaviour diverged from the original
    /// (the paper's functionality check; 23 % for RLA, 0 elsewhere).
    pub broken: usize,
    /// Number of successful AEs checked.
    pub checked: usize,
}

/// Results for all cells of Tables I–III.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OfflineResults {
    /// All (attack, target) cells.
    pub cells: Vec<OfflineCell>,
}

/// Which metric of a cell to tabulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Attack success rate (Table I).
    Asr,
    /// Average queries (Table II).
    Avq,
    /// Average appending rate (Table III).
    Apr,
}

impl OfflineResults {
    fn cell(&self, attack: &str, target: &str) -> Option<&OfflineCell> {
        self.cells.iter().find(|c| c.attack == attack && c.target == target)
    }

    /// Format one of the three paper tables.
    pub fn table(&self, metric: Metric) -> String {
        let (title, decimals) = match metric {
            Metric::Asr => ("TABLE I: ASR (%) of attacking offline models.", 1),
            Metric::Avq => ("TABLE II: AVQ of attack methods on offline models.", 1),
            Metric::Apr => ("TABLE III: APR (%) of attack methods on offline models.", 1),
        };
        let targets = ["MalConv", "NonNeg", "LightGBM", "MalGCG"];
        let rows: Vec<(String, Vec<f64>)> = targets
            .iter()
            .map(|t| {
                let values = ATTACK_NAMES
                    .iter()
                    .map(|a| {
                        self.cell(a, t)
                            .map(|c| match metric {
                                Metric::Asr => c.stats.asr,
                                Metric::Avq => c.stats.avq,
                                Metric::Apr => c.stats.apr,
                            })
                            .unwrap_or(f64::NAN)
                    })
                    .collect();
                ((*t).to_owned(), values)
            })
            .collect();
        crate::table::format_table(
            title,
            "Models",
            &ATTACK_NAMES.iter().map(|s| (*s).to_string()).collect::<Vec<_>>(),
            &rows,
            decimals,
        )
    }

    /// Per-attack broken-AE percentage across all targets (§IV-A).
    pub fn broken_percent(&self, attack: &str) -> f64 {
        let (broken, checked) = self
            .cells
            .iter()
            .filter(|c| c.attack == attack)
            .fold((0usize, 0usize), |(b, n), c| (b + c.broken, n + c.checked));
        if checked == 0 {
            0.0
        } else {
            100.0 * broken as f64 / checked as f64
        }
    }
}

/// Run one attack against one target over the world's attack set,
/// verifying every successful AE in the sandbox.
pub fn attack_target(
    world: &World,
    attack: &mut dyn Attack,
    target: &dyn Detector,
) -> OfflineCell {
    let sandbox = Sandbox::new();
    let samples = world.attack_set(target);
    let mut outcomes = Vec::with_capacity(samples.len());
    let mut broken = 0;
    let mut checked = 0;
    for sample in samples {
        trace::begin_sample(&sample.name);
        let mut oracle = HardLabelTarget::new(target, world.config.max_queries);
        let mut outcome = attack.attack(sample, &mut oracle);
        if let Some(ae) = outcome.adversarial.take() {
            checked += 1;
            let _span = trace::span("stage/verify");
            if !sandbox.verify_functionality(&sample.bytes, &ae).is_preserved() {
                broken += 1;
            }
        }
        outcomes.push(outcome);
        trace::end_sample();
    }
    OfflineCell {
        attack: attack.name().to_owned(),
        target: target.name().to_owned(),
        stats: summarize(&outcomes),
        broken,
        checked,
    }
}

/// Build one named attack of the roster for a campaign against
/// `target_name`. MPass's known ensemble excludes the target (it is
/// black-box); the baselines are target-agnostic.
pub fn make_attack<'a>(world: &'a World, target_name: &str, attack_name: &str) -> Box<dyn Attack + 'a> {
    let seed = world.config.seed;
    match attack_name {
        "MPass" => Box::new(MPassAttack::new(
            world.known_models_excluding(target_name),
            &world.pool,
            MPassConfig::builder().seed(seed).build().expect("default MPass config is valid"),
        )),
        "RLA" => Box::new(Rla::new(&world.pool, RlaConfig { seed, ..RlaConfig::default() })),
        "MAB" => Box::new(Mab::new(&world.pool, MabConfig { seed, ..MabConfig::default() })),
        "GAMMA" => {
            Box::new(Gamma::new(&world.pool, GammaConfig { seed, ..GammaConfig::default() }))
        }
        "MalRNN" => Box::new(MalRnn::new(
            &world.pool,
            MalRnnConfig { seed, ..MalRnnConfig::default() },
        )),
        other => panic!("unknown attack {other:?}"),
    }
}

/// Build the fresh attack roster for a campaign against `target_name`.
pub fn attack_roster<'a>(world: &'a World, target_name: &str) -> Vec<Box<dyn Attack + 'a>> {
    ATTACK_NAMES.iter().map(|a| make_attack(world, target_name, a)).collect()
}

/// Run the full offline comparison (Tables I–III) on `engine`, one shard
/// per (attack, target) campaign. Campaigns — not samples — are the shard
/// unit because RLA and MAB carry learned state across samples within one
/// campaign.
pub fn run_with_engine(world: &World, engine: &Engine) -> (OfflineResults, MetricsFile) {
    let shards: Vec<Shard<(&str, &str)>> = world
        .offline_targets()
        .iter()
        .flat_map(|(target, _)| {
            ATTACK_NAMES.iter().map(move |attack| {
                Shard::new(format!("{attack} vs {target}"), (*attack, *target))
            })
        })
        .collect();
    let run = engine.run(shards, |_ctx, (attack_name, target_name)| {
        let (_, det) = world
            .offline_targets()
            .into_iter()
            .find(|(n, _)| *n == target_name)
            .expect("shard names a roster target");
        let mut attack = make_attack(world, target_name, attack_name);
        attack_target(world, attack.as_mut(), det)
    });
    let metrics = MetricsFile::from_run("offline", &run);
    (OfflineResults { cells: run.results }, metrics)
}

/// Run the full offline comparison on a default engine, discarding the
/// metrics (test/API convenience).
pub fn run(world: &World) -> OfflineResults {
    run_with_engine(world, &Engine::new(Default::default())).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn offline_quick_run_shapes() {
        let mut cfg = WorldConfig::quick();
        cfg.attack_samples = 3;
        let world = World::build(cfg);
        let results = run(&world);
        assert_eq!(results.cells.len(), 5 * 4);
        // Every cell attacked the same number of samples or fewer (if the
        // target misclassified some malware up front).
        for c in &results.cells {
            assert!(c.stats.samples <= 3, "{}/{}", c.attack, c.target);
        }
        // Tables render.
        let t1 = results.table(Metric::Asr);
        assert!(t1.contains("MalConv") && t1.contains("MPass"));
        let t2 = results.table(Metric::Avq);
        assert!(t2.contains("TABLE II"));
        let t3 = results.table(Metric::Apr);
        assert!(t3.contains("TABLE III"));
    }

    /// Same engine seed ⇒ identical attack outcomes, whatever the worker
    /// count: per-shard RNG streams are keyed by shard label, not by
    /// scheduling.
    #[test]
    fn outcomes_invariant_under_worker_count() {
        let mut cfg = WorldConfig::quick();
        cfg.attack_samples = 2;
        let world = World::build(cfg);
        let run_at = |workers: usize| {
            let engine =
                Engine::new(mpass_engine::EngineConfig { workers, seed: world.config.seed });
            let (results, metrics) = run_with_engine(&world, &engine);
            // Metrics labels come back in input order too.
            let labels: Vec<String> =
                metrics.shards.iter().map(|s| s.label.clone()).collect();
            (format!("{:?}", results.cells), labels)
        };
        let (cells_serial, labels_serial) = run_at(1);
        let (cells_parallel, labels_parallel) = run_at(4);
        assert_eq!(cells_serial, cells_parallel);
        assert_eq!(labels_serial, labels_parallel);
    }
}
