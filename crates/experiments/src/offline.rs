//! EXP-T1/T2/T3 — Tables I (ASR), II (AVQ) and III (APR): five attacks
//! against the four offline detectors, plus the §IV-A functionality
//! verification of every generated AE.

use crate::campaign::{CampaignOptions, ShardOracle};
use crate::journal::CampaignJournal;
use crate::world::World;
use mpass_baselines::{Gamma, GammaConfig, Mab, MabConfig, MalRnn, MalRnnConfig, Rla, RlaConfig};
use mpass_core::attack::metrics::{summarize, AttackStats};
use mpass_core::{Attack, MPassAttack, MPassConfig};
use mpass_detectors::Detector;
use mpass_engine::{metrics as trace, Engine, MetricsFile, Shard};
use mpass_sandbox::Sandbox;
use serde::{Deserialize, Serialize};

/// The attack roster of the offline comparison, in paper column order.
pub const ATTACK_NAMES: [&str; 5] = ["MPass", "RLA", "MAB", "GAMMA", "MalRNN"];

/// One (attack, target) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OfflineCell {
    /// Attack name.
    pub attack: String,
    /// Target model name.
    pub target: String,
    /// ASR/AVQ/APR statistics.
    pub stats: AttackStats,
    /// Successful AEs whose sandbox behaviour diverged from the original
    /// (the paper's functionality check; 23 % for RLA, 0 elsewhere).
    pub broken: usize,
    /// Number of successful AEs checked.
    pub checked: usize,
}

/// Results for all cells of Tables I–III.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OfflineResults {
    /// All (attack, target) cells.
    pub cells: Vec<OfflineCell>,
}

/// Which metric of a cell to tabulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Attack success rate (Table I).
    Asr,
    /// Average queries (Table II).
    Avq,
    /// Average appending rate (Table III).
    Apr,
}

impl OfflineResults {
    fn cell(&self, attack: &str, target: &str) -> Option<&OfflineCell> {
        self.cells.iter().find(|c| c.attack == attack && c.target == target)
    }

    /// Format one of the three paper tables.
    pub fn table(&self, metric: Metric) -> String {
        let (title, decimals) = match metric {
            Metric::Asr => ("TABLE I: ASR (%) of attacking offline models.", 1),
            Metric::Avq => ("TABLE II: AVQ of attack methods on offline models.", 1),
            Metric::Apr => ("TABLE III: APR (%) of attack methods on offline models.", 1),
        };
        let targets = ["MalConv", "NonNeg", "LightGBM", "MalGCG"];
        let rows: Vec<(String, Vec<f64>)> = targets
            .iter()
            .map(|t| {
                let values = ATTACK_NAMES
                    .iter()
                    .map(|a| {
                        self.cell(a, t)
                            .map(|c| match metric {
                                Metric::Asr => c.stats.asr,
                                Metric::Avq => c.stats.avq,
                                Metric::Apr => c.stats.apr,
                            })
                            .unwrap_or(f64::NAN)
                    })
                    .collect();
                ((*t).to_owned(), values)
            })
            .collect();
        crate::table::format_table(
            title,
            "Models",
            &ATTACK_NAMES.iter().map(|s| (*s).to_string()).collect::<Vec<_>>(),
            &rows,
            decimals,
        )
    }

    /// Per-attack broken-AE percentage across all targets (§IV-A).
    pub fn broken_percent(&self, attack: &str) -> f64 {
        let (broken, checked) = self
            .cells
            .iter()
            .filter(|c| c.attack == attack)
            .fold((0usize, 0usize), |(b, n), c| (b + c.broken, n + c.checked));
        if checked == 0 {
            0.0
        } else {
            100.0 * broken as f64 / checked as f64
        }
    }
}

/// Run one attack against one target over the world's attack set,
/// verifying every successful AE in the sandbox.
pub fn attack_target(
    world: &World,
    attack: &mut dyn Attack,
    target: &dyn Detector,
) -> OfflineCell {
    let label = format!("{} vs {}", attack.name(), target.name());
    attack_target_with(world, attack, target, &label, &CampaignOptions::default(), None, 0)
}

/// `None` when `bytes` ingest cleanly as a PE; otherwise the diagnostic
/// reason the sample is quarantined with. Clean ingestion means the
/// bytes parse *and* survive a serialize/re-parse round trip — literally
/// the same predicate the oracle channel applies to outgoing candidates
/// ([`mpass_core::validate`]), applied here to incoming samples.
fn ingest_reason(bytes: &[u8]) -> Option<String> {
    mpass_core::validate::candidate_reject_reason(bytes)
}

/// [`attack_target`] with the full campaign machinery: an optionally
/// fault-injected oracle channel, and journal-backed resume.
///
/// Resume operates at two granularities. A shard whose final cell is
/// already journalled is returned wholesale (`campaign/shard_resumed`).
/// Otherwise, when the attack carries no state across samples
/// ([`Attack::stateful_across_samples`] is `false`), each journalled
/// sample outcome is replayed instead of re-attacked
/// (`campaign/sample_resumed`); a stateful attack (RLA's Q-table, MAB's
/// arms) must re-run skipped samples to rebuild its state, so it only
/// gets shard-level resume.
pub fn attack_target_with(
    world: &World,
    attack: &mut dyn Attack,
    target: &dyn Detector,
    label: &str,
    opts: &CampaignOptions,
    journal: Option<&CampaignJournal>,
    shard_seed: u64,
) -> OfflineCell {
    if let Some(cell) = journal.and_then(|j| j.shard_cell::<OfflineCell>(label)) {
        trace::counter("campaign/shard_resumed", 1);
        return cell;
    }
    let replay_samples = !attack.stateful_across_samples();
    let oracle = ShardOracle::build(target, opts, shard_seed);
    let sandbox = Sandbox::new();
    let samples = world.attack_set(target);
    let mut outcomes = Vec::with_capacity(samples.len());
    let mut broken = 0;
    let mut checked = 0;
    let mut verify = |original: &[u8], outcome: &mut mpass_core::AttackOutcome| {
        if let Some(ae) = outcome.adversarial.take() {
            checked += 1;
            let _span = trace::span("stage/verify");
            // Digest-based validation: baseline the original once, replay
            // the AE against it with an early-aborting comparing sink.
            let verdict = match sandbox.baseline_digest(original) {
                Ok(baseline) => sandbox.verify_candidate(&baseline, &ae),
                Err(_) => mpass_sandbox::FunctionalityVerdict::BrokenParse,
            };
            trace::counter("campaign/ae_validated", 1);
            if !verdict.is_preserved() {
                broken += 1;
                trace::counter("campaign/ae_digest_mismatch", 1);
            }
        }
    };
    for sample in samples {
        // Ingestion gate: a sample whose bytes do not re-parse and
        // round-trip is quarantined with a diagnostic record instead of
        // being handed to the attack, where hostile structure could
        // otherwise surface deep inside the mutation machinery.
        if let Some(reason) = ingest_reason(&sample.bytes) {
            trace::counter("campaign/quarantined", 1);
            if let Some(journal) = journal {
                if journal.quarantine_reason(label, &sample.name).is_none() {
                    journal
                        .record_quarantine(label, &sample.name, &reason)
                        .unwrap_or_else(|e| panic!("shard {label}: journal write failed: {e}"));
                }
            }
            continue;
        }
        let resumed = replay_samples
            .then(|| journal.and_then(|j| j.sample(label, &sample.name)).cloned())
            .flatten();
        let outcome = match resumed {
            Some(mut outcome) => {
                trace::counter("campaign/sample_resumed", 1);
                verify(&sample.bytes, &mut outcome);
                outcome
            }
            None => {
                trace::begin_sample(&sample.name);
                let mut target = oracle.target(world.config.max_queries, &opts.retry, shard_seed);
                let mut outcome = attack.attack(sample, &mut target);
                // Journalled before the AE is consumed by the verify
                // step, so a resumed run can rebuild everything —
                // including the AE bytes — from the record.
                if let Some(journal) = journal {
                    journal
                        .record_sample(label, &outcome)
                        .unwrap_or_else(|e| panic!("shard {label}: journal write failed: {e}"));
                }
                verify(&sample.bytes, &mut outcome);
                trace::end_sample();
                outcome
            }
        };
        outcomes.push(outcome);
    }
    let cell = OfflineCell {
        attack: attack.name().to_owned(),
        target: target.name().to_owned(),
        stats: summarize(&outcomes),
        broken,
        checked,
    };
    if let Some(journal) = journal {
        journal
            .record_shard(label, &cell)
            .unwrap_or_else(|e| panic!("shard {label}: journal write failed: {e}"));
    }
    cell
}

/// Build one named attack of the roster for a campaign against
/// `target_name`. MPass's known ensemble excludes the target (it is
/// black-box); the baselines are target-agnostic.
pub fn make_attack<'a>(world: &'a World, target_name: &str, attack_name: &str) -> Box<dyn Attack + 'a> {
    let seed = world.config.seed;
    match attack_name {
        "MPass" => Box::new(MPassAttack::new(
            world.known_models_excluding(target_name),
            &world.pool,
            MPassConfig::builder().seed(seed).build().expect("default MPass config is valid"),
        )),
        "RLA" => Box::new(Rla::new(&world.pool, RlaConfig { seed, ..RlaConfig::default() })),
        "MAB" => Box::new(Mab::new(&world.pool, MabConfig { seed, ..MabConfig::default() })),
        "GAMMA" => {
            Box::new(Gamma::new(&world.pool, GammaConfig { seed, ..GammaConfig::default() }))
        }
        "MalRNN" => Box::new(MalRnn::new(
            &world.pool,
            MalRnnConfig { seed, ..MalRnnConfig::default() },
        )),
        other => panic!("unknown attack {other:?}"),
    }
}

/// Build the fresh attack roster for a campaign against `target_name`.
pub fn attack_roster<'a>(world: &'a World, target_name: &str) -> Vec<Box<dyn Attack + 'a>> {
    ATTACK_NAMES.iter().map(|a| make_attack(world, target_name, a)).collect()
}

/// Run the full offline comparison (Tables I–III) on `engine`, one shard
/// per (attack, target) campaign. Campaigns — not samples — are the shard
/// unit because RLA and MAB carry learned state across samples within one
/// campaign.
pub fn run_with_engine(world: &World, engine: &Engine) -> (OfflineResults, MetricsFile) {
    run_campaign(world, engine, &CampaignOptions::default())
        .expect("no journal configured, so no I/O can fail")
}

/// [`run_with_engine`] under explicit [`CampaignOptions`]: fault
/// injection on the oracle channel and/or a crash-safe resume journal.
///
/// # Errors
///
/// Fails only on journal filesystem errors (opening or recovering it);
/// the attack campaigns themselves cannot fail, only panic — and a
/// panicking shard is isolated into the metrics file's failure list.
pub fn run_campaign(
    world: &World,
    engine: &Engine,
    opts: &CampaignOptions,
) -> std::io::Result<(OfflineResults, MetricsFile)> {
    let journal = opts.open_journal()?;
    let journal = journal.as_ref();
    let shards: Vec<Shard<(&str, &str)>> = world
        .offline_targets()
        .iter()
        .flat_map(|(target, _)| {
            ATTACK_NAMES.iter().map(move |attack| {
                Shard::new(format!("{attack} vs {target}"), (*attack, *target))
            })
        })
        .collect();
    let run = engine.run(shards, |ctx, (attack_name, target_name)| {
        let (_, det) = world
            .offline_targets()
            .into_iter()
            .find(|(n, _)| *n == target_name)
            .expect("shard names a roster target");
        let mut attack = make_attack(world, target_name, attack_name);
        attack_target_with(
            world,
            attack.as_mut(),
            det,
            ctx.label(),
            opts,
            journal,
            engine.shard_seed(ctx.label()),
        )
    });
    let metrics = MetricsFile::from_run("offline", &run);
    Ok((OfflineResults { cells: run.results }, metrics))
}

/// Run the full offline comparison on a default engine, discarding the
/// metrics (test/API convenience).
pub fn run(world: &World) -> OfflineResults {
    run_with_engine(world, &Engine::new(Default::default())).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn offline_quick_run_shapes() {
        let mut cfg = WorldConfig::quick();
        cfg.attack_samples = 3;
        let world = World::build(cfg);
        let results = run(&world);
        assert_eq!(results.cells.len(), 5 * 4);
        // Every cell attacked the same number of samples or fewer (if the
        // target misclassified some malware up front).
        for c in &results.cells {
            assert!(c.stats.samples <= 3, "{}/{}", c.attack, c.target);
        }
        // Tables render.
        let t1 = results.table(Metric::Asr);
        assert!(t1.contains("MalConv") && t1.contains("MPass"));
        let t2 = results.table(Metric::Avq);
        assert!(t2.contains("TABLE II"));
        let t3 = results.table(Metric::Apr);
        assert!(t3.contains("TABLE III"));
    }

    /// Same engine seed ⇒ identical attack outcomes, whatever the worker
    /// count: per-shard RNG streams are keyed by shard label, not by
    /// scheduling.
    #[test]
    fn outcomes_invariant_under_worker_count() {
        let mut cfg = WorldConfig::quick();
        cfg.attack_samples = 2;
        let world = World::build(cfg);
        let run_at = |workers: usize| {
            let engine =
                Engine::new(mpass_engine::EngineConfig { workers, seed: world.config.seed });
            let (results, metrics) = run_with_engine(&world, &engine);
            // Metrics labels come back in input order too.
            let labels: Vec<String> =
                metrics.shards.iter().map(|s| s.label.clone()).collect();
            (format!("{:?}", results.cells), labels)
        };
        let (cells_serial, labels_serial) = run_at(1);
        let (cells_parallel, labels_parallel) = run_at(4);
        assert_eq!(cells_serial, cells_parallel);
        assert_eq!(labels_serial, labels_parallel);
    }

    #[test]
    fn ingest_reason_accepts_corpus_and_rejects_garbage() {
        assert!(ingest_reason(b"MZ but not actually a PE").is_some());
        let ds = mpass_corpus::Dataset::generate(&mpass_corpus::CorpusConfig {
            n_malware: 1,
            n_benign: 1,
            seed: 3,
            no_slack_fraction: 0.0,
        });
        for s in &ds.samples {
            assert_eq!(ingest_reason(&s.bytes), None, "{}", s.name);
        }
    }

    /// A corrupted sample is quarantined — journalled with a diagnostic,
    /// counted, and excluded from the attacked population — rather than
    /// fed into the attack machinery.
    #[test]
    fn malformed_sample_is_quarantined_not_attacked() {
        let mut cfg = WorldConfig::quick();
        cfg.attack_samples = 2;
        let mut world = World::build(cfg);
        // Destroy the PE signature of one malware sample; the raw bytes
        // barely change, so detectors still flag it, but ingestion fails.
        let victim = world
            .dataset
            .samples
            .iter_mut()
            .find(|s| s.label == mpass_corpus::Label::Malware)
            .expect("quick world has malware");
        victim.bytes[0] = 0;
        victim.bytes[1] = 0;
        let victim_name = victim.name.clone();
        let victim_bytes = victim.bytes.clone();
        let (target_name, det) = world.offline_targets().into_iter().next().unwrap();
        assert_eq!(
            det.classify(&victim_bytes),
            mpass_detectors::Verdict::Malicious,
            "corruption must not flip the verdict for this test to bite"
        );

        let path = std::env::temp_dir()
            .join(format!("mpass-offline-quarantine-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let journal = CampaignJournal::open(&path).unwrap();
        let mut attack = make_attack(&world, target_name, "MPass");
        let label = "quarantine shard";
        let cell = attack_target_with(
            &world,
            attack.as_mut(),
            det,
            label,
            &CampaignOptions::default(),
            Some(&journal),
            11,
        );
        assert!(cell.stats.samples < 2, "quarantined sample must not be attacked");
        drop(journal);
        // Recovery state is built at open time, so reopen to observe
        // the quarantine record the run just appended.
        let reopened = CampaignJournal::open(&path).unwrap();
        assert!(
            reopened.quarantine_reason(label, &victim_name).is_some(),
            "victim sample should be journalled as quarantined"
        );
        drop(reopened);
        std::fs::remove_file(&path).unwrap();
    }

    /// A resumed campaign over a complete journal replays every shard
    /// from the record and reproduces the results bit-identically.
    #[test]
    fn journalled_campaign_resumes_identically() {
        let mut cfg = WorldConfig::quick();
        cfg.attack_samples = 2;
        let world = World::build(cfg);
        let engine = Engine::new(mpass_engine::EngineConfig { workers: 2, seed: 5 });
        let path = std::env::temp_dir()
            .join(format!("mpass-offline-resume-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let opts =
            CampaignOptions { journal: Some(path.clone()), ..CampaignOptions::default() };
        let (first, _) = run_campaign(&world, &engine, &opts).unwrap();

        let resume = CampaignOptions { resume: true, ..opts };
        let (second, metrics) = run_campaign(&world, &engine, &resume).unwrap();
        assert_eq!(format!("{:?}", first.cells), format!("{:?}", second.cells));
        let resumed: u64 = metrics
            .shards
            .iter()
            .filter_map(|s| s.counters.get("campaign/shard_resumed"))
            .sum();
        assert_eq!(resumed as usize, second.cells.len(), "every shard replays from journal");
        // No shard re-queried the oracle.
        assert!(metrics.shards.iter().all(|s| !s.counters.contains_key("queries")));
        std::fs::remove_file(&path).unwrap();
    }
}
