//! EXP-ADV — §VI "Adversarial training": mixing MPass AEs 50/50 with clean
//! samples and retraining the target suppresses MPass's ASR by less than
//! 10 points, because each fresh attack randomizes its benign cover and
//! shuffle — the AE distribution is too large to pin down.

use crate::world::World;
use mpass_core::attack::metrics::summarize;
use mpass_core::{HardLabelTarget, MPassAttack, MPassConfig};
use mpass_core::Attack as _;
use mpass_corpus::Label;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Adversarial-training experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdvTrainResults {
    /// MPass ASR against the original MalConv.
    pub asr_before: f64,
    /// MPass ASR against the adversarially trained MalConv.
    pub asr_after: f64,
    /// AEs mixed into retraining.
    pub aes_used: usize,
    /// Detection accuracy of the hardened model on the clean corpus (the
    /// defense must not break normal detection).
    pub clean_accuracy: f32,
}

impl AdvTrainResults {
    /// ASR suppression in percentage points.
    pub fn suppression(&self) -> f64 {
        self.asr_before - self.asr_after
    }

    /// Human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "Adversarial training (50/50 AE/clean retraining of MalConv):\n  \
             ASR before: {:.1}%\n  ASR after:  {:.1}%\n  suppression: {:.1} points \
             ({} AEs, clean accuracy {:.2})\n",
            self.asr_before,
            self.asr_after,
            self.suppression(),
            self.aes_used,
            self.clean_accuracy
        )
    }
}

/// Run the adversarial-training evaluation against MalConv.
pub fn run(world: &World) -> AdvTrainResults {
    let cfg = MPassConfig::builder()
        .seed(world.config.seed)
        .build()
        .expect("default MPass config is valid");
    // Round 1: collect AEs against the original model.
    let mut attack = MPassAttack::new(world.known_models_excluding("MalConv"), &world.pool, cfg.clone());
    let samples = world.attack_set(&world.malconv);
    let mut outcomes = Vec::new();
    let mut aes: Vec<Vec<u8>> = Vec::new();
    for s in &samples {
        let mut oracle = HardLabelTarget::new(&world.malconv, world.config.max_queries);
        let mut o = attack.attack(s, &mut oracle);
        if let Some(ae) = o.adversarial.take() {
            aes.push(ae);
        }
        outcomes.push(o);
    }
    let asr_before = summarize(&outcomes).asr;

    // Retrain a copy on a 50/50 AE/clean mixture (classic adversarial
    // training, Szegedy et al. style).
    let mut hardened = world.malconv.clone();
    // AEs replace an equal number of clean-malware slots, keeping the full
    // corpus in the mix — retraining on a handful of samples would destroy
    // the detector outright instead of (slightly) hardening it.
    let clean: Vec<&mpass_corpus::Sample> = world.dataset.samples.iter().collect();
    let n = aes.len();
    let mut data: Vec<(&[u8], f32)> = Vec::new();
    for ae in aes.iter() {
        data.push((ae.as_slice(), 1.0));
    }
    for s in &clean {
        data.push((s.bytes.as_slice(), s.label.target()));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(world.config.seed ^ 0xADF);
    hardened.train(&data, 2, world.config.conv_lr, &mut rng);

    // Clean accuracy of the hardened model.
    let pairs: Vec<(f32, f32)> = world
        .dataset
        .samples
        .iter()
        .map(|s| (hardened.score(&s.bytes), s.label.target()))
        .collect();
    let clean_accuracy = mpass_ml::metrics::accuracy(&pairs, hardened.threshold());

    // Round 2: fresh MPass (new randomness) against the hardened model,
    // on the samples the hardened model still detects.
    let cfg2 = cfg
        .to_builder()
        .seed(world.config.seed ^ 0x5EED)
        .build()
        .expect("reseeding keeps the config valid");
    let mut attack2 =
        MPassAttack::new(world.known_models_excluding("MalConv"), &world.pool, cfg2);
    let samples2: Vec<&mpass_corpus::Sample> = world
        .dataset
        .malware()
        .into_iter()
        .filter(|s| {
            hardened.classify(&s.bytes).is_malicious()
        })
        .take(world.config.attack_samples)
        .collect();
    let mut outcomes2 = Vec::new();
    for s in &samples2 {
        let mut oracle = HardLabelTarget::new(&hardened, world.config.max_queries);
        outcomes2.push(attack2.attack(s, &mut oracle));
    }
    let asr_after = summarize(&outcomes2).asr;

    AdvTrainResults { asr_before, asr_after, aes_used: n, clean_accuracy }
}

// `Detector` methods (score/classify/threshold) are used on the hardened
// clone above.
use mpass_detectors::Detector as _;

/// Silence unused-import lint for Label, used in doc context.
#[allow(unused)]
fn _label_check(l: Label) -> f32 {
    l.target()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn advtrain_quick_run() {
        let mut cfg = WorldConfig::quick();
        cfg.attack_samples = 3;
        let world = World::build(cfg);
        let results = run(&world);
        assert!(results.asr_before >= 0.0 && results.asr_before <= 100.0);
        assert!(results.asr_after >= 0.0 && results.asr_after <= 100.0);
        assert!(results.summary().contains("Adversarial training"));
    }
}
