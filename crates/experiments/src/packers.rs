//! EXP-T4 — Table IV: generic obfuscators (UPX, PESpin, ASPack) versus
//! MPass on the commercial AVs.

use crate::commercial::attack_av;
use crate::world::World;
use mpass_baselines::{packer_profiles, Packer};
use mpass_core::{MPassAttack, MPassConfig};
use mpass_detectors::Detector;
use mpass_engine::{Engine, MetricsFile, Shard};
use serde::{Deserialize, Serialize};

/// Table IV contents.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackerResults {
    /// Rows: obfuscator/attack name → ASR (%) per AV₁..AV₅.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl PackerResults {
    /// Format Table IV.
    pub fn table4(&self) -> String {
        let avs: Vec<String> = (1..=5).map(|i| format!("AV{i}")).collect();
        crate::table::format_table(
            "TABLE IV: Comparison with obfuscation techniques on ASR (%) of attacking commercial AVs.",
            "Method",
            &avs,
            &self.rows,
            1,
        )
    }
}

/// Run Table IV on `engine`: each packer applied once per sample against
/// each AV, one shard per (packer, AV) campaign. `mpass_row` supplies the
/// MPass reference ASRs (one per AV) when the caller has already run the
/// Figure-3 campaign; otherwise the row is recomputed here.
pub fn run_with_engine(
    world: &World,
    engine: &Engine,
    mpass_row: Option<Vec<f64>>,
) -> (PackerResults, MetricsFile) {
    let profiles = packer_profiles();
    let shards: Vec<Shard<(usize, usize)>> = profiles
        .iter()
        .enumerate()
        .flat_map(|(p, profile)| {
            world.avs.iter().enumerate().map(move |(a, av)| {
                Shard::new(format!("{} vs {}", profile.name, av.name()), (p, a))
            })
        })
        .collect();
    let run = engine.run(shards, |_ctx, (p, a)| {
        let mut packer = Packer::new(profiles[p]);
        attack_av(world, &mut packer, &world.avs[a]).stats.asr
    });
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for (p, profile) in profiles.iter().enumerate() {
        let n = world.avs.len();
        rows.push((profile.name.to_owned(), run.results[p * n..(p + 1) * n].to_vec()));
    }
    let mpass_asrs = mpass_row.unwrap_or_else(|| mpass_reference_row(world, engine));
    rows.push(("MPass".to_owned(), mpass_asrs));
    (PackerResults { rows }, MetricsFile::from_run("packers", &run))
}

/// Run Table IV on a default engine, discarding the metrics.
pub fn run(world: &World, mpass_row: Option<Vec<f64>>) -> PackerResults {
    run_with_engine(world, &Engine::new(Default::default()), mpass_row).0
}

/// Compute MPass's ASR against every AV on `engine` (the shared reference
/// row of Tables IV, V and VI), one shard per AV.
pub fn mpass_reference_row(world: &World, engine: &Engine) -> Vec<f64> {
    let shards: Vec<Shard<usize>> = world
        .avs
        .iter()
        .enumerate()
        .map(|(a, av)| Shard::new(format!("MPass vs {}", av.name()), a))
        .collect();
    engine
        .run(shards, |_ctx, a| {
            let mut mpass = MPassAttack::new(
                world.all_known_models(),
                &world.pool,
                MPassConfig::builder()
                    .seed(world.config.seed)
                    .build()
                    .expect("default MPass config is valid"),
            );
            attack_av(world, &mut mpass, &world.avs[a]).stats.asr
        })
        .results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn table4_has_four_rows_and_five_columns() {
        let mut cfg = WorldConfig::quick();
        cfg.attack_samples = 2;
        let world = World::build(cfg);
        let results = run(&world, None);
        assert_eq!(results.rows.len(), 4);
        assert!(results.rows.iter().all(|(_, v)| v.len() == 5));
        let names: Vec<&str> = results.rows.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["UPX", "PESpin", "ASPack", "MPass"]);
        assert!(results.table4().contains("TABLE IV"));
    }
}
