//! EXP-T4 — Table IV: generic obfuscators (UPX, PESpin, ASPack) versus
//! MPass on the commercial AVs.

use crate::commercial::attack_av;
use crate::world::World;
use mpass_baselines::{packer_profiles, Packer};
use mpass_core::{MPassAttack, MPassConfig};
use serde::{Deserialize, Serialize};

/// Table IV contents.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackerResults {
    /// Rows: obfuscator/attack name → ASR (%) per AV₁..AV₅.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl PackerResults {
    /// Format Table IV.
    pub fn table4(&self) -> String {
        let avs: Vec<String> = (1..=5).map(|i| format!("AV{i}")).collect();
        crate::table::format_table(
            "TABLE IV: Comparison with obfuscation techniques on ASR (%) of attacking commercial AVs.",
            "Method",
            &avs,
            &self.rows,
            1,
        )
    }
}

/// Run Table IV: each packer applied once per sample against each AV.
/// `mpass_row` supplies the MPass reference ASRs (one per AV) when the
/// caller has already run the Figure-3 campaign; otherwise the row is
/// recomputed here.
pub fn run(world: &World, mpass_row: Option<Vec<f64>>) -> PackerResults {
    let mut rows = Vec::new();
    for profile in packer_profiles() {
        let mut asrs = Vec::new();
        for av in &world.avs {
            let mut packer = Packer::new(profile);
            let cell = attack_av(world, &mut packer, av);
            asrs.push(cell.stats.asr);
        }
        rows.push((profile.name.to_owned(), asrs));
    }
    let mpass_asrs = mpass_row.unwrap_or_else(|| mpass_reference_row(world));
    rows.push(("MPass".to_owned(), mpass_asrs));
    PackerResults { rows }
}

/// Compute MPass's ASR against every AV (the shared reference row of
/// Tables IV, V and VI).
pub fn mpass_reference_row(world: &World) -> Vec<f64> {
    world
        .avs
        .iter()
        .map(|av| {
            let mut mpass = MPassAttack::new(
                world.all_known_models(),
                &world.pool,
                MPassConfig { seed: world.config.seed, ..MPassConfig::default() },
            );
            attack_av(world, &mut mpass, av).stats.asr
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn table4_has_four_rows_and_five_columns() {
        let mut cfg = WorldConfig::quick();
        cfg.attack_samples = 2;
        let world = World::build(cfg);
        let results = run(&world, None);
        assert_eq!(results.rows.len(), 4);
        assert!(results.rows.iter().all(|(_, v)| v.len() == 5));
        let names: Vec<&str> = results.rows.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["UPX", "PESpin", "ASPack", "MPass"]);
        assert!(results.table4().contains("TABLE IV"));
    }
}
