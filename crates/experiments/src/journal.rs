//! Crash-safe campaign journal: a write-ahead JSONL log of per-sample
//! attack outcomes and per-shard cells.
//!
//! Every record is one JSON object on its own line, flushed as soon as
//! it is complete, so a killed process loses at most the line it was in
//! the middle of writing. On [`CampaignJournal::open`] the file is read
//! back, a torn trailing line (no `\n`, or unparsable) is truncated
//! away, and the surviving records become the resume state:
//!
//! * `{"kind":"sample","shard":…,"sample":…,"outcome":…}` — one
//!   finished [`AttackOutcome`]. A resumed campaign replays these
//!   instead of re-attacking (when the attack is stateless across
//!   samples) and gets bit-identical results.
//! * `{"kind":"shard","shard":…,"cell":…}` — a whole finished shard
//!   cell. A resumed campaign skips the shard entirely.
//! * `{"kind":"quarantine","shard":…,"sample":…,"reason":…}` — a sample
//!   whose bytes failed ingestion validation; the diagnostic reason is
//!   kept so hostile inputs leave an auditable trail instead of
//!   crashing or silently vanishing from the campaign.
//! * `{"kind":"metrics","shard":…,"worker":…,"metrics":…}` — the
//!   [`ShardMetrics`] a worker process collected while finishing the
//!   shard, so a distributed coordinator can merge per-process metrics
//!   into one engine metrics file.
//!
//! Journal *writes* fail loudly: every `record_*` method returns the
//! underlying I/O error (after bumping the
//! `campaign/journal_write_failed` counter), and campaign call sites
//! fail the shard rather than silently losing outcomes — a lost record
//! would let a resumed run double-spend oracle budget.
//!
//! The file is opened in append mode, so each record lands as one
//! `O_APPEND` write: even if a stale-lease takeover briefly leaves two
//! processes appending to the same shard journal, lines interleave
//! whole, never torn.

use mpass_core::AttackOutcome;
use mpass_engine::metrics::{self as trace, ShardMetrics};
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Called after every successfully appended record; the process-level
/// fault injector uses this to die at a deterministic journal offset.
type AppendHook = Box<dyn Fn() + Send + Sync>;

/// An append-only JSONL journal plus the records recovered from a
/// previous (possibly killed) run of the same campaign.
pub struct CampaignJournal {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
    /// Finished shard cells from the previous run, by shard label.
    shards: HashMap<String, Value>,
    /// Finished sample outcomes from the previous run, by
    /// `(shard label, sample name)`.
    samples: HashMap<(String, String), AttackOutcome>,
    /// Quarantined samples from the previous run, by
    /// `(shard label, sample name)`, with the diagnostic reason.
    quarantined: HashMap<(String, String), String>,
    /// Worker-attributed shard metrics from the previous run, by shard
    /// label (`(worker id, metrics)`; the latest record wins).
    metrics: HashMap<String, (String, ShardMetrics)>,
    hook: Option<AppendHook>,
}

impl CampaignJournal {
    /// Open (or create) the journal at `path`, recovering every intact
    /// record already there. A torn tail — a final line without `\n`,
    /// or one that does not parse — is truncated off the file so the
    /// next append starts on a clean boundary.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; recovery of a half-written file is
    /// not an error.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<CampaignJournal> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut shards = HashMap::new();
        let mut samples = HashMap::new();
        let mut quarantined = HashMap::new();
        let mut metrics = HashMap::new();
        let existing = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut valid_len = 0usize;
        for line in existing.split_inclusive('\n') {
            // A line still being written when the process died has no
            // terminator (or truncated JSON); everything from the first
            // such line on is discarded.
            if !line.ends_with('\n') {
                break;
            }
            let Some(record) = parse_record(line) else { break };
            match record {
                Record::Sample { shard, sample, outcome } => {
                    samples.insert((shard, sample), outcome);
                }
                Record::Shard { shard, cell } => {
                    shards.insert(shard, cell);
                }
                Record::Quarantine { shard, sample, reason } => {
                    quarantined.insert((shard, sample), reason);
                }
                Record::Metrics { shard, worker, metrics: m } => {
                    metrics.insert(shard, (worker, m));
                }
            }
            valid_len += line.len();
        }
        if valid_len < existing.len() {
            let file = OpenOptions::new().write(true).open(&path)?;
            file.set_len(valid_len as u64)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(CampaignJournal {
            path,
            writer: Mutex::new(BufWriter::new(file)),
            shards,
            samples,
            quarantined,
            metrics,
            hook: None,
        })
    }

    /// Where the journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Install a hook called after every successfully appended record.
    /// The fault injector uses this to kill the process at a
    /// deterministic journal offset.
    pub fn set_append_hook(&mut self, hook: impl Fn() + Send + Sync + 'static) {
        self.hook = Some(Box::new(hook));
    }

    /// Append a finished sample outcome.
    ///
    /// # Errors
    ///
    /// Propagates the write failure (after counting it under
    /// `campaign/journal_write_failed`); the caller must fail the shard
    /// rather than continue with a silently incomplete journal.
    pub fn record_sample(&self, shard: &str, outcome: &AttackOutcome) -> std::io::Result<()> {
        self.append(Value::Map(vec![
            ("kind".to_owned(), Value::Str("sample".to_owned())),
            ("shard".to_owned(), Value::Str(shard.to_owned())),
            ("sample".to_owned(), Value::Str(outcome.sample.clone())),
            ("outcome".to_owned(), outcome.to_value()),
        ]))
    }

    /// Append a quarantine diagnostic for a sample whose bytes failed
    /// ingestion validation.
    ///
    /// # Errors
    ///
    /// Propagates the write failure — see [`Self::record_sample`].
    pub fn record_quarantine(
        &self,
        shard: &str,
        sample: &str,
        reason: &str,
    ) -> std::io::Result<()> {
        self.append(Value::Map(vec![
            ("kind".to_owned(), Value::Str("quarantine".to_owned())),
            ("shard".to_owned(), Value::Str(shard.to_owned())),
            ("sample".to_owned(), Value::Str(sample.to_owned())),
            ("reason".to_owned(), Value::Str(reason.to_owned())),
        ]))
    }

    /// Append a finished shard cell.
    ///
    /// # Errors
    ///
    /// Propagates the write failure — see [`Self::record_sample`].
    pub fn record_shard(&self, shard: &str, cell: &impl Serialize) -> std::io::Result<()> {
        self.append(Value::Map(vec![
            ("kind".to_owned(), Value::Str("shard".to_owned())),
            ("shard".to_owned(), Value::Str(shard.to_owned())),
            ("cell".to_owned(), cell.to_value()),
        ]))
    }

    /// Append the metrics a worker collected while finishing `shard`,
    /// attributed to `worker` so a coordinator merge can report which
    /// process did the work.
    ///
    /// # Errors
    ///
    /// Propagates the write failure — see [`Self::record_sample`].
    pub fn record_metrics(
        &self,
        shard: &str,
        worker: &str,
        metrics: &ShardMetrics,
    ) -> std::io::Result<()> {
        self.append(Value::Map(vec![
            ("kind".to_owned(), Value::Str("metrics".to_owned())),
            ("shard".to_owned(), Value::Str(shard.to_owned())),
            ("worker".to_owned(), Value::Str(worker.to_owned())),
            ("metrics".to_owned(), metrics.to_value()),
        ]))
    }

    fn append(&self, record: Value) -> std::io::Result<()> {
        let result = (|| {
            let line = serde_json::to_string(&record)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
            // One write_all per record, flushed immediately: the line is
            // the atomicity unit recovery relies on.
            writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
        })();
        match result {
            Ok(()) => {
                if let Some(hook) = &self.hook {
                    hook();
                }
                Ok(())
            }
            Err(e) => {
                trace::counter("campaign/journal_write_failed", 1);
                Err(e)
            }
        }
    }

    /// A recovered sample outcome, if the previous run finished it.
    pub fn sample(&self, shard: &str, sample: &str) -> Option<&AttackOutcome> {
        self.samples.get(&(shard.to_owned(), sample.to_owned()))
    }

    /// Number of recovered sample outcomes across all shards.
    pub fn recovered_samples(&self) -> usize {
        self.samples.len()
    }

    /// The recorded quarantine reason for a sample, if the previous run
    /// quarantined it.
    pub fn quarantine_reason(&self, shard: &str, sample: &str) -> Option<&str> {
        self.quarantined.get(&(shard.to_owned(), sample.to_owned())).map(String::as_str)
    }

    /// Number of recovered quarantine records across all shards.
    pub fn recovered_quarantined(&self) -> usize {
        self.quarantined.len()
    }

    /// A recovered shard cell, if the previous run finished the whole
    /// shard. `None` both when absent and when the stored cell no
    /// longer matches `T`'s shape.
    pub fn shard_cell<T: Deserialize>(&self, shard: &str) -> Option<T> {
        self.shards.get(shard).and_then(|v| T::from_value(v).ok())
    }

    /// The recovered worker-attributed metrics for a shard, if a worker
    /// finished it and journalled its collector.
    pub fn shard_metrics(&self, shard: &str) -> Option<&(String, ShardMetrics)> {
        self.metrics.get(shard)
    }
}

/// What a read-only [`scan_journal`] pass saw. Unlike
/// [`CampaignJournal::open`], scanning never truncates the file, so a
/// coordinator can poll a journal that a live worker is appending to
/// without racing its writes.
#[derive(Debug, Clone, Default)]
pub struct JournalScan {
    /// Intact records seen (any kind).
    pub records: usize,
    /// Finished sample outcomes per shard label, with each sample's
    /// journalled query spend (the delivered-verdict budget accounting a
    /// resume replays instead of re-spending).
    pub sample_queries: HashMap<String, Vec<(String, usize)>>,
    /// Shard labels with a finished cell record.
    pub finished: Vec<String>,
    /// Which worker journalled each shard's metrics record (the worker
    /// that finished the shard), by shard label.
    pub finished_by: HashMap<String, String>,
    /// Quarantine records seen.
    pub quarantined: usize,
    /// Whether the file ends in a torn (unterminated or unparsable)
    /// tail — expected after a kill, repaired on the next `open`.
    pub torn: bool,
}

impl JournalScan {
    /// Finished samples recorded for `shard`.
    pub fn samples_done(&self, shard: &str) -> usize {
        self.sample_queries.get(shard).map_or(0, Vec::len)
    }

    /// Whether `shard`'s final cell is journalled.
    pub fn is_finished(&self, shard: &str) -> bool {
        self.finished.iter().any(|s| s == shard)
    }
}

/// Read-only scan of a journal file: counts per-shard progress without
/// opening the journal for append and without repairing torn tails. A
/// missing file scans as empty.
///
/// # Errors
///
/// Propagates filesystem errors other than the file not existing.
pub fn scan_journal(path: &Path) -> std::io::Result<JournalScan> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(JournalScan::default()),
        Err(e) => return Err(e),
    };
    let mut scan = JournalScan::default();
    for line in text.split_inclusive('\n') {
        if !line.ends_with('\n') {
            scan.torn = true;
            break;
        }
        let Some(record) = parse_record(line) else {
            scan.torn = true;
            break;
        };
        scan.records += 1;
        match record {
            Record::Sample { shard, sample, outcome } => {
                scan.sample_queries.entry(shard).or_default().push((sample, outcome.queries));
            }
            Record::Shard { shard, .. } => {
                if !scan.finished.contains(&shard) {
                    scan.finished.push(shard);
                }
            }
            Record::Quarantine { .. } => scan.quarantined += 1,
            Record::Metrics { shard, worker, .. } => {
                scan.finished_by.insert(shard, worker);
            }
        }
    }
    Ok(scan)
}

enum Record {
    Sample { shard: String, sample: String, outcome: AttackOutcome },
    Shard { shard: String, cell: Value },
    Quarantine { shard: String, sample: String, reason: String },
    Metrics { shard: String, worker: String, metrics: ShardMetrics },
}

fn parse_record(line: &str) -> Option<Record> {
    let value: Value = serde_json::from_str(line.trim_end()).ok()?;
    let shard = String::from_value(value.get("shard")?).ok()?;
    match value.get("kind")? {
        Value::Str(kind) if kind == "sample" => Some(Record::Sample {
            shard,
            sample: String::from_value(value.get("sample")?).ok()?,
            outcome: AttackOutcome::from_value(value.get("outcome")?).ok()?,
        }),
        Value::Str(kind) if kind == "shard" => {
            Some(Record::Shard { shard, cell: value.get("cell")?.clone() })
        }
        Value::Str(kind) if kind == "quarantine" => Some(Record::Quarantine {
            shard,
            sample: String::from_value(value.get("sample")?).ok()?,
            reason: String::from_value(value.get("reason")?).ok()?,
        }),
        Value::Str(kind) if kind == "metrics" => Some(Record::Metrics {
            shard,
            worker: String::from_value(value.get("worker")?).ok()?,
            metrics: ShardMetrics::from_value(value.get("metrics")?).ok()?,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(name: &str, evaded: bool) -> AttackOutcome {
        AttackOutcome {
            sample: name.to_owned(),
            evaded,
            queries: 7,
            adversarial: evaded.then(|| vec![0x4d, 0x5a, 0x90]),
            original_size: 100,
            final_size: 130,
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mpass-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn records_round_trip_across_reopen() {
        let path = temp_path("round-trip");
        let _ = std::fs::remove_file(&path);
        {
            let journal = CampaignJournal::open(&path).unwrap();
            journal.record_sample("MPass vs MalConv", &outcome("mal_0001", true)).unwrap();
            journal.record_sample("MPass vs MalConv", &outcome("mal_0002", false)).unwrap();
            journal.record_shard("MPass vs NonNeg", &vec![1u64, 2, 3]).unwrap();
        }
        let journal = CampaignJournal::open(&path).unwrap();
        assert_eq!(journal.recovered_samples(), 2);
        let first = journal.sample("MPass vs MalConv", "mal_0001").unwrap();
        assert!(first.evaded);
        assert_eq!(first.adversarial.as_deref(), Some(&[0x4d, 0x5a, 0x90][..]));
        assert!(!journal.sample("MPass vs MalConv", "mal_0002").unwrap().evaded);
        assert!(journal.sample("MPass vs MalConv", "mal_0003").is_none());
        assert_eq!(journal.shard_cell::<Vec<u64>>("MPass vs NonNeg").unwrap(), vec![1, 2, 3]);
        assert!(journal.shard_cell::<Vec<u64>>("MPass vs MalConv").is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn quarantine_records_survive_reopen_without_truncating() {
        let path = temp_path("quarantine");
        let _ = std::fs::remove_file(&path);
        {
            let journal = CampaignJournal::open(&path).unwrap();
            journal
                .record_quarantine("shard", "mal_0007", "header does not re-parse")
                .unwrap();
            // A record written *after* the quarantine must survive
            // recovery: an unknown kind would truncate everything behind
            // it, so the quarantine kind has to parse.
            journal.record_sample("shard", &outcome("mal_0008", true)).unwrap();
        }
        let journal = CampaignJournal::open(&path).unwrap();
        assert_eq!(journal.recovered_quarantined(), 1);
        assert_eq!(
            journal.quarantine_reason("shard", "mal_0007"),
            Some("header does not re-parse")
        );
        assert_eq!(journal.quarantine_reason("shard", "mal_0008"), None);
        assert_eq!(journal.recovered_samples(), 1);
        assert!(journal.sample("shard", "mal_0008").unwrap().evaded);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume_cleanly() {
        let path = temp_path("torn-tail");
        let _ = std::fs::remove_file(&path);
        {
            let journal = CampaignJournal::open(&path).unwrap();
            journal.record_sample("shard", &outcome("mal_0001", false)).unwrap();
        }
        // Simulate a kill mid-write: a record missing its newline.
        {
            use std::io::Write as _;
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            file.write_all(b"{\"kind\":\"sample\",\"shard\":\"shard\",\"sam").unwrap();
        }
        // A read-only scan sees the torn tail but repairs nothing.
        let scan = scan_journal(&path).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.samples_done("shard"), 1);
        let journal = CampaignJournal::open(&path).unwrap();
        assert_eq!(journal.recovered_samples(), 1);
        journal.record_sample("shard", &outcome("mal_0002", true)).unwrap();
        drop(journal);
        // The torn bytes are gone; both intact records survive a reopen.
        let reopened = CampaignJournal::open(&path).unwrap();
        assert_eq!(reopened.recovered_samples(), 2);
        assert!(reopened.sample("shard", "mal_0002").unwrap().evaded);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unparsable_line_discards_itself_and_the_rest() {
        let path = temp_path("garbage");
        std::fs::write(
            &path,
            "{\"kind\":\"shard\",\"shard\":\"a\",\"cell\":1}\nnot json at all\n{\"kind\":\"shard\",\"shard\":\"b\",\"cell\":2}\n",
        )
        .unwrap();
        let journal = CampaignJournal::open(&path).unwrap();
        assert_eq!(journal.shard_cell::<u64>("a"), Some(1));
        // Everything after the corrupt line is untrusted.
        assert_eq!(journal.shard_cell::<u64>("b"), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn metrics_records_round_trip_and_attribute_the_worker() {
        let path = temp_path("metrics");
        let _ = std::fs::remove_file(&path);
        let mut metrics = ShardMetrics { label: "MPass vs MalConv".into(), ..Default::default() };
        metrics.counters.insert("queries".into(), 41);
        {
            let journal = CampaignJournal::open(&path).unwrap();
            journal.record_metrics("MPass vs MalConv", "w3", &metrics).unwrap();
            journal.record_sample("MPass vs MalConv", &outcome("mal_0001", true)).unwrap();
        }
        let journal = CampaignJournal::open(&path).unwrap();
        let (worker, recovered) = journal.shard_metrics("MPass vs MalConv").unwrap();
        assert_eq!(worker, "w3");
        assert_eq!(recovered.counters["queries"], 41);
        // The metrics kind parses, so records behind it survive recovery.
        assert_eq!(journal.recovered_samples(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_hook_fires_once_per_record() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let path = temp_path("hook");
        let _ = std::fs::remove_file(&path);
        let mut journal = CampaignJournal::open(&path).unwrap();
        let appended = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&appended);
        journal.set_append_hook(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        journal.record_sample("shard", &outcome("mal_0001", false)).unwrap();
        journal.record_quarantine("shard", "mal_0002", "bad header").unwrap();
        journal.record_shard("shard", &1u64).unwrap();
        assert_eq!(appended.load(Ordering::SeqCst), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn scan_counts_progress_and_budget_without_mutating() {
        let path = temp_path("scan");
        let _ = std::fs::remove_file(&path);
        {
            let journal = CampaignJournal::open(&path).unwrap();
            journal.record_sample("a", &outcome("mal_0001", true)).unwrap();
            journal.record_sample("a", &outcome("mal_0002", false)).unwrap();
            journal.record_shard("a", &1u64).unwrap();
            journal.record_sample("b", &outcome("mal_0001", true)).unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();
        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.records, 4);
        assert_eq!(scan.samples_done("a"), 2);
        assert_eq!(scan.samples_done("b"), 1);
        assert!(scan.is_finished("a"));
        assert!(!scan.is_finished("b"));
        assert!(!scan.torn);
        assert_eq!(scan.sample_queries["a"][0], ("mal_0001".to_owned(), 7));
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before, "scan never writes");
        // A missing file scans as empty, not as an error.
        let missing = scan_journal(Path::new("/nonexistent/never/journal.jsonl")).unwrap();
        assert_eq!(missing.records, 0);
        std::fs::remove_file(&path).unwrap();
    }
}
