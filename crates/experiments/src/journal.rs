//! Crash-safe campaign journal: a write-ahead JSONL log of per-sample
//! attack outcomes and per-shard cells.
//!
//! Every record is one JSON object on its own line, flushed as soon as
//! it is complete, so a killed process loses at most the line it was in
//! the middle of writing. On [`CampaignJournal::open`] the file is read
//! back, a torn trailing line (no `\n`, or unparsable) is truncated
//! away, and the surviving records become the resume state:
//!
//! * `{"kind":"sample","shard":…,"sample":…,"outcome":…}` — one
//!   finished [`AttackOutcome`]. A resumed campaign replays these
//!   instead of re-attacking (when the attack is stateless across
//!   samples) and gets bit-identical results.
//! * `{"kind":"shard","shard":…,"cell":…}` — a whole finished shard
//!   cell. A resumed campaign skips the shard entirely.
//! * `{"kind":"quarantine","shard":…,"sample":…,"reason":…}` — a sample
//!   whose bytes failed ingestion validation; the diagnostic reason is
//!   kept so hostile inputs leave an auditable trail instead of
//!   crashing or silently vanishing from the campaign.
//!
//! Journal *writes* are deliberately non-fatal: a full disk should cost
//! resumability, not the campaign — errors go to stderr and the run
//! continues.

use mpass_core::AttackOutcome;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// An append-only JSONL journal plus the records recovered from a
/// previous (possibly killed) run of the same campaign.
pub struct CampaignJournal {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
    /// Finished shard cells from the previous run, by shard label.
    shards: HashMap<String, Value>,
    /// Finished sample outcomes from the previous run, by
    /// `(shard label, sample name)`.
    samples: HashMap<(String, String), AttackOutcome>,
    /// Quarantined samples from the previous run, by
    /// `(shard label, sample name)`, with the diagnostic reason.
    quarantined: HashMap<(String, String), String>,
}

impl CampaignJournal {
    /// Open (or create) the journal at `path`, recovering every intact
    /// record already there. A torn tail — a final line without `\n`,
    /// or one that does not parse — is truncated off the file so the
    /// next append starts on a clean boundary.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; recovery of a half-written file is
    /// not an error.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<CampaignJournal> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut shards = HashMap::new();
        let mut samples = HashMap::new();
        let mut quarantined = HashMap::new();
        let existing = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut valid_len = 0usize;
        for line in existing.split_inclusive('\n') {
            // A line still being written when the process died has no
            // terminator (or truncated JSON); everything from the first
            // such line on is discarded.
            if !line.ends_with('\n') {
                break;
            }
            let Some(record) = parse_record(line) else { break };
            match record {
                Record::Sample { shard, sample, outcome } => {
                    samples.insert((shard, sample), outcome);
                }
                Record::Shard { shard, cell } => {
                    shards.insert(shard, cell);
                }
                Record::Quarantine { shard, sample, reason } => {
                    quarantined.insert((shard, sample), reason);
                }
            }
            valid_len += line.len();
        }
        if valid_len < existing.len() {
            let file = OpenOptions::new().write(true).open(&path)?;
            file.set_len(valid_len as u64)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(CampaignJournal {
            path,
            writer: Mutex::new(BufWriter::new(file)),
            shards,
            samples,
            quarantined,
        })
    }

    /// Where the journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append a finished sample outcome.
    pub fn record_sample(&self, shard: &str, outcome: &AttackOutcome) {
        self.append(Value::Map(vec![
            ("kind".to_owned(), Value::Str("sample".to_owned())),
            ("shard".to_owned(), Value::Str(shard.to_owned())),
            ("sample".to_owned(), Value::Str(outcome.sample.clone())),
            ("outcome".to_owned(), outcome.to_value()),
        ]));
    }

    /// Append a quarantine diagnostic for a sample whose bytes failed
    /// ingestion validation.
    pub fn record_quarantine(&self, shard: &str, sample: &str, reason: &str) {
        self.append(Value::Map(vec![
            ("kind".to_owned(), Value::Str("quarantine".to_owned())),
            ("shard".to_owned(), Value::Str(shard.to_owned())),
            ("sample".to_owned(), Value::Str(sample.to_owned())),
            ("reason".to_owned(), Value::Str(reason.to_owned())),
        ]));
    }

    /// Append a finished shard cell.
    pub fn record_shard(&self, shard: &str, cell: &impl Serialize) {
        self.append(Value::Map(vec![
            ("kind".to_owned(), Value::Str("shard".to_owned())),
            ("shard".to_owned(), Value::Str(shard.to_owned())),
            ("cell".to_owned(), cell.to_value()),
        ]));
    }

    fn append(&self, record: Value) {
        let line = match serde_json::to_string(&record) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("journal: could not render record: {e}");
                return;
            }
        };
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // One write_all per record, flushed immediately: the line is the
        // atomicity unit recovery relies on.
        if let Err(e) =
            writer.write_all(line.as_bytes()).and_then(|()| writer.write_all(b"\n")).and_then(
                |()| writer.flush(),
            )
        {
            eprintln!("journal: could not append to {}: {e}", self.path.display());
        }
    }

    /// A recovered sample outcome, if the previous run finished it.
    pub fn sample(&self, shard: &str, sample: &str) -> Option<&AttackOutcome> {
        self.samples.get(&(shard.to_owned(), sample.to_owned()))
    }

    /// Number of recovered sample outcomes across all shards.
    pub fn recovered_samples(&self) -> usize {
        self.samples.len()
    }

    /// The recorded quarantine reason for a sample, if the previous run
    /// quarantined it.
    pub fn quarantine_reason(&self, shard: &str, sample: &str) -> Option<&str> {
        self.quarantined.get(&(shard.to_owned(), sample.to_owned())).map(String::as_str)
    }

    /// Number of recovered quarantine records across all shards.
    pub fn recovered_quarantined(&self) -> usize {
        self.quarantined.len()
    }

    /// A recovered shard cell, if the previous run finished the whole
    /// shard. `None` both when absent and when the stored cell no
    /// longer matches `T`'s shape.
    pub fn shard_cell<T: Deserialize>(&self, shard: &str) -> Option<T> {
        self.shards.get(shard).and_then(|v| T::from_value(v).ok())
    }
}

enum Record {
    Sample { shard: String, sample: String, outcome: AttackOutcome },
    Shard { shard: String, cell: Value },
    Quarantine { shard: String, sample: String, reason: String },
}

fn parse_record(line: &str) -> Option<Record> {
    let value: Value = serde_json::from_str(line.trim_end()).ok()?;
    let shard = String::from_value(value.get("shard")?).ok()?;
    match value.get("kind")? {
        Value::Str(kind) if kind == "sample" => Some(Record::Sample {
            shard,
            sample: String::from_value(value.get("sample")?).ok()?,
            outcome: AttackOutcome::from_value(value.get("outcome")?).ok()?,
        }),
        Value::Str(kind) if kind == "shard" => {
            Some(Record::Shard { shard, cell: value.get("cell")?.clone() })
        }
        Value::Str(kind) if kind == "quarantine" => Some(Record::Quarantine {
            shard,
            sample: String::from_value(value.get("sample")?).ok()?,
            reason: String::from_value(value.get("reason")?).ok()?,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(name: &str, evaded: bool) -> AttackOutcome {
        AttackOutcome {
            sample: name.to_owned(),
            evaded,
            queries: 7,
            adversarial: evaded.then(|| vec![0x4d, 0x5a, 0x90]),
            original_size: 100,
            final_size: 130,
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mpass-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn records_round_trip_across_reopen() {
        let path = temp_path("round-trip");
        let _ = std::fs::remove_file(&path);
        {
            let journal = CampaignJournal::open(&path).unwrap();
            journal.record_sample("MPass vs MalConv", &outcome("mal_0001", true));
            journal.record_sample("MPass vs MalConv", &outcome("mal_0002", false));
            journal.record_shard("MPass vs NonNeg", &vec![1u64, 2, 3]);
        }
        let journal = CampaignJournal::open(&path).unwrap();
        assert_eq!(journal.recovered_samples(), 2);
        let first = journal.sample("MPass vs MalConv", "mal_0001").unwrap();
        assert!(first.evaded);
        assert_eq!(first.adversarial.as_deref(), Some(&[0x4d, 0x5a, 0x90][..]));
        assert!(!journal.sample("MPass vs MalConv", "mal_0002").unwrap().evaded);
        assert!(journal.sample("MPass vs MalConv", "mal_0003").is_none());
        assert_eq!(journal.shard_cell::<Vec<u64>>("MPass vs NonNeg").unwrap(), vec![1, 2, 3]);
        assert!(journal.shard_cell::<Vec<u64>>("MPass vs MalConv").is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn quarantine_records_survive_reopen_without_truncating() {
        let path = temp_path("quarantine");
        let _ = std::fs::remove_file(&path);
        {
            let journal = CampaignJournal::open(&path).unwrap();
            journal.record_quarantine("shard", "mal_0007", "header does not re-parse");
            // A record written *after* the quarantine must survive
            // recovery: an unknown kind would truncate everything behind
            // it, so the quarantine kind has to parse.
            journal.record_sample("shard", &outcome("mal_0008", true));
        }
        let journal = CampaignJournal::open(&path).unwrap();
        assert_eq!(journal.recovered_quarantined(), 1);
        assert_eq!(
            journal.quarantine_reason("shard", "mal_0007"),
            Some("header does not re-parse")
        );
        assert_eq!(journal.quarantine_reason("shard", "mal_0008"), None);
        assert_eq!(journal.recovered_samples(), 1);
        assert!(journal.sample("shard", "mal_0008").unwrap().evaded);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume_cleanly() {
        let path = temp_path("torn-tail");
        let _ = std::fs::remove_file(&path);
        {
            let journal = CampaignJournal::open(&path).unwrap();
            journal.record_sample("shard", &outcome("mal_0001", false));
        }
        // Simulate a kill mid-write: a record missing its newline.
        {
            use std::io::Write as _;
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            file.write_all(b"{\"kind\":\"sample\",\"shard\":\"shard\",\"sam").unwrap();
        }
        let journal = CampaignJournal::open(&path).unwrap();
        assert_eq!(journal.recovered_samples(), 1);
        journal.record_sample("shard", &outcome("mal_0002", true));
        drop(journal);
        // The torn bytes are gone; both intact records survive a reopen.
        let reopened = CampaignJournal::open(&path).unwrap();
        assert_eq!(reopened.recovered_samples(), 2);
        assert!(reopened.sample("shard", "mal_0002").unwrap().evaded);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unparsable_line_discards_itself_and_the_rest() {
        let path = temp_path("garbage");
        std::fs::write(
            &path,
            "{\"kind\":\"shard\",\"shard\":\"a\",\"cell\":1}\nnot json at all\n{\"kind\":\"shard\",\"shard\":\"b\",\"cell\":2}\n",
        )
        .unwrap();
        let journal = CampaignJournal::open(&path).unwrap();
        assert_eq!(journal.shard_cell::<u64>("a"), Some(1));
        // Everything after the corrupt line is untrusted.
        assert_eq!(journal.shard_cell::<u64>("b"), None);
        std::fs::remove_file(&path).unwrap();
    }
}
