//! Worker process: claims shard leases, runs the shard work, and
//! journals everything — including its collected metrics — into the
//! shard's crash-safe journal.
//!
//! The worker and the single-process baseline share one execution path
//! ([`run_shard_work`]) and one serialization path
//! ([`report_from_cells`]), which is what makes a merged distributed
//! campaign byte-identical to an uninterrupted in-process run: same
//! label-keyed shard seeds, same resume semantics, same JSON shape.
//!
//! Fault injection is process-level: with `kill_after` set, the worker
//! counts journal appends across all its shards and dies via
//! `std::process::abort` — no unwinding, no destructors — at exactly
//! the N-th append, emulating a SIGKILL at a deterministic journal
//! offset.

use super::lease::{Heartbeat, Lease};
use super::manifest::{CampaignKind, Manifest, ShardSpec};
use crate::campaign::CampaignOptions;
use crate::commercial::{attack_av_with, CommercialCell};
use crate::journal::{scan_journal, CampaignJournal};
use crate::offline::{attack_target_with, make_attack, OfflineCell, OfflineResults};
use crate::world::World;
use mpass_core::attack::metrics::AttackStats;
use mpass_detectors::{CachedAv, FaultProfile};
use mpass_engine::metrics::{self as trace, Collector};
use mpass_engine::{Engine, EngineConfig, MetricsFile, Shard};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One finished shard cell of either campaign kind.
#[derive(Debug, Clone)]
pub enum AnyCell {
    /// An offline (Tables I–III) cell.
    Offline(OfflineCell),
    /// A commercial (Figure 3) cell.
    Commercial(CommercialCell),
}

/// Run one manifest shard. This is *the* shard execution path — the
/// worker, the in-process baseline, and the exp binaries' distributed
/// mode all come through here, so there is exactly one place where a
/// shard's attack, target, seed, and resume behaviour are decided.
pub fn run_shard_work(
    world: &World,
    kind: CampaignKind,
    spec: &ShardSpec,
    opts: &CampaignOptions,
    journal: Option<&CampaignJournal>,
    shard_seed: u64,
) -> AnyCell {
    match kind {
        CampaignKind::Offline => {
            let (_, det) = world
                .offline_targets()
                .into_iter()
                .find(|(n, _)| *n == spec.target)
                .unwrap_or_else(|| {
                    panic!("manifest shard {} names unknown target {}", spec.label, spec.target)
                });
            let mut attack = make_attack(world, &spec.target, &spec.attack);
            AnyCell::Offline(attack_target_with(
                world,
                attack.as_mut(),
                det,
                &spec.label,
                opts,
                journal,
                shard_seed,
            ))
        }
        CampaignKind::Commercial => {
            let index = spec
                .target
                .strip_prefix("AV")
                .and_then(|n| n.parse::<usize>().ok())
                .and_then(|n| n.checked_sub(1))
                .filter(|i| *i < world.avs.len())
                .unwrap_or_else(|| {
                    panic!("manifest shard {} names unknown AV {}", spec.label, spec.target)
                });
            // Fresh memoizing wrapper per shard, exactly like the
            // in-process commercial campaign.
            let av = CachedAv::new(world.avs[index].clone());
            let mut attack = make_attack(world, "LightGBM", &spec.attack);
            AnyCell::Commercial(attack_av_with(
                world,
                attack.as_mut(),
                &av,
                &spec.label,
                opts,
                journal,
                shard_seed,
            ))
        }
    }
}

/// Serialize finished cells into the same pretty-JSON report the exp
/// binaries persist: [`OfflineResults`] for offline campaigns, the slim
/// `(attack, av, stats)` rows (AEs dropped — they are large) for
/// commercial ones. Coordinator merge and in-process baseline both call
/// this, so their outputs can be compared byte-for-byte.
pub fn report_from_cells(kind: CampaignKind, cells: &[AnyCell]) -> String {
    match kind {
        CampaignKind::Offline => {
            let cells: Vec<OfflineCell> = cells
                .iter()
                .filter_map(|c| match c {
                    AnyCell::Offline(cell) => Some(cell.clone()),
                    AnyCell::Commercial(_) => None,
                })
                .collect();
            serde_json::to_string_pretty(&OfflineResults { cells }).expect("results serialize")
        }
        CampaignKind::Commercial => {
            let slim: Vec<(String, String, AttackStats)> = cells
                .iter()
                .filter_map(|c| match c {
                    AnyCell::Commercial(cell) => {
                        Some((cell.attack.clone(), cell.av.clone(), cell.stats))
                    }
                    AnyCell::Offline(_) => None,
                })
                .collect();
            serde_json::to_string_pretty(&slim).expect("results serialize")
        }
    }
}

/// Uninterrupted single-process reference run over the manifest's exact
/// shard grid, on the work-stealing engine. Returns the serialized
/// report and the metrics file — the report is what a distributed
/// merge must reproduce byte-for-byte.
pub fn run_baseline(world: &World, manifest: &Manifest, workers: usize) -> (String, MetricsFile) {
    let engine = Engine::new(EngineConfig { workers, seed: manifest.seed });
    let opts = CampaignOptions {
        faults: manifest.faults.map(FaultProfile::seeded),
        ..CampaignOptions::default()
    };
    let shards: Vec<Shard<&ShardSpec>> =
        manifest.shards.iter().map(|s| Shard::new(s.label.clone(), s)).collect();
    let run = engine.run(shards, |ctx, spec| {
        run_shard_work(world, manifest.kind, spec, &opts, None, engine.shard_seed(ctx.label()))
    });
    let report = report_from_cells(manifest.kind, &run.results);
    let metrics = MetricsFile::from_run(manifest.kind.experiment_name(), &run);
    (report, metrics)
}

/// How a worker process should behave.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// The campaign directory (holding `manifest.json`).
    pub dir: PathBuf,
    /// This worker's id, recorded in leases and metrics records.
    pub worker_id: String,
    /// Lease TTL: how long a silent lease stays unbreakable.
    pub ttl: Duration,
    /// Lease renewal interval (must be well under `ttl`).
    pub heartbeat: Duration,
    /// Idle poll interval while other live workers hold all remaining
    /// shards.
    pub poll: Duration,
    /// Fault injection: abort the process at the N-th journal append
    /// (counted across shards).
    pub kill_after: Option<u64>,
    /// Test pacing: sleep this long after every journal append, so an
    /// injected kill reliably lands mid-shard instead of racing shard
    /// completion.
    pub hold: Duration,
}

impl WorkerOptions {
    /// Defaults for a worker on `dir`: 10 s TTL, 1 s heartbeat, 200 ms
    /// poll, no fault injection.
    pub fn new(dir: impl Into<PathBuf>, worker_id: impl Into<String>) -> WorkerOptions {
        WorkerOptions {
            dir: dir.into(),
            worker_id: worker_id.into(),
            ttl: Duration::from_secs(10),
            heartbeat: Duration::from_secs(1),
            poll: Duration::from_millis(200),
            kill_after: None,
            hold: Duration::ZERO,
        }
    }
}

/// What a worker did before exiting cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSummary {
    /// The worker's id.
    pub worker_id: String,
    /// Shards this worker finished (journalled cell + metrics).
    pub shards_run: usize,
    /// Shards that panicked in this process (left for other workers).
    pub shards_failed: usize,
}

/// Run the worker loop: repeatedly sweep the manifest's shards in grid
/// order, claim an unfinished one, run it, and journal the result.
/// Returns when every shard in the campaign has a journalled cell.
///
/// # Errors
///
/// Manifest/journal/lease I-O errors, or every remaining shard having
/// panicked in this process (another worker or a respawn must take
/// them — retrying a deterministic panic locally would spin).
pub fn run_worker(opts: &WorkerOptions) -> Result<WorkerSummary, String> {
    let manifest = Manifest::load(&opts.dir)
        .map_err(|e| format!("worker {}: load manifest: {e}", opts.worker_id))?;
    let world = World::build(manifest.world.clone());
    // The engine is only the seed oracle here: shard seeds are keyed by
    // label, so one worker thread per process still produces exactly
    // the seeds an in-process multi-threaded run would.
    let engine = Engine::new(EngineConfig { workers: 1, seed: manifest.seed });
    let campaign = CampaignOptions {
        faults: manifest.faults.map(FaultProfile::seeded),
        resume: true,
        ..CampaignOptions::default()
    };
    let appended = Arc::new(AtomicU64::new(0));
    let mut failed: HashSet<String> = HashSet::new();
    let mut summary = WorkerSummary {
        worker_id: opts.worker_id.clone(),
        shards_run: 0,
        shards_failed: 0,
    };
    loop {
        let mut unfinished = 0usize;
        let mut claimable = 0usize;
        let mut attempted = false;
        for spec in &manifest.shards {
            let journal_path = manifest.journal_path(&opts.dir, spec);
            let scan = scan_journal(&journal_path)
                .map_err(|e| format!("worker {}: scan {}: {e}", opts.worker_id, spec.slug))?;
            if scan.is_finished(&spec.label) {
                continue;
            }
            unfinished += 1;
            if failed.contains(&spec.label) {
                continue;
            }
            claimable += 1;
            let lease_path = manifest.lease_path(&opts.dir, spec);
            let Some(lease) = Lease::try_claim(&lease_path, &opts.worker_id, opts.ttl)
                .map_err(|e| format!("worker {}: claim {}: {e}", opts.worker_id, spec.slug))?
            else {
                continue;
            };
            attempted = true;
            match run_leased_shard(
                &world, &manifest, spec, &engine, &campaign, opts, &appended, lease,
            ) {
                Ok(()) => summary.shards_run += 1,
                Err(message) => {
                    eprintln!("worker {}: shard {}: {message}", opts.worker_id, spec.label);
                    failed.insert(spec.label.clone());
                    summary.shards_failed += 1;
                }
            }
        }
        if unfinished == 0 {
            return Ok(summary);
        }
        if claimable == 0 {
            return Err(format!(
                "worker {}: every remaining shard panicked in this process",
                opts.worker_id
            ));
        }
        if !attempted {
            // Live peers hold every remaining lease; wait for them to
            // finish (or for their leases to go stale).
            std::thread::sleep(opts.poll);
        }
    }
}

/// Run one claimed shard under heartbeat, metrics collection and panic
/// isolation. The lease is always released on the way out — a panicked
/// shard goes straight back on the market instead of waiting out the
/// TTL.
#[allow(clippy::too_many_arguments)]
fn run_leased_shard(
    world: &World,
    manifest: &Manifest,
    spec: &ShardSpec,
    engine: &Engine,
    campaign: &CampaignOptions,
    opts: &WorkerOptions,
    appended: &Arc<AtomicU64>,
    lease: Lease,
) -> Result<(), String> {
    let journal_path = manifest.journal_path(&opts.dir, spec);
    let mut journal = CampaignJournal::open(&journal_path)
        .map_err(|e| format!("open journal {}: {e}", journal_path.display()))?;
    {
        let appended = Arc::clone(appended);
        let kill_after = opts.kill_after;
        let hold = opts.hold;
        journal.set_append_hook(move || {
            let n = appended.fetch_add(1, Ordering::SeqCst) + 1;
            if hold > Duration::ZERO {
                std::thread::sleep(hold);
            }
            if kill_after.is_some_and(|k| n >= k) {
                // SIGKILL-grade death: no unwinding, no flushing — the
                // record that triggered this is already on disk, and
                // nothing after it ever will be.
                std::process::abort();
            }
        });
    }
    let heartbeat = Heartbeat::start(lease, opts.heartbeat);
    let shard_seed = engine.shard_seed(&spec.label);
    let previous = trace::install(Collector::default());
    let started = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        run_shard_work(world, manifest.kind, spec, campaign, Some(&journal), shard_seed)
    }));
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let collector = trace::take().unwrap_or_default();
    if let Some(previous) = previous {
        trace::install(previous);
    }
    let (lease, lost) = heartbeat.stop();
    if lost {
        // Someone broke our lease (e.g. this process was stopped past
        // the TTL). The work still journalled deterministically, so any
        // duplicate records are byte-identical; just surface it.
        eprintln!(
            "worker {}: lease for {} was taken over mid-shard (records may duplicate, \
             merge dedupes)",
            opts.worker_id, spec.label
        );
    }
    let result = match outcome {
        Ok(_cell) => {
            // The cell itself was journalled by the shard work; add the
            // worker-attributed metrics record.
            let shard_metrics = collector.finish(spec.label.clone(), wall_ms);
            journal
                .record_metrics(&spec.label, &opts.worker_id, &shard_metrics)
                .map_err(|e| format!("journal metrics: {e}"))
        }
        Err(payload) => Err(format!("panicked: {}", panic_message(payload.as_ref()))),
    };
    let _ = lease.release();
    result
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn tiny_manifest(dir: &std::path::Path) -> Manifest {
        let mut cfg = WorldConfig::quick();
        cfg.attack_samples = 2;
        let manifest = Manifest::new(
            CampaignKind::Offline,
            cfg,
            11,
            None,
            &["GAMMA".into()],
            &["MalConv".into()],
        );
        manifest.save(dir).unwrap();
        manifest
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("mpass-worker-tests")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn worker_runs_manifest_and_matches_baseline() {
        let dir = temp_dir("runs");
        let manifest = tiny_manifest(&dir);
        let world = World::build(manifest.world.clone());
        let (baseline, _) = run_baseline(&world, &manifest, 1);

        let opts = WorkerOptions::new(&dir, "wtest");
        let summary = run_worker(&opts).unwrap();
        assert_eq!(summary.shards_run, 1);
        assert_eq!(summary.shards_failed, 0);

        // The journal now carries the cell and the worker's metrics.
        let spec = &manifest.shards[0];
        let journal = CampaignJournal::open(manifest.journal_path(&dir, spec)).unwrap();
        let cell: OfflineCell = journal.shard_cell(&spec.label).expect("cell journalled");
        let (worker, metrics) = journal.shard_metrics(&spec.label).expect("metrics journalled");
        assert_eq!(worker, "wtest");
        assert_eq!(metrics.label, spec.label);
        assert!(metrics.counters.contains_key("queries"), "shard work queried the oracle");

        // One cell serialized through the shared path equals the
        // baseline report.
        let report = report_from_cells(manifest.kind, &[AnyCell::Offline(cell)]);
        assert_eq!(report, baseline);

        // Leases are released, and a second worker sees nothing to do.
        assert!(std::fs::read_dir(dir.join("leases")).unwrap().next().is_none());
        let again = run_worker(&WorkerOptions::new(&dir, "wtest2")).unwrap();
        assert_eq!(again.shards_run, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_target_fails_the_shard_not_the_worker() {
        let dir = temp_dir("unknown-target");
        let mut cfg = WorldConfig::quick();
        cfg.attack_samples = 1;
        let manifest = Manifest::new(
            CampaignKind::Offline,
            cfg,
            11,
            None,
            &["GAMMA".into()],
            &["NoSuchModel".into()],
        );
        manifest.save(&dir).unwrap();
        let err = run_worker(&WorkerOptions::new(&dir, "wbad")).unwrap_err();
        assert!(err.contains("every remaining shard panicked"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
