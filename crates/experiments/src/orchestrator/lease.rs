//! Lease-based shard ownership for multi-process campaigns.
//!
//! A shard is owned by whichever worker holds `leases/<slug>.lease`.
//! Claiming is arbitrated by `O_CREAT|O_EXCL` (`create_new`): exactly
//! one process wins the race to create the file. The winner then
//! publishes its identity (worker id, pid, heartbeat counter) into the
//! file via tmp+rename and keeps renewing it on a heartbeat thread.
//!
//! A lease is *stale* — and may be broken by anyone — when its holder's
//! pid is demonstrably dead, or when the file has not been renewed
//! within the TTL. Breaking is remove-then-reclaim; the reclaim goes
//! through `create_new` again, so two takers racing over the same stale
//! lease still resolve to one winner. The brief window where a broken
//! worker's journal and the taker's journal both exist is harmless: the
//! journal appends whole `O_APPEND` lines and shard work is
//! deterministic, so duplicate records are byte-identical and collapse
//! in the merge.

use super::manifest::write_atomic;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What a lease file says about its holder.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaseInfo {
    /// Holder's worker id (e.g. `"w0"`).
    pub worker: String,
    /// Holder's OS pid, for liveness probing.
    pub pid: u64,
    /// Renewal counter; bumped on every heartbeat.
    pub beat: u64,
}

/// Parse a lease file. `Ok(None)` when the file is missing *or* holds
/// no parsable info yet (a claim exists but its content was not yet
/// published — the TTL alone governs such a lease).
///
/// # Errors
///
/// Propagates filesystem errors other than the file not existing.
pub fn read_info(path: &Path) -> io::Result<Option<LeaseInfo>> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    Ok(serde_json::from_str(&text).ok())
}

/// Whether `pid` is running. On Linux this probes `/proc`; elsewhere it
/// conservatively answers `true`, leaving staleness to the TTL.
pub fn pid_alive(pid: u64) -> bool {
    if pid == u64::from(std::process::id()) {
        return true;
    }
    #[cfg(target_os = "linux")]
    {
        Path::new(&format!("/proc/{pid}")).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        true
    }
}

/// Whether the lease at `path` is stale: its holder's pid is dead, or
/// the file has not been touched within `ttl`. A missing lease is not
/// stale (there is nothing to break); a claimed-but-unpublished lease
/// goes only by the TTL.
///
/// # Errors
///
/// Propagates filesystem errors other than the file disappearing.
pub fn is_stale(path: &Path, ttl: Duration) -> io::Result<bool> {
    let meta = match std::fs::metadata(path) {
        Ok(meta) => meta,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e),
    };
    let age = meta.modified()?.elapsed().unwrap_or_default();
    if age > ttl {
        return Ok(true);
    }
    match read_info(path)? {
        Some(info) => Ok(!pid_alive(info.pid)),
        None => Ok(false),
    }
}

/// A held lease. Dropping it does *not* release — release is explicit
/// (so a panicking worker leaves the lease for TTL/pid expiry, exactly
/// like a killed one).
#[derive(Debug)]
pub struct Lease {
    path: PathBuf,
    worker: String,
    beat: u64,
}

impl Lease {
    /// Try to claim the lease at `path` for `worker`. Returns `None`
    /// when another live holder has it; breaks and takes over a stale
    /// one (losing that race also returns `None`).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn try_claim(path: &Path, worker: &str, ttl: Duration) -> io::Result<Option<Lease>> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        match std::fs::OpenOptions::new().write(true).create_new(true).open(path) {
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                if !is_stale(path, ttl)? {
                    return Ok(None);
                }
                match std::fs::remove_file(path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
                // create_new arbitrates the takeover race: of all the
                // processes that just saw the stale lease, one recreates
                // the file and the rest land here.
                match std::fs::OpenOptions::new().write(true).create_new(true).open(path) {
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::AlreadyExists => return Ok(None),
                    Err(e) => return Err(e),
                }
            }
            Err(e) => return Err(e),
        }
        let mut lease = Lease { path: path.to_owned(), worker: worker.to_owned(), beat: 0 };
        lease.renew()?;
        Ok(Some(lease))
    }

    /// Publish a fresh heartbeat (bumping the renewal counter and the
    /// file mtime the TTL goes by).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn renew(&mut self) -> io::Result<()> {
        self.beat += 1;
        let info = LeaseInfo {
            worker: self.worker.clone(),
            pid: u64::from(std::process::id()),
            beat: self.beat,
        };
        let json = serde_json::to_string(&info)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        write_atomic(&self.path, json.as_bytes())
    }

    /// Whether the on-disk lease still names this process as holder. A
    /// stale-lease takeover (e.g. this process was stopped long enough
    /// for the TTL to lapse) replaces the holder out from under us.
    pub fn still_held(&self) -> bool {
        matches!(
            read_info(&self.path),
            Ok(Some(info))
                if info.worker == self.worker && info.pid == u64::from(std::process::id())
        )
    }

    /// The lease file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Release the lease so another worker can claim the shard
    /// immediately instead of waiting out the TTL.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (an already-missing file is fine —
    /// a taker may have broken the lease first).
    pub fn release(self) -> io::Result<()> {
        match std::fs::remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// A background thread renewing a [`Lease`] every `interval` until
/// stopped, watching for takeover.
pub struct Heartbeat {
    stop: Arc<AtomicBool>,
    lost: Arc<AtomicBool>,
    handle: JoinHandle<Lease>,
}

impl Heartbeat {
    /// Start renewing `lease` every `interval`.
    pub fn start(lease: Lease, interval: Duration) -> Heartbeat {
        let stop = Arc::new(AtomicBool::new(false));
        let lost = Arc::new(AtomicBool::new(false));
        let handle = std::thread::spawn({
            let stop = Arc::clone(&stop);
            let lost = Arc::clone(&lost);
            let mut lease = lease;
            move || {
                while !stop.load(Ordering::SeqCst) {
                    // Sleep in small steps so stop() returns promptly.
                    let mut slept = Duration::ZERO;
                    while slept < interval && !stop.load(Ordering::SeqCst) {
                        let step = Duration::from_millis(10).min(interval - slept);
                        std::thread::sleep(step);
                        slept += step;
                    }
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if !lease.still_held() || lease.renew().is_err() {
                        lost.store(true, Ordering::SeqCst);
                        break;
                    }
                }
                lease
            }
        });
        Heartbeat { stop, lost, handle }
    }

    /// Whether the lease was taken over (or renewal failed) while
    /// heartbeating. A worker seeing this must treat its shard work as
    /// potentially duplicated, not exclusively owned.
    pub fn lost(&self) -> bool {
        self.lost.load(Ordering::SeqCst)
    }

    /// Stop heartbeating and get the lease back, plus whether it was
    /// lost along the way.
    pub fn stop(self) -> (Lease, bool) {
        self.stop.store(true, Ordering::SeqCst);
        let lost = Arc::clone(&self.lost);
        let lease = self.handle.join().expect("heartbeat thread never panics");
        (lease, lost.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_lease(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mpass-lease-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}-{}.lease", std::process::id()))
    }

    const TTL: Duration = Duration::from_secs(60);

    #[test]
    fn claim_is_exclusive_until_released() {
        let path = temp_lease("exclusive");
        let _ = std::fs::remove_file(&path);
        let lease = Lease::try_claim(&path, "w0", TTL).unwrap().expect("first claim wins");
        assert!(lease.still_held());
        let info = read_info(&path).unwrap().expect("claim publishes holder info");
        assert_eq!(info.worker, "w0");
        assert_eq!(info.pid, u64::from(std::process::id()));
        // Second claimant loses while the holder is alive and fresh.
        assert!(Lease::try_claim(&path, "w1", TTL).unwrap().is_none());
        lease.release().unwrap();
        let lease = Lease::try_claim(&path, "w1", TTL).unwrap().expect("released lease reclaims");
        lease.release().unwrap();
    }

    #[test]
    fn dead_pid_lease_is_stale_and_breakable() {
        let path = temp_lease("dead-pid");
        let _ = std::fs::remove_file(&path);
        // Forge a lease held by a pid that cannot exist.
        let info = LeaseInfo { worker: "ghost".into(), pid: u64::MAX - 1, beat: 3 };
        std::fs::write(&path, serde_json::to_string(&info).unwrap()).unwrap();
        if cfg!(target_os = "linux") {
            assert!(is_stale(&path, TTL).unwrap());
            let lease =
                Lease::try_claim(&path, "w2", TTL).unwrap().expect("stale lease is broken");
            assert_eq!(read_info(&path).unwrap().unwrap().worker, "w2");
            lease.release().unwrap();
        } else {
            // Without pid probing only the TTL can break it.
            assert!(!is_stale(&path, TTL).unwrap());
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn expired_ttl_lease_is_stale() {
        let path = temp_lease("expired");
        let _ = std::fs::remove_file(&path);
        let info =
            LeaseInfo { worker: "slow".into(), pid: u64::from(std::process::id()), beat: 1 };
        std::fs::write(&path, serde_json::to_string(&info).unwrap()).unwrap();
        // Live pid + fresh mtime: not stale.
        assert!(!is_stale(&path, TTL).unwrap());
        // Zero TTL: any mtime has lapsed.
        std::thread::sleep(Duration::from_millis(20));
        assert!(is_stale(&path, Duration::ZERO).unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_lease_is_not_stale() {
        assert!(!is_stale(Path::new("/nonexistent/never.lease"), TTL).unwrap());
    }

    #[test]
    fn heartbeat_renews_and_detects_takeover() {
        let path = temp_lease("heartbeat");
        let _ = std::fs::remove_file(&path);
        let lease = Lease::try_claim(&path, "w0", TTL).unwrap().unwrap();
        let beat0 = read_info(&path).unwrap().unwrap().beat;
        let heartbeat = Heartbeat::start(lease, Duration::from_millis(20));
        std::thread::sleep(Duration::from_millis(120));
        assert!(!heartbeat.lost());
        let (lease, lost) = heartbeat.stop();
        assert!(!lost);
        assert!(read_info(&path).unwrap().unwrap().beat > beat0, "heartbeat renews");

        // Simulate a takeover: another worker overwrites the lease.
        let usurper =
            LeaseInfo { worker: "w9".into(), pid: u64::from(std::process::id()), beat: 1 };
        std::fs::write(&path, serde_json::to_string(&usurper).unwrap()).unwrap();
        assert!(!lease.still_held());
        let heartbeat = Heartbeat::start(lease, Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(100));
        assert!(heartbeat.lost(), "takeover is noticed");
        let (_lease, lost) = heartbeat.stop();
        assert!(lost);
        std::fs::remove_file(&path).unwrap();
    }
}
