//! Distributed campaign orchestration: one coordinator process, N
//! worker processes, lease-based shard ownership, crash-safe journals,
//! and a deterministic merge.
//!
//! Layout of a campaign directory:
//!
//! ```text
//! <dir>/
//!   manifest.json          # world config + seed + shard grid (hashed)
//!   leases/<slug>.lease    # heartbeat files: who owns which shard
//!   shards/<slug>.jsonl    # per-shard crash-safe journals
//!   events.jsonl           # coordinator event log (reassignments, respawns)
//!   merged.json            # final report, byte-identical to in-process
//!   merged.metrics.json    # merged per-worker shard metrics
//! ```
//!
//! The determinism story: shard seeds are keyed by shard *label* (not
//! by worker, thread, or schedule), resume replays journalled verdicts
//! instead of re-querying the oracle, and the merge serializes cells in
//! manifest order through the exact code path the in-process runners
//! use. Kill any worker at any point, restart anything, and the merged
//! report comes out byte-for-byte the same.

pub mod coordinator;
pub mod lease;
pub mod manifest;
pub mod worker;

pub use coordinator::{
    campaign_status, merge_campaign, read_events, render_status, run_coordinator,
    run_fault_matrix, CampaignStatus, CoordinatorOptions, CoordinatorSummary,
    FaultMatrixOptions, KillPoint, ShardStatus,
};
pub use lease::{Heartbeat, Lease, LeaseInfo};
pub use manifest::{CampaignKind, Manifest, ShardSpec};
pub use worker::{
    report_from_cells, run_baseline, run_shard_work, run_worker, AnyCell, WorkerOptions,
    WorkerSummary,
};

use std::time::Duration;

/// Parse the worker-process flags the coordinator passes when spawning
/// (`--dir`, `--worker-id`, `--ttl-ms`, `--heartbeat-ms`, `--poll-ms`,
/// `--hold-ms`, `--kill-after`). Shared by `mpass campaign work` and
/// the exp binaries' hidden `--orchestrate-work` entry.
///
/// # Errors
///
/// A missing `--dir` or an unparsable numeric value.
pub fn worker_options_from_args(args: &[String]) -> Result<WorkerOptions, String> {
    let grab = |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1));
    let number = |flag: &str| -> Result<Option<u64>, String> {
        grab(flag)
            .map(|v| v.parse().map_err(|_| format!("{flag}: not a number: {v}")))
            .transpose()
    };
    let dir = grab("--dir").ok_or_else(|| "worker needs --dir <campaign-dir>".to_owned())?;
    // "manual" keeps a hand-started worker out of the coordinator's
    // `w<N>` id space.
    let worker_id = grab("--worker-id").cloned().unwrap_or_else(|| "manual".to_owned());
    let mut opts = WorkerOptions::new(dir, worker_id);
    if let Some(ms) = number("--ttl-ms")? {
        opts.ttl = Duration::from_millis(ms);
    }
    if let Some(ms) = number("--heartbeat-ms")? {
        opts.heartbeat = Duration::from_millis(ms);
    }
    if let Some(ms) = number("--poll-ms")? {
        opts.poll = Duration::from_millis(ms);
    }
    if let Some(ms) = number("--hold-ms")? {
        opts.hold = Duration::from_millis(ms);
    }
    opts.kill_after = number("--kill-after")?;
    Ok(opts)
}

/// The hidden worker entry for the exp binaries: when the process was
/// started with `--orchestrate-work`, run the worker loop instead of
/// the experiment and return the exit code to use. `None` means this is
/// a normal invocation.
pub fn maybe_run_worker_from_args() -> Option<i32> {
    let args: Vec<String> = std::env::args().collect();
    if !args.iter().any(|a| a == "--orchestrate-work") {
        return None;
    }
    Some(match worker_options_from_args(&args).and_then(|opts| run_worker(&opts)) {
        Ok(summary) => {
            println!(
                "worker {}: {} shard(s) run, {} failed",
                summary.worker_id, summary.shards_run, summary.shards_failed
            );
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    })
}

/// Run an experiment's full campaign grid across `processes` worker
/// processes (the exp binaries' `--processes N` mode). The campaign
/// directory lives at `results/<experiment>.campaign`; the merged
/// report and metrics are copied to the same `results/<experiment>.*`
/// paths a single-process run writes — with byte-identical report
/// content.
///
/// # Errors
///
/// Coordination or filesystem errors.
pub fn run_distributed(
    kind: CampaignKind,
    experiment: &str,
    world: crate::WorldConfig,
    faults: Option<u64>,
    processes: usize,
    resume: bool,
) -> Result<(CoordinatorSummary, std::path::PathBuf), String> {
    let attacks: Vec<String> =
        crate::offline::ATTACK_NAMES.iter().map(|a| (*a).to_owned()).collect();
    let seed = world.seed;
    let manifest = Manifest::new(kind, world, seed, faults, &attacks, &kind.default_targets());
    let dir = std::path::Path::new(crate::report::RESULTS_DIR).join(format!("{experiment}.campaign"));
    if !resume {
        // Same contract as the single-process journal: a fresh run must
        // not resurrect records from an older campaign.
        let _ = std::fs::remove_dir_all(&dir);
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let worker_cmd = vec![exe.to_string_lossy().into_owned(), "--orchestrate-work".to_owned()];
    let mut opts = CoordinatorOptions::new(dir, worker_cmd);
    opts.processes = processes;
    opts.resume = resume;
    let summary = run_coordinator(&manifest, &opts)?;

    let results_path =
        std::path::Path::new(crate::report::RESULTS_DIR).join(format!("{experiment}.json"));
    std::fs::copy(&summary.report_path, &results_path)
        .map_err(|e| format!("copy merged report to {}: {e}", results_path.display()))?;
    let metrics_path = mpass_engine::metrics_path(&results_path);
    std::fs::copy(&summary.metrics_path, &metrics_path)
        .map_err(|e| format!("copy merged metrics to {}: {e}", metrics_path.display()))?;
    Ok((summary, results_path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn worker_args_parse_full_set() {
        let opts = worker_options_from_args(&args(&[
            "exp_offline",
            "--orchestrate-work",
            "--dir",
            "/tmp/c",
            "--worker-id",
            "w3",
            "--ttl-ms",
            "2500",
            "--heartbeat-ms",
            "250",
            "--poll-ms",
            "50",
            "--hold-ms",
            "5",
            "--kill-after",
            "7",
        ]))
        .unwrap();
        assert_eq!(opts.dir, std::path::PathBuf::from("/tmp/c"));
        assert_eq!(opts.worker_id, "w3");
        assert_eq!(opts.ttl, Duration::from_millis(2500));
        assert_eq!(opts.heartbeat, Duration::from_millis(250));
        assert_eq!(opts.poll, Duration::from_millis(50));
        assert_eq!(opts.hold, Duration::from_millis(5));
        assert_eq!(opts.kill_after, Some(7));
    }

    #[test]
    fn worker_args_require_dir_and_default_the_rest() {
        let err = worker_options_from_args(&args(&["bin", "--orchestrate-work"])).unwrap_err();
        assert!(err.contains("--dir"), "{err}");
        let opts = worker_options_from_args(&args(&["bin", "--dir", "d"])).unwrap();
        assert_eq!(opts.worker_id, "manual");
        assert_eq!(opts.kill_after, None);
        let err =
            worker_options_from_args(&args(&["bin", "--dir", "d", "--ttl-ms", "soon"]))
                .unwrap_err();
        assert!(err.contains("not a number"), "{err}");
    }
}
