//! Campaign coordinator: writes the manifest, spawns worker processes,
//! supervises their leases, and merges the per-shard journals into one
//! deterministic final report.
//!
//! The coordinator never runs shard work itself. Its contract is
//! recovery-shaped:
//!
//! * A worker that dies (crash, SIGKILL, injected abort) leaves a lease
//!   whose pid is dead; the supervision loop breaks it and the shard
//!   goes back on the market with its journal intact, so the next
//!   claimant resumes at sample granularity instead of re-spending
//!   oracle budget.
//! * A coordinator that dies is itself restartable: `--resume` loads
//!   the existing manifest (validated by config hash), clears stale
//!   leases — mirroring how `mpass-serve` replaces a stale socket from
//!   a dead daemon — and re-merges. The merge is a pure function of the
//!   journals and writes through tmp+rename, so re-running it after any
//!   interruption produces the same bytes.
//!
//! Process-level fault injection is a first-class input: a seeded kill
//! schedule maps spawn indices to journal-append offsets, and the
//! fault-matrix harness sweeps such schedules asserting the merged
//! report stays byte-identical to an uninterrupted run.

use super::lease::{self, LeaseInfo};
use super::manifest::{write_atomic, CampaignKind, Manifest};
use super::worker::{report_from_cells, run_baseline, AnyCell};
use crate::journal::{scan_journal, CampaignJournal};
use crate::world::{World, WorldConfig};
use mpass_engine::{EngineInfo, MetricsFile, ShardFailure, ShardMetrics};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Value;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Kill the worker spawned `spawn_index`-th (0-based, respawns
/// included) after its `after_records`-th journal append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillPoint {
    /// Which spawn (not which worker id slot) to arm.
    pub spawn_index: usize,
    /// Abort at this cumulative append count.
    pub after_records: u64,
}

/// How the coordinator should run a campaign.
#[derive(Debug, Clone)]
pub struct CoordinatorOptions {
    /// Campaign directory (created if needed).
    pub dir: PathBuf,
    /// Worker processes to keep running.
    pub processes: usize,
    /// Command line prefix that starts one worker; the coordinator
    /// appends `--dir`, `--worker-id` and the timing/fault flags.
    pub worker_cmd: Vec<String>,
    /// Lease TTL handed to workers and used to break stale leases.
    pub ttl: Duration,
    /// Supervision poll interval.
    pub poll: Duration,
    /// Lease heartbeat interval handed to workers.
    pub heartbeat: Duration,
    /// Per-append pacing handed to workers (test determinism).
    pub hold: Duration,
    /// Fault injection schedule.
    pub kill_schedule: Vec<KillPoint>,
    /// How many dead workers to replace before giving up.
    pub max_respawns: usize,
    /// Abort the campaign (killing workers) after this much wall time.
    pub deadline: Option<Duration>,
    /// Continue an initialized campaign directory instead of refusing.
    pub resume: bool,
}

impl CoordinatorOptions {
    /// Defaults for a campaign in `dir` run by `worker_cmd`: 2
    /// processes, 10 s TTL, 1 s heartbeat, 200 ms poll, 8 respawns, no
    /// kills, no deadline.
    pub fn new(dir: impl Into<PathBuf>, worker_cmd: Vec<String>) -> CoordinatorOptions {
        CoordinatorOptions {
            dir: dir.into(),
            processes: 2,
            worker_cmd,
            ttl: Duration::from_secs(10),
            poll: Duration::from_millis(200),
            heartbeat: Duration::from_secs(1),
            hold: Duration::ZERO,
            kill_schedule: Vec::new(),
            max_respawns: 8,
            deadline: None,
            resume: false,
        }
    }
}

/// What a finished coordination run produced.
#[derive(Debug, Clone)]
pub struct CoordinatorSummary {
    /// The merged report path (`<dir>/merged.json`).
    pub report_path: PathBuf,
    /// The merged metrics path (`<dir>/merged.metrics.json`).
    pub metrics_path: PathBuf,
    /// The merged report bytes (what `report_path` holds).
    pub report: String,
    /// Shards in the campaign.
    pub shards: usize,
    /// Expired/dead leases the supervision loop broke.
    pub reassigned: usize,
    /// Dead worker processes replaced.
    pub respawned: usize,
    /// Total worker processes spawned (initial + respawns).
    pub spawned: usize,
}

/// Initialize (or re-open) the campaign directory. A fresh coordinate
/// on an already-initialized directory is refused unless `resume`; a
/// resume loads and revalidates the existing manifest rather than
/// trusting the caller's flags.
///
/// # Errors
///
/// Filesystem/validation errors, or the directory being initialized
/// without `resume`.
pub fn init_campaign(dir: &Path, manifest: &Manifest, resume: bool) -> Result<Manifest, String> {
    if Manifest::path(dir).exists() {
        if !resume {
            return Err(format!(
                "{} already holds a campaign; pass --resume to continue it or pick a fresh --dir",
                dir.display()
            ));
        }
        return Manifest::load(dir).map_err(|e| e.to_string());
    }
    manifest.save(dir).map_err(|e| format!("write manifest: {e}"))?;
    Ok(manifest.clone())
}

/// Remove stale state a dead coordinator or dead workers left behind:
/// leases whose holder pid is dead or whose TTL lapsed, and `*.tmp`
/// remnants of interrupted atomic writes. Returns the cleared lease
/// descriptions. This mirrors the serve daemon's stale-socket handling:
/// state files from dead processes must never block a restart.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn clear_stale_state(
    dir: &Path,
    manifest: &Manifest,
    ttl: Duration,
) -> Result<Vec<String>, String> {
    let mut cleared = Vec::new();
    for spec in &manifest.shards {
        let path = manifest.lease_path(dir, spec);
        if lease::is_stale(&path, ttl).map_err(|e| format!("{}: {e}", path.display()))? {
            let holder = lease::read_info(&path)
                .ok()
                .flatten()
                .map_or_else(|| "unknown".to_owned(), |i| i.worker);
            let _ = std::fs::remove_file(&path);
            cleared.push(format!("{} (held by {holder})", spec.label));
        }
    }
    for sub in [dir.to_owned(), dir.join("shards"), dir.join("leases")] {
        let Ok(entries) = std::fs::read_dir(&sub) else { continue };
        for entry in entries.flatten() {
            if entry.path().extension().is_some_and(|e| e == "tmp") {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
    Ok(cleared)
}

/// Append one event to the coordinator's single-writer event log
/// (`<dir>/events.jsonl`). Best-effort observability: event-log I/O
/// errors are reported by the caller but never fail the campaign.
fn log_event(dir: &Path, event: &str, shard: &str, detail: &str) -> std::io::Result<()> {
    let line = serde_json::to_string(&Value::Map(vec![
        ("event".to_owned(), Value::Str(event.to_owned())),
        ("shard".to_owned(), Value::Str(shard.to_owned())),
        ("detail".to_owned(), Value::Str(detail.to_owned())),
    ]))
    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut file =
        std::fs::OpenOptions::new().create(true).append(true).open(dir.join("events.jsonl"))?;
    writeln!(file, "{line}")
}

/// Parse the event log back into `(event, shard, detail)` rows. A
/// missing log reads as empty.
pub fn read_events(dir: &Path) -> Vec<(String, String, String)> {
    let Ok(text) = std::fs::read_to_string(dir.join("events.jsonl")) else { return Vec::new() };
    text.lines()
        .filter_map(|line| {
            let value: Value = serde_json::from_str(line).ok()?;
            let field = |k: &str| match value.get(k) {
                Some(Value::Str(s)) => Some(s.clone()),
                _ => None,
            };
            Some((field("event")?, field("shard")?, field("detail")?))
        })
        .collect()
}

struct WorkerProc {
    child: Child,
    id: String,
}

fn spawn_worker(opts: &CoordinatorOptions, spawned: &mut usize) -> Result<WorkerProc, String> {
    let spawn_index = *spawned;
    *spawned += 1;
    let id = format!("w{spawn_index}");
    let (program, rest) = opts
        .worker_cmd
        .split_first()
        .ok_or_else(|| "empty worker command".to_owned())?;
    let mut cmd = Command::new(program);
    cmd.args(rest)
        .arg("--dir")
        .arg(&opts.dir)
        .arg("--worker-id")
        .arg(&id)
        .arg("--ttl-ms")
        .arg(opts.ttl.as_millis().to_string())
        .arg("--heartbeat-ms")
        .arg(opts.heartbeat.as_millis().to_string())
        .stdout(Stdio::null());
    if opts.hold > Duration::ZERO {
        cmd.arg("--hold-ms").arg(opts.hold.as_millis().to_string());
    }
    if let Some(kill) = opts.kill_schedule.iter().find(|k| k.spawn_index == spawn_index) {
        cmd.arg("--kill-after").arg(kill.after_records.to_string());
    }
    let child = cmd.spawn().map_err(|e| format!("spawn worker {id} ({program}): {e}"))?;
    let _ = log_event(&opts.dir, "worker_spawned", "", &id);
    Ok(WorkerProc { child, id })
}

/// Run the whole campaign: manifest, workers, supervision, merge.
///
/// # Errors
///
/// Initialization/spawn/filesystem errors, the respawn budget running
/// out with shards unfinished, or the deadline lapsing.
pub fn run_coordinator(
    manifest: &Manifest,
    opts: &CoordinatorOptions,
) -> Result<CoordinatorSummary, String> {
    let started = Instant::now();
    let manifest = init_campaign(&opts.dir, manifest, opts.resume)?;
    for cleared in clear_stale_state(&opts.dir, &manifest, opts.ttl)? {
        println!("cleared stale lease: {cleared}");
        let _ = log_event(&opts.dir, "stale_lease_cleared", &cleared, "");
    }

    let total = manifest.shards.len();
    let mut workers: Vec<WorkerProc> = Vec::new();
    let mut spawned = 0usize;
    let mut reassigned = 0usize;
    let mut respawned = 0usize;
    let mut finished_series: Vec<f64> = Vec::new();
    let mut last_line = String::new();
    let supervise = loop {
        // Live progress, streamed from read-only journal scans — the
        // coordinator never opens (and so never truncates) a journal a
        // worker is appending to.
        let mut finished = 0usize;
        let mut samples = 0usize;
        let mut unfinished = Vec::new();
        for spec in &manifest.shards {
            let scan = scan_journal(&manifest.journal_path(&opts.dir, spec))
                .map_err(|e| format!("scan {}: {e}", spec.slug))?;
            samples += scan.samples_done(&spec.label);
            if scan.is_finished(&spec.label) {
                finished += 1;
            } else {
                unfinished.push(spec);
            }
        }
        finished_series.push(finished as f64);
        let line = format!(
            "campaign: {finished}/{total} shards, {samples} samples journalled, \
             {reassigned} reassigned, {respawned} respawned"
        );
        if line != last_line {
            println!("{line}");
            last_line = line;
        }
        if finished == total {
            break Ok(());
        }

        // Workers are spawned lazily so a resume of an already-complete
        // campaign goes straight to the merge.
        if workers.is_empty() && spawned == 0 {
            for _ in 0..opts.processes.max(1) {
                workers.push(spawn_worker(opts, &mut spawned)?);
            }
        }

        // Break leases whose holder died or went silent past the TTL;
        // the shard goes back on the market with its journal intact.
        for spec in &unfinished {
            let path = manifest.lease_path(&opts.dir, spec);
            if lease::is_stale(&path, opts.ttl).map_err(|e| format!("{}: {e}", path.display()))? {
                let holder = lease::read_info(&path)
                    .ok()
                    .flatten()
                    .map_or_else(|| "unknown".to_owned(), |i| i.worker);
                let _ = std::fs::remove_file(&path);
                reassigned += 1;
                let _ = log_event(&opts.dir, "lease_reassigned", &spec.label, &holder);
                println!("reassigned {} (lease of {holder} expired)", spec.label);
            }
        }

        // Reap dead workers.
        let mut alive = Vec::new();
        for mut worker in workers {
            match worker.child.try_wait() {
                Ok(Some(status)) => {
                    let _ = log_event(&opts.dir, "worker_exited", "", &format!("{status}"));
                    println!("worker {} exited ({status}) with shards unfinished", worker.id);
                }
                Ok(None) => alive.push(worker),
                Err(e) => return Err(format!("wait worker {}: {e}", worker.id)),
            }
        }
        workers = alive;
        if workers.is_empty() {
            if respawned >= opts.max_respawns {
                break Err(format!(
                    "all workers exited and the respawn budget ({}) is spent; campaign stuck \
                     at {finished}/{total} shards",
                    opts.max_respawns
                ));
            }
            respawned += 1;
            let worker = spawn_worker(opts, &mut spawned)?;
            let _ = log_event(&opts.dir, "worker_respawned", "", &worker.id);
            workers.push(worker);
        }

        if let Some(deadline) = opts.deadline {
            if started.elapsed() > deadline {
                for worker in &mut workers {
                    let _ = worker.child.kill();
                }
                break Err(format!(
                    "campaign deadline ({deadline:?}) lapsed at {finished}/{total} shards"
                ));
            }
        }
        std::thread::sleep(opts.poll);
    };
    // Always reap remaining children (they exit on their own once every
    // shard is finished; on error paths they were killed above or will
    // exit against the finished journals).
    for mut worker in workers {
        let _ = worker.child.wait();
    }
    supervise?;

    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let mut coordinator = ShardMetrics { label: "coordinator".into(), ..Default::default() };
    coordinator.wall_ms = wall_ms;
    coordinator.counters.insert("campaign/lease_reassigned".into(), reassigned as u64);
    coordinator.counters.insert("campaign/worker_respawned".into(), respawned as u64);
    coordinator.counters.insert("campaign/workers_spawned".into(), spawned as u64);
    coordinator.series.insert("campaign/shards_finished".into(), finished_series);

    let (report, metrics) = merge_campaign(&opts.dir, &manifest, opts.processes, coordinator)?;
    let report_path = opts.dir.join("merged.json");
    let metrics_path = opts.dir.join("merged.metrics.json");
    write_atomic(&report_path, report.as_bytes())
        .map_err(|e| format!("write {}: {e}", report_path.display()))?;
    metrics
        .save(&metrics_path)
        .map_err(|e| format!("write {}: {e}", metrics_path.display()))?;
    Ok(CoordinatorSummary {
        report_path,
        metrics_path,
        report,
        shards: total,
        reassigned,
        respawned,
        spawned,
    })
}

/// Merge the per-shard journals into the final report and metrics — a
/// pure function of the journals (idempotent, so a coordinator killed
/// mid-merge just re-merges on restart). Cells come out in manifest
/// order, which is engine input order, which is why the report can be
/// byte-identical to an uninterrupted in-process run.
///
/// # Errors
///
/// Journal I-O errors.
pub fn merge_campaign(
    dir: &Path,
    manifest: &Manifest,
    processes: usize,
    coordinator: ShardMetrics,
) -> Result<(String, MetricsFile), String> {
    let mut cells = Vec::new();
    let mut shard_metrics = Vec::new();
    let mut failures = Vec::new();
    for (index, spec) in manifest.shards.iter().enumerate() {
        let journal = CampaignJournal::open(manifest.journal_path(dir, spec))
            .map_err(|e| format!("open journal {}: {e}", spec.slug))?;
        let cell = match manifest.kind {
            CampaignKind::Offline => journal.shard_cell(&spec.label).map(AnyCell::Offline),
            CampaignKind::Commercial => journal.shard_cell(&spec.label).map(AnyCell::Commercial),
        };
        match cell {
            Some(cell) => cells.push(cell),
            None => failures.push(ShardFailure {
                index,
                label: spec.label.clone(),
                panic: "no journalled cell (shard never finished)".to_owned(),
            }),
        }
        shard_metrics.push(match journal.shard_metrics(&spec.label) {
            Some((_worker, metrics)) => metrics.clone(),
            None => ShardMetrics { label: spec.label.clone(), ..Default::default() },
        });
    }
    let report = report_from_cells(manifest.kind, &cells);
    let wall_ms = coordinator.wall_ms;
    shard_metrics.push(coordinator);
    let metrics = MetricsFile {
        experiment: format!("campaign-{}", manifest.kind.experiment_name()),
        engine: EngineInfo {
            workers: processes,
            seed: manifest.seed,
            shards: manifest.shards.len(),
        },
        wall_ms,
        shards: shard_metrics,
        failures,
    };
    Ok((report, metrics))
}

/// Per-shard view of a campaign directory.
#[derive(Debug, Clone)]
pub struct ShardStatus {
    /// Shard label.
    pub label: String,
    /// Journalled finished samples.
    pub samples_done: usize,
    /// Whether the final cell is journalled.
    pub finished: bool,
    /// The worker whose metrics record closed the shard.
    pub finished_by: Option<String>,
    /// Current lease holder, if any.
    pub lease: Option<LeaseInfo>,
    /// Times the coordinator broke this shard's lease.
    pub reassigned: usize,
}

/// Everything `mpass campaign status` / `mpass engine-report <dir>`
/// reports about a campaign directory.
#[derive(Debug, Clone)]
pub struct CampaignStatus {
    /// Campaign kind.
    pub kind: CampaignKind,
    /// Engine seed.
    pub seed: u64,
    /// Per-shard progress, in manifest order.
    pub shards: Vec<ShardStatus>,
    /// Total lease reassignments logged.
    pub reassigned: usize,
    /// Total worker respawns logged.
    pub respawned: usize,
    /// Total worker processes spawned.
    pub spawned: usize,
    /// Whether `merged.json` exists.
    pub merged: bool,
}

/// Inspect a campaign directory without touching it (journals are
/// scanned read-only; live workers are unaffected).
///
/// # Errors
///
/// Manifest/journal I-O errors.
pub fn campaign_status(dir: &Path) -> Result<CampaignStatus, String> {
    let manifest = Manifest::load(dir).map_err(|e| e.to_string())?;
    let events = read_events(dir);
    let mut shards = Vec::with_capacity(manifest.shards.len());
    for spec in &manifest.shards {
        let scan = scan_journal(&manifest.journal_path(dir, spec))
            .map_err(|e| format!("scan {}: {e}", spec.slug))?;
        let lease = lease::read_info(&manifest.lease_path(dir, spec)).ok().flatten();
        shards.push(ShardStatus {
            label: spec.label.clone(),
            samples_done: scan.samples_done(&spec.label),
            finished: scan.is_finished(&spec.label),
            finished_by: scan.finished_by.get(&spec.label).cloned(),
            lease,
            reassigned: events
                .iter()
                .filter(|(event, shard, _)| event == "lease_reassigned" && *shard == spec.label)
                .count(),
        });
    }
    let count = |name: &str| events.iter().filter(|(event, _, _)| event == name).count();
    Ok(CampaignStatus {
        kind: manifest.kind,
        seed: manifest.seed,
        shards,
        reassigned: count("lease_reassigned"),
        respawned: count("worker_respawned"),
        spawned: count("worker_spawned"),
        merged: dir.join("merged.json").exists(),
    })
}

/// Render a [`CampaignStatus`] as the human report behind
/// `mpass campaign status` and `mpass engine-report <dir>`.
pub fn render_status(status: &CampaignStatus) -> String {
    let finished = status.shards.iter().filter(|s| s.finished).count();
    let mut out = format!(
        "campaign `{}` (seed {:#x}): {finished}/{} shards finished, merged: {}\n",
        status.kind,
        status.seed,
        status.shards.len(),
        if status.merged { "yes" } else { "no" }
    );
    for shard in &status.shards {
        let state = if shard.finished {
            format!(
                "finished by {}",
                shard.finished_by.as_deref().unwrap_or("<no metrics record>")
            )
        } else if let Some(lease) = &shard.lease {
            format!("running on {} (pid {}, beat {})", lease.worker, lease.pid, lease.beat)
        } else {
            "unclaimed".to_owned()
        };
        out.push_str(&format!(
            "  {:<24} {} samples, {state}{}\n",
            shard.label,
            shard.samples_done,
            if shard.reassigned > 0 {
                format!(", reassigned x{}", shard.reassigned)
            } else {
                String::new()
            }
        ));
    }
    out.push_str(&format!(
        "totals: {} workers spawned, {} lease reassignments, {} respawns\n",
        status.spawned, status.reassigned, status.respawned
    ));
    out
}

/// How to sweep the process-fault matrix.
#[derive(Debug, Clone)]
pub struct FaultMatrixOptions {
    /// Output directory for campaign dirs, diffs and the summary.
    pub out: PathBuf,
    /// Seed for the kill schedule.
    pub seed: u64,
    /// Number of seeded kill points to sweep.
    pub kills: usize,
    /// Worker processes per campaign.
    pub processes: usize,
    /// Worker command prefix (see [`CoordinatorOptions::worker_cmd`]).
    pub worker_cmd: Vec<String>,
    /// Attack samples per shard (small grid keeps the sweep quick).
    pub samples: usize,
}

/// Sweep the process-fault matrix: an uninterrupted in-process baseline,
/// then one distributed campaign per seeded kill point (a worker
/// SIGKILL-aborted at a deterministic journal offset), then a
/// coordinator-restart-mid-merge case — each asserting the merged
/// report is byte-identical to the baseline and that no shard journal
/// holds duplicate sample records (the double-spend signature).
///
/// Writes `summary.txt`, `baseline.json` and any `*.diff` artifacts
/// into `out`.
///
/// # Errors
///
/// Setup/coordination errors, or any case diverging from the baseline.
pub fn run_fault_matrix(opts: &FaultMatrixOptions) -> Result<String, String> {
    std::fs::create_dir_all(&opts.out).map_err(|e| format!("create {:?}: {e}", opts.out))?;
    // Small grid, stateless attacks only: sample-level resume is what
    // makes a mid-shard kill budget-neutral, and stateful attacks (RLA,
    // MAB) only get shard-level resume.
    let mut config = WorldConfig::quick();
    config.attack_samples = opts.samples;
    let manifest = Manifest::new(
        CampaignKind::Offline,
        config.clone(),
        config.seed,
        None,
        &["MPass".into(), "GAMMA".into()],
        &["MalConv".into()],
    );
    println!("fault matrix: building world + baseline ({} shards)", manifest.shards.len());
    let world = World::build(config);
    let (baseline, _) = run_baseline(&world, &manifest, 0);
    std::fs::write(opts.out.join("baseline.json"), &baseline)
        .map_err(|e| format!("write baseline: {e}"))?;

    let coordinator_opts = |dir: PathBuf| {
        let mut c = CoordinatorOptions::new(dir, opts.worker_cmd.clone());
        c.processes = opts.processes;
        c.ttl = Duration::from_secs(2);
        c.heartbeat = Duration::from_millis(200);
        c.poll = Duration::from_millis(100);
        c.deadline = Some(Duration::from_secs(600));
        c
    };

    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let mut lines = Vec::new();
    let mut mismatches = 0usize;
    for case in 0..opts.kills {
        let spawn_index = rng.gen_range(0..opts.processes.max(1));
        let after_records = rng.gen_range(1..=4u64);
        let dir = opts.out.join(format!("kill-{case:02}"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut copts = coordinator_opts(dir);
        copts.kill_schedule = vec![KillPoint { spawn_index, after_records }];
        let summary = run_coordinator(&manifest, &copts)?;
        let verdict = check_case(
            &format!("kill-{case:02}"),
            &summary,
            &baseline,
            &manifest,
            &copts.dir,
            &opts.out,
        )?;
        if !verdict.ok {
            mismatches += 1;
        }
        lines.push(format!(
            "kill-{case:02}: kill spawn {spawn_index} after {after_records} appends -> \
             {} ({} reassigned, {} respawned)",
            verdict.describe, summary.reassigned, summary.respawned
        ));
        println!("{}", lines.last().expect("just pushed"));
    }

    // Coordinator killed mid-merge: a finished campaign whose merged
    // report is gone and whose tmp file holds garbage must re-merge to
    // the same bytes on a resumed coordinate.
    let dir = opts.out.join("restart-mid-merge");
    let _ = std::fs::remove_dir_all(&dir);
    let first = run_coordinator(&manifest, &coordinator_opts(dir.clone()))?;
    std::fs::remove_file(&first.report_path).map_err(|e| format!("drop merged report: {e}"))?;
    std::fs::write(dir.join("merged.json.tmp"), b"{ garbage from a dead coordinator")
        .map_err(|e| format!("plant torn tmp: {e}"))?;
    let mut resume_opts = coordinator_opts(dir.clone());
    resume_opts.resume = true;
    let resumed = run_coordinator(&manifest, &resume_opts)?;
    let verdict =
        check_case("restart-mid-merge", &resumed, &baseline, &manifest, &dir, &opts.out)?;
    if !verdict.ok {
        mismatches += 1;
    }
    lines.push(format!("restart-mid-merge: {}", verdict.describe));
    println!("{}", lines.last().expect("just pushed"));

    let summary = format!(
        "process fault matrix: {} kill cases + restart-mid-merge, {mismatches} mismatch(es)\n{}\n",
        opts.kills,
        lines.join("\n")
    );
    std::fs::write(opts.out.join("summary.txt"), &summary)
        .map_err(|e| format!("write summary: {e}"))?;
    if mismatches > 0 {
        return Err(format!("{mismatches} fault-matrix case(s) diverged from the baseline"));
    }
    Ok(summary)
}

struct CaseVerdict {
    ok: bool,
    describe: String,
}

/// Byte-compare a case's merged report against the baseline and check
/// its journals for duplicate sample records. A mismatching report is
/// archived as `<out>/<name>.diff`.
fn check_case(
    name: &str,
    summary: &CoordinatorSummary,
    baseline: &str,
    manifest: &Manifest,
    dir: &Path,
    out: &Path,
) -> Result<CaseVerdict, String> {
    if summary.report != baseline {
        let diff = format!(
            "=== baseline ({} bytes) ===\n{baseline}\n=== {name} ({} bytes) ===\n{}\n",
            baseline.len(),
            summary.report.len(),
            summary.report
        );
        std::fs::write(out.join(format!("{name}.diff")), diff)
            .map_err(|e| format!("write diff: {e}"))?;
        return Ok(CaseVerdict { ok: false, describe: "MISMATCH (diff archived)".to_owned() });
    }
    // Double-spend signature: a replayed sample is never re-recorded,
    // so a duplicate (shard, sample) record means a resumed worker
    // re-attacked — and re-spent budget on — a delivered verdict.
    for spec in &manifest.shards {
        let scan = scan_journal(&manifest.journal_path(dir, spec))
            .map_err(|e| format!("scan {}: {e}", spec.slug))?;
        if let Some(samples) = scan.sample_queries.get(&spec.label) {
            let mut names: Vec<&str> = samples.iter().map(|(n, _)| n.as_str()).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            if names.len() != before {
                return Ok(CaseVerdict {
                    ok: false,
                    describe: format!(
                        "DOUBLE-SPEND: duplicate sample records in shard {}",
                        spec.label
                    ),
                });
            }
        }
    }
    Ok(CaseVerdict { ok: true, describe: "byte-identical, no double-spend".to_owned() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("mpass-coordinator-tests")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_manifest() -> Manifest {
        let mut config = WorldConfig::quick();
        config.attack_samples = 2;
        Manifest::new(
            CampaignKind::Offline,
            config,
            11,
            None,
            &["GAMMA".into()],
            &["MalConv".into()],
        )
    }

    #[test]
    fn init_refuses_reinit_without_resume_and_loads_with() {
        let dir = temp_dir("init");
        let manifest = tiny_manifest();
        let first = init_campaign(&dir, &manifest, false).unwrap();
        assert_eq!(first, manifest);
        let err = init_campaign(&dir, &manifest, false).unwrap_err();
        assert!(err.contains("--resume"), "{err}");
        let resumed = init_campaign(&dir, &manifest, true).unwrap();
        assert_eq!(resumed, manifest);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_state_cleanup_breaks_dead_leases_and_tmp_files() {
        let dir = temp_dir("stale");
        let manifest = tiny_manifest();
        manifest.save(&dir).unwrap();
        let spec = &manifest.shards[0];
        // A lease held by a pid that cannot exist, and a torn tmp file.
        let info = LeaseInfo { worker: "ghost".into(), pid: u64::MAX - 1, beat: 1 };
        std::fs::write(manifest.lease_path(&dir, spec), serde_json::to_string(&info).unwrap())
            .unwrap();
        std::fs::write(dir.join("merged.json.tmp"), b"{ torn").unwrap();

        let ttl = if cfg!(target_os = "linux") {
            Duration::from_secs(60)
        } else {
            // No pid probing off Linux; let the TTL condemn the lease.
            Duration::ZERO
        };
        let cleared = clear_stale_state(&dir, &manifest, ttl).unwrap();
        assert_eq!(cleared.len(), 1);
        assert!(cleared[0].contains("ghost"), "{:?}", cleared);
        assert!(!manifest.lease_path(&dir, spec).exists());
        assert!(!dir.join("merged.json.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn events_round_trip_and_feed_status_counters() {
        let dir = temp_dir("events");
        let manifest = tiny_manifest();
        manifest.save(&dir).unwrap();
        log_event(&dir, "worker_spawned", "", "w0").unwrap();
        log_event(&dir, "lease_reassigned", &manifest.shards[0].label, "w0").unwrap();
        log_event(&dir, "worker_respawned", "", "w1").unwrap();
        let events = read_events(&dir);
        assert_eq!(events.len(), 3);
        assert_eq!(events[1].0, "lease_reassigned");

        let status = campaign_status(&dir).unwrap();
        assert_eq!(status.reassigned, 1);
        assert_eq!(status.respawned, 1);
        assert_eq!(status.spawned, 1);
        assert_eq!(status.shards[0].reassigned, 1);
        assert!(!status.merged);
        let rendered = render_status(&status);
        assert!(rendered.contains("0/1 shards finished"), "{rendered}");
        assert!(rendered.contains("reassigned x1"), "{rendered}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_is_a_pure_function_of_the_journals() {
        let dir = temp_dir("merge");
        let manifest = tiny_manifest();
        manifest.save(&dir).unwrap();
        let spec = &manifest.shards[0];
        // Journal a synthetic finished cell.
        let cell = crate::offline::OfflineCell {
            attack: spec.attack.clone(),
            target: spec.target.clone(),
            stats: mpass_core::attack::metrics::AttackStats {
                asr: 0.0,
                avq: 0.0,
                apr: 0.0,
                samples: 0,
            },
            broken: 0,
            checked: 0,
        };
        let journal = CampaignJournal::open(manifest.journal_path(&dir, spec)).unwrap();
        journal.record_shard(&spec.label, &cell).unwrap();
        let metrics = ShardMetrics { label: spec.label.clone(), ..Default::default() };
        journal.record_metrics(&spec.label, "w0", &metrics).unwrap();
        drop(journal);

        let coord = ShardMetrics { label: "coordinator".into(), ..Default::default() };
        let (report_a, metrics_a) = merge_campaign(&dir, &manifest, 2, coord.clone()).unwrap();
        let (report_b, metrics_b) = merge_campaign(&dir, &manifest, 2, coord).unwrap();
        assert_eq!(report_a, report_b, "merge is idempotent");
        assert_eq!(metrics_a, metrics_b);
        assert!(metrics_a.failures.is_empty());
        assert_eq!(metrics_a.experiment, "campaign-offline");
        // Shard metrics + the coordinator's own entry.
        assert_eq!(metrics_a.shards.len(), 2);
        assert!(report_a.contains("\"attack\": \"GAMMA\""), "{report_a}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
