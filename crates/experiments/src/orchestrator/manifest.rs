//! Campaign manifest: the durable description of a distributed campaign
//! that every worker process loads and every coordinator validates.
//!
//! The manifest pins everything a shard's result depends on — world
//! configuration, engine seed, fault schedule, and the exact shard grid
//! in engine input order — so any worker, on any restart, rebuilds the
//! same world and runs the same work. A config hash over the manifest
//! body guards resumes: a coordinator restarted with different flags
//! refuses to mix new work into an old campaign directory.

use crate::world::WorldConfig;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Manifest schema version; bumped on incompatible layout changes.
pub const MANIFEST_VERSION: u64 = 1;

/// Which experiment family the campaign shards belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CampaignKind {
    /// Tables I–III: attacks against the four offline detectors.
    Offline,
    /// Figure 3: attacks against the five commercial AVs.
    Commercial,
}

impl CampaignKind {
    /// The default target roster for this kind, in table order.
    pub fn default_targets(self) -> Vec<String> {
        match self {
            CampaignKind::Offline => {
                ["MalConv", "NonNeg", "LightGBM", "MalGCG"].iter().map(|s| (*s).into()).collect()
            }
            CampaignKind::Commercial => (1..=5).map(|i| format!("AV{i}")).collect(),
        }
    }

    /// The experiment name used in metrics files and results paths.
    pub fn experiment_name(self) -> &'static str {
        match self {
            CampaignKind::Offline => "offline",
            CampaignKind::Commercial => "commercial",
        }
    }
}

impl fmt::Display for CampaignKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.experiment_name())
    }
}

/// One shard of the campaign grid: an (attack, target) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Engine shard label (`"<attack> vs <target>"`) — also the key the
    /// label-keyed shard seed derives from, so results are invariant
    /// under worker count and process placement.
    pub label: String,
    /// Filesystem-safe name for the shard's journal and lease files,
    /// prefixed with the grid index so directory listings sort in
    /// manifest (= engine input) order.
    pub slug: String,
    /// Attack name (a [`crate::offline::ATTACK_NAMES`] member).
    pub attack: String,
    /// Target detector / AV name.
    pub target: String,
}

/// The manifest itself. Serialized pretty at `<dir>/manifest.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Schema version ([`MANIFEST_VERSION`]).
    pub version: u64,
    /// Experiment family.
    pub kind: CampaignKind,
    /// The full world configuration every worker rebuilds.
    pub world: WorldConfig,
    /// Engine seed the label-keyed shard seeds derive from.
    pub seed: u64,
    /// Oracle fault-injection seed, if the campaign runs under faults.
    pub faults: Option<u64>,
    /// The shard grid in engine input order.
    pub shards: Vec<ShardSpec>,
    /// FNV-1a hex digest over the manifest with this field blanked;
    /// validated on load so a resume cannot mix configurations.
    pub config_hash: String,
}

impl Manifest {
    /// Build a manifest over the `targets` × `attacks` grid (targets
    /// outer, attacks inner — the same nesting the in-process campaign
    /// runners use, so shard order matches engine input order).
    pub fn new(
        kind: CampaignKind,
        world: WorldConfig,
        seed: u64,
        faults: Option<u64>,
        attacks: &[String],
        targets: &[String],
    ) -> Manifest {
        let mut shards = Vec::with_capacity(attacks.len() * targets.len());
        for target in targets {
            for attack in attacks {
                let label = format!("{attack} vs {target}");
                let slug = slugify(shards.len(), &label);
                shards.push(ShardSpec {
                    label,
                    slug,
                    attack: attack.clone(),
                    target: target.clone(),
                });
            }
        }
        let mut manifest = Manifest {
            version: MANIFEST_VERSION,
            kind,
            world,
            seed,
            faults,
            shards,
            config_hash: String::new(),
        };
        manifest.config_hash = manifest.compute_hash();
        manifest
    }

    /// The digest the `config_hash` field must carry.
    fn compute_hash(&self) -> String {
        let mut blanked = self.clone();
        blanked.config_hash = String::new();
        let json = serde_json::to_string(&blanked).expect("manifest serializes");
        format!("{:016x}", fnv1a(json.as_bytes()))
    }

    /// Where the manifest lives inside a campaign directory.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join("manifest.json")
    }

    /// Write the manifest (atomically) and create the campaign
    /// directory skeleton (`shards/`, `leases/`).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir.join("shards"))?;
        std::fs::create_dir_all(dir.join("leases"))?;
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        write_atomic(&Self::path(dir), json.as_bytes())
    }

    /// Load and validate the manifest of an existing campaign directory.
    ///
    /// # Errors
    ///
    /// Filesystem errors, parse errors, a version mismatch, or a config
    /// hash that no longer matches the body (the manifest was edited or
    /// written by an incompatible build).
    pub fn load(dir: &Path) -> io::Result<Manifest> {
        let path = Self::path(dir);
        let text = std::fs::read_to_string(&path)?;
        let manifest: Manifest = serde_json::from_str(&text)
            .map_err(|e| invalid(format!("{}: {e}", path.display())))?;
        if manifest.version != MANIFEST_VERSION {
            return Err(invalid(format!(
                "{}: manifest version {} (this build speaks {MANIFEST_VERSION})",
                path.display(),
                manifest.version
            )));
        }
        if manifest.config_hash != manifest.compute_hash() {
            return Err(invalid(format!(
                "{}: config hash mismatch — the manifest was edited or written by an \
                 incompatible configuration",
                path.display()
            )));
        }
        Ok(manifest)
    }

    /// The shard's append-only journal file.
    pub fn journal_path(&self, dir: &Path, spec: &ShardSpec) -> PathBuf {
        dir.join("shards").join(format!("{}.jsonl", spec.slug))
    }

    /// The shard's lease file.
    pub fn lease_path(&self, dir: &Path, spec: &ShardSpec) -> PathBuf {
        dir.join("leases").join(format!("{}.lease", spec.slug))
    }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// 64-bit FNV-1a, the same cheap content hash the engine uses for
/// label-keyed seeds.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// `<idx>-<label>` with the label lowercased and squeezed to
/// `[a-z0-9-]`, e.g. shard 3 of `"MPass vs MalConv"` →
/// `"003-mpass-vs-malconv"`.
pub fn slugify(index: usize, label: &str) -> String {
    let mut slug = format!("{index:03}-");
    let mut last_dash = false;
    for ch in label.chars() {
        if ch.is_ascii_alphanumeric() {
            slug.extend(ch.to_lowercase());
            last_dash = false;
        } else if !last_dash {
            slug.push('-');
            last_dash = true;
        }
    }
    slug.trim_end_matches('-').to_owned()
}

/// Write `bytes` to `path` via a sibling `.tmp` file and an atomic
/// rename, so readers never observe a half-written file and a kill
/// mid-write leaves only a disposable temporary behind.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let name = path
        .file_name()
        .ok_or_else(|| invalid(format!("{}: no file name", path.display())))?;
    let tmp = path.with_file_name(format!("{}.tmp", name.to_string_lossy()));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("mpass-manifest-tests")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn demo_manifest() -> Manifest {
        Manifest::new(
            CampaignKind::Offline,
            WorldConfig::quick(),
            7,
            Some(99),
            &["MPass".into(), "GAMMA".into()],
            &["MalConv".into(), "NonNeg".into()],
        )
    }

    #[test]
    fn grid_matches_engine_input_order() {
        let m = demo_manifest();
        let labels: Vec<&str> = m.shards.iter().map(|s| s.label.as_str()).collect();
        // Targets outer, attacks inner — like the in-process runners.
        assert_eq!(
            labels,
            ["MPass vs MalConv", "GAMMA vs MalConv", "MPass vs NonNeg", "GAMMA vs NonNeg"]
        );
        assert_eq!(m.shards[2].slug, "002-mpass-vs-nonneg");
        assert_eq!(m.shards[2].attack, "MPass");
        assert_eq!(m.shards[2].target, "NonNeg");
    }

    #[test]
    fn save_load_round_trips_and_validates() {
        let dir = temp_dir("round-trip");
        let m = demo_manifest();
        m.save(&dir).unwrap();
        assert!(dir.join("shards").is_dir() && dir.join("leases").is_dir());
        let back = Manifest::load(&dir).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.faults, Some(99));

        // Tampering with the body invalidates the hash.
        let path = Manifest::path(&dir);
        let edited = std::fs::read_to_string(&path).unwrap().replace("\"seed\": 7", "\"seed\": 8");
        std::fs::write(&path, edited).unwrap();
        let err = Manifest::load(&dir).unwrap_err();
        assert!(err.to_string().contains("config hash mismatch"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn slug_squeezes_to_filesystem_safe() {
        assert_eq!(slugify(0, "MPass vs MalConv"), "000-mpass-vs-malconv");
        assert_eq!(slugify(12, "A//B  C!"), "012-a-b-c");
    }

    #[test]
    fn write_atomic_replaces_and_cleans_up() {
        let dir = temp_dir("atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(!path.with_file_name("out.json.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
