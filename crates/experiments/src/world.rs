//! The shared experimental world: corpus, benign pool, trained detectors.

use mpass_corpus::{BenignPool, CorpusConfig, Dataset, Sample};
use mpass_detectors::train::training_pairs;
use mpass_detectors::{
    commercial::default_profiles, ByteConvConfig, CommercialAv, Detector, DetectorExt, LightGbm,
    MalConv, MalGcg, MalGcgConfig, NonNeg, WhiteBoxModel,
};
use mpass_ml::GbdtParams;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a [`World`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Corpus generation parameters.
    pub corpus: CorpusConfig,
    /// Benign programs harvested into the perturbation pool (stands in for
    /// the paper's 50 000 programs).
    pub benign_pool_programs: usize,
    /// MalConv / NonNeg architecture.
    pub conv: ByteConvConfig,
    /// MalGCG architecture.
    pub malgcg: MalGcgConfig,
    /// Epochs for the convolutional detectors.
    pub conv_epochs: usize,
    /// Learning rate for the convolutional detectors.
    pub conv_lr: f32,
    /// GBDT parameters for the LightGBM detector.
    pub gbdt: GbdtParams,
    /// Malware samples attacked per experiment.
    pub attack_samples: usize,
    /// Hard-label query budget per sample (the paper uses 100).
    pub max_queries: usize,
    /// Master seed.
    pub seed: u64,
}

impl WorldConfig {
    /// The full configuration used by the experiment binaries (paper-shaped,
    /// laptop-scaled).
    pub fn full() -> WorldConfig {
        WorldConfig {
            corpus: CorpusConfig {
                n_malware: 120,
                n_benign: 120,
                seed: 0xDAC2023,
                no_slack_fraction: 0.1,
            },
            benign_pool_programs: 40,
            conv: ByteConvConfig::default(),
            malgcg: MalGcgConfig::default(),
            conv_epochs: 5,
            conv_lr: 5e-3,
            gbdt: GbdtParams::default(),
            attack_samples: 20,
            max_queries: 100,
            seed: 0x4D50_4153,
        }
    }

    /// A down-scaled configuration for tests and smoke runs.
    pub fn quick() -> WorldConfig {
        WorldConfig {
            corpus: CorpusConfig {
                n_malware: 20,
                n_benign: 20,
                seed: 0xDAC2023,
                no_slack_fraction: 0.1,
            },
            benign_pool_programs: 6,
            conv: ByteConvConfig::tiny(),
            malgcg: MalGcgConfig::tiny(),
            conv_epochs: 5,
            conv_lr: 5e-3,
            gbdt: GbdtParams { trees: 30, ..GbdtParams::default() },
            attack_samples: 6,
            max_queries: 100,
            seed: 0x4D50_4153,
        }
    }
}

/// The built world: corpus + pool + all nine trained targets.
pub struct World {
    /// The configuration the world was built from.
    pub config: WorldConfig,
    /// The full labelled corpus.
    pub dataset: Dataset,
    /// The attacker's benign-content pool.
    pub pool: BenignPool,
    /// MalConv.
    pub malconv: MalConv,
    /// NonNeg.
    pub nonneg: NonNeg,
    /// LightGBM-style GBDT.
    pub lightgbm: LightGbm,
    /// MalGCG.
    pub malgcg: MalGcg,
    /// The five commercial AVs (fresh, before any weekly updates).
    pub avs: Vec<CommercialAv>,
}

impl World {
    /// Generate the corpus and train every detector. Deterministic in the
    /// configuration.
    pub fn build(config: WorldConfig) -> World {
        let mut dataset = Dataset::generate(&config.corpus);
        // Pack roughly one in seven benign samples with the benign
        // installer packer: packed goodware exists in real training sets
        // ("When malware is packin' heat", NDSS 2020), and without it every
        // detector would treat packing artifacts as conclusive.
        let benign_packer =
            mpass_baselines::Packer::new(mpass_baselines::benign_packer_profile());
        let mut i = 0;
        for s in dataset.samples.iter_mut() {
            if s.label != mpass_corpus::Label::Benign {
                continue;
            }
            i += 1;
            if i % 7 != 0 {
                continue;
            }
            if let Ok(bytes) = benign_packer.pack(s.pe().unwrap()) {
                if let Ok(pe) = mpass_pe::PeFile::parse(&bytes) {
                    *s = mpass_corpus::Sample::new(s.name.clone(), s.label, pe);
                }
            }
        }
        let pool = BenignPool::generate(config.benign_pool_programs, config.seed ^ 0xB00);
        let (train, _test) = dataset.split(5);
        let pairs = training_pairs(&train);

        // Each model gets its own derived stream so training is invariant
        // to the order models are built in.
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x7281);
        let mut malconv = MalConv::new(config.conv, &mut rng);
        malconv.train(&pairs, config.conv_epochs, config.conv_lr, &mut rng);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x7282);
        let mut nonneg = NonNeg::new(config.conv, &mut rng);
        // The non-negativity constraint clamps away half of every update;
        // NonNeg needs roughly twice the epochs to converge.
        nonneg.train(&pairs, config.conv_epochs * 2, config.conv_lr, &mut rng);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x7283);
        let mut malgcg = MalGcg::new(config.malgcg, &mut rng);
        malgcg.train(&pairs, config.conv_epochs, config.conv_lr, &mut rng);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x7284);
        let lightgbm = LightGbm::train(&train, config.gbdt, &mut rng);
        let avs = default_profiles()
            .into_iter()
            .map(|p| CommercialAv::train(p, &train))
            .collect();
        World { config, dataset, pool, malconv, nonneg, lightgbm, malgcg, avs }
    }

    /// The four offline targets in table order, as one capability-typed
    /// roster. [`World::offline_targets`] and
    /// [`World::known_models_excluding`] both derive from this single list
    /// via [`DetectorExt::as_white_box`].
    pub fn offline_roster(&self) -> Vec<(&'static str, &dyn DetectorExt)> {
        vec![
            ("MalConv", &self.malconv as &dyn DetectorExt),
            ("NonNeg", &self.nonneg as &dyn DetectorExt),
            ("LightGBM", &self.lightgbm as &dyn DetectorExt),
            ("MalGCG", &self.malgcg as &dyn DetectorExt),
        ]
    }

    /// The four offline targets in table order.
    pub fn offline_targets(&self) -> Vec<(&'static str, &dyn Detector)> {
        self.offline_roster().into_iter().map(|(n, d)| (n, d as &dyn Detector)).collect()
    }

    /// MPass's known-model ensemble when attacking `target`: the remaining
    /// differentiable models. LightGBM is never a known model (footnote 6)
    /// — its [`DetectorExt::as_white_box`] is `None`, so the roster filter
    /// drops it without a hand-maintained parallel list.
    pub fn known_models_excluding(&self, target: &str) -> Vec<&dyn WhiteBoxModel> {
        self.offline_roster()
            .into_iter()
            .filter(|(name, _)| *name != target)
            .filter_map(|(_, d)| d.as_white_box())
            .collect()
    }

    /// All three differentiable models (used against commercial AVs, which
    /// are never in the known set).
    pub fn all_known_models(&self) -> Vec<&dyn WhiteBoxModel> {
        self.offline_roster().into_iter().filter_map(|(_, d)| d.as_white_box()).collect()
    }

    /// Malware samples that `target` initially classifies correctly — the
    /// paper's sample-quality requirement (1) — capped at
    /// `config.attack_samples`.
    pub fn attack_set(&self, target: &dyn Detector) -> Vec<&Sample> {
        // Batched equivalent of `.filter(classify is_malicious).take(n)`.
        // Each chunk is sized to the number of samples still needed, which
        // keeps the set of classified samples identical to the sequential
        // early-exit loop: the take(n) cutoff lands on the n-th malicious
        // verdict, and a chunk of `needed` items can reach it no earlier
        // than its last element. Stateful targets (a caching AV wrapper)
        // therefore end up with the same cache contents and counter totals
        // either way.
        let malware = self.dataset.malware();
        let mut picked = Vec::with_capacity(self.config.attack_samples);
        let mut next = 0;
        let mut verdicts = Vec::new();
        while picked.len() < self.config.attack_samples && next < malware.len() {
            let needed = self.config.attack_samples - picked.len();
            let chunk = &malware[next..malware.len().min(next + needed)];
            let items: Vec<&[u8]> = chunk.iter().map(|s| s.bytes.as_slice()).collect();
            verdicts.clear();
            target.classify_batch(&items, &mut verdicts);
            picked.extend(
                chunk.iter().zip(&verdicts).filter(|(_, v)| v.is_malicious()).map(|(s, _)| *s),
            );
            next += chunk.len();
        }
        picked
    }

    /// Detection accuracy of every target on the full corpus (sanity
    /// diagnostics printed by the binaries).
    pub fn detector_health(&self) -> Vec<(String, f32)> {
        let mut out = Vec::new();
        let all: Vec<&Sample> = self.dataset.samples.iter().collect();
        for (name, det) in self.offline_targets() {
            let pairs = mpass_detectors::train::score_pairs(det, &all);
            out.push((name.to_owned(), mpass_ml::metrics::accuracy(&pairs, det.threshold())));
        }
        for av in &self.avs {
            let pairs = mpass_detectors::train::score_pairs(av, &all);
            out.push((av.name().to_owned(), mpass_ml::metrics::accuracy(&pairs, av.threshold())));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_world_builds_and_detects() {
        let world = World::build(WorldConfig::quick());
        for (name, acc) in world.detector_health() {
            assert!(acc >= 0.7, "{name} accuracy {acc}");
        }
        // Attack sets are non-empty for every target.
        for (name, det) in world.offline_targets() {
            assert!(!world.attack_set(det).is_empty(), "{name} attack set empty");
        }
    }

    #[test]
    fn known_models_exclude_target() {
        let world = World::build(WorldConfig::quick());
        assert_eq!(world.known_models_excluding("MalConv").len(), 2);
        assert_eq!(world.known_models_excluding("LightGBM").len(), 3);
        assert_eq!(world.all_known_models().len(), 3);
    }
}
