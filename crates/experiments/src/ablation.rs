//! EXP-T5/T6 — Table V (Other-sec ablation) and Table VI (random-data
//! control) on the commercial AVs.

use crate::commercial::attack_av;
use crate::world::World;
use mpass_baselines::{other_sec, RandomData};
use mpass_core::MPassConfig;
use mpass_detectors::Detector;
use mpass_engine::{Engine, MetricsFile, Shard};
use serde::{Deserialize, Serialize};

/// Results of both ablation tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationResults {
    /// Other-sec ASR per AV (Table V row 1).
    pub other_sec: Vec<f64>,
    /// Random-data ASR per AV (Table VI row 1).
    pub random_data: Vec<f64>,
    /// MPass ASR per AV (shared reference row).
    pub mpass: Vec<f64>,
}

impl AblationResults {
    /// Format Table V.
    pub fn table5(&self) -> String {
        let avs: Vec<String> = (1..=5).map(|i| format!("AV{i}")).collect();
        crate::table::format_table(
            "TABLE V: Impact of changing modification positions on commercial ML AVs (ASR %).",
            "Method",
            &avs,
            &[
                ("Other-sec".to_owned(), self.other_sec.clone()),
                ("MPass".to_owned(), self.mpass.clone()),
            ],
            1,
        )
    }

    /// Format Table VI.
    pub fn table6(&self) -> String {
        let avs: Vec<String> = (1..=5).map(|i| format!("AV{i}")).collect();
        crate::table::format_table(
            "TABLE VI: ASR (%) of modified malware with random data vs MPass on commercial ML AVs.",
            "Method",
            &avs,
            &[
                ("Random data".to_owned(), self.random_data.clone()),
                ("MPass".to_owned(), self.mpass.clone()),
            ],
            1,
        )
    }
}

/// Run both ablations on `engine`, one shard per (method, AV) campaign.
/// `mpass_row` supplies the shared MPass reference ASRs when the Figure-3
/// campaign already produced them.
pub fn run_with_engine(
    world: &World,
    engine: &Engine,
    mpass_row: Option<Vec<f64>>,
) -> (AblationResults, MetricsFile) {
    let base = MPassConfig::builder()
        .seed(world.config.seed)
        .build()
        .expect("default MPass config is valid");
    let methods = ["Other-sec", "Random data"];
    let shards: Vec<Shard<(usize, usize)>> = methods
        .iter()
        .enumerate()
        .flat_map(|(m, method)| {
            world.avs.iter().enumerate().map(move |(a, av)| {
                Shard::new(format!("{method} vs {}", av.name()), (m, a))
            })
        })
        .collect();
    let run = engine.run(shards, |_ctx, (m, a)| {
        let av = &world.avs[a];
        if m == 0 {
            let mut o = other_sec(world.all_known_models(), &world.pool, base.clone());
            attack_av(world, &mut o, av).stats.asr
        } else {
            // Random-data attempts mirror MPass's modification count:
            // restarts × (1 + rounds) queries would be the MPass budget;
            // give the control the same number of fresh tries as MPass has
            // restarts.
            let mut r = RandomData::new(
                base.max_restarts() * (1 + base.rounds_per_restart()),
                world.config.seed,
            );
            attack_av(world, &mut r, av).stats.asr
        }
    });
    let n = world.avs.len();
    let other = run.results[..n].to_vec();
    let random = run.results[n..].to_vec();
    let mpass =
        mpass_row.unwrap_or_else(|| crate::packers::mpass_reference_row(world, engine));
    (AblationResults { other_sec: other, random_data: random, mpass },
     MetricsFile::from_run("ablation", &run))
}

/// Run both ablations on a default engine, discarding the metrics.
pub fn run(world: &World, mpass_row: Option<Vec<f64>>) -> AblationResults {
    run_with_engine(world, &Engine::new(Default::default()), mpass_row).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn ablation_shapes_and_tables() {
        let mut cfg = WorldConfig::quick();
        cfg.attack_samples = 2;
        let world = World::build(cfg);
        let results = run(&world, None);
        assert_eq!(results.other_sec.len(), 5);
        assert_eq!(results.random_data.len(), 5);
        assert_eq!(results.mpass.len(), 5);
        assert!(results.table5().contains("Other-sec"));
        assert!(results.table6().contains("Random data"));
    }
}
