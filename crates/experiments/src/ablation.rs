//! EXP-T5/T6 — Table V (Other-sec ablation) and Table VI (random-data
//! control) on the commercial AVs.

use crate::commercial::attack_av;
use crate::world::World;
use mpass_baselines::{other_sec, RandomData};
use mpass_core::MPassConfig;
use serde::{Deserialize, Serialize};

/// Results of both ablation tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationResults {
    /// Other-sec ASR per AV (Table V row 1).
    pub other_sec: Vec<f64>,
    /// Random-data ASR per AV (Table VI row 1).
    pub random_data: Vec<f64>,
    /// MPass ASR per AV (shared reference row).
    pub mpass: Vec<f64>,
}

impl AblationResults {
    /// Format Table V.
    pub fn table5(&self) -> String {
        let avs: Vec<String> = (1..=5).map(|i| format!("AV{i}")).collect();
        crate::table::format_table(
            "TABLE V: Impact of changing modification positions on commercial ML AVs (ASR %).",
            "Method",
            &avs,
            &[
                ("Other-sec".to_owned(), self.other_sec.clone()),
                ("MPass".to_owned(), self.mpass.clone()),
            ],
            1,
        )
    }

    /// Format Table VI.
    pub fn table6(&self) -> String {
        let avs: Vec<String> = (1..=5).map(|i| format!("AV{i}")).collect();
        crate::table::format_table(
            "TABLE VI: ASR (%) of modified malware with random data vs MPass on commercial ML AVs.",
            "Method",
            &avs,
            &[
                ("Random data".to_owned(), self.random_data.clone()),
                ("MPass".to_owned(), self.mpass.clone()),
            ],
            1,
        )
    }
}

/// Run both ablations. `mpass_row` supplies the shared MPass reference
/// ASRs when the Figure-3 campaign already produced them.
pub fn run(world: &World, mpass_row: Option<Vec<f64>>) -> AblationResults {
    let base = MPassConfig { seed: world.config.seed, ..MPassConfig::default() };
    let mut other = Vec::new();
    let mut random = Vec::new();
    for av in &world.avs {
        let mut o = other_sec(world.all_known_models(), &world.pool, base.clone());
        other.push(attack_av(world, &mut o, av).stats.asr);
        // Random-data attempts mirror MPass's modification count: restarts
        // × (1 + rounds) queries would be the MPass budget; give the
        // control the same number of fresh tries as MPass has restarts.
        let mut r = RandomData::new(
            base.max_restarts * (1 + base.rounds_per_restart),
            world.config.seed,
        );
        random.push(attack_av(world, &mut r, av).stats.asr);
    }
    let mpass =
        mpass_row.unwrap_or_else(|| crate::packers::mpass_reference_row(world));
    AblationResults { other_sec: other, random_data: random, mpass }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn ablation_shapes_and_tables() {
        let mut cfg = WorldConfig::quick();
        cfg.attack_samples = 2;
        let world = World::build(cfg);
        let results = run(&world, None);
        assert_eq!(results.other_sec.len(), 5);
        assert_eq!(results.random_data.len(), 5);
        assert_eq!(results.mpass.len(), 5);
        assert!(results.table5().contains("Other-sec"));
        assert!(results.table6().contains("Random data"));
    }
}
