//! [`BinaryFormat`] implementation: `MachoFile` as the second backend of
//! the format-neutral binary layer.

use crate::{MachoFile, MachoSection, Segment64};
use mpass_binfmt::{
    BinaryError, BinaryFormat, Format, ImportSummary, ModifiableKind, ModifiableRegion,
    SectionKind, SectionMeta, SectionTraits,
};
use rand::RngCore;

/// Section names real Mach-O toolchains emit; anything else reads as
/// invented (the format-neutral analogue of PE's `.text`/`.data` list).
const STANDARD_NAMES: &[&str] = &["__text", "__data", "__const", "__bss", "__cstring", "__stubs"];

/// Classify a Mach-O section: well-known toolchain names first, then the
/// flag/protection traits — the same two-step scheme `mpass_pe` uses.
pub fn classify_section(name: &str, sect: &MachoSection, seg: &Segment64) -> SectionKind {
    match name {
        "__text" | "__stubs" | "__stub_helper" => SectionKind::Code,
        "__data" => SectionKind::Data,
        "__const" | "__cstring" | "__rodata" => SectionKind::ReadOnlyData,
        "__bss" | "__common" => SectionKind::Bss,
        "__thread_data" | "__thread_bss" | "__thread_vars" => SectionKind::Tls,
        "__la_symbol_ptr" | "__got" | "__nl_symbol_ptr" => SectionKind::Import,
        _ => SectionKind::from_traits(SectionTraits {
            code: sect.has_instructions() || seg.is_executable(),
            uninitialized: sect.is_zerofill(),
            initialized_data: !sect.is_zerofill() && !sect.data.is_empty(),
            writable: seg.is_writable(),
        }),
    }
}

impl BinaryFormat for MachoFile {
    fn format(&self) -> Format {
        Format::MachO
    }

    fn to_bytes(&self) -> Vec<u8> {
        MachoFile::to_bytes(self)
    }

    fn section_count(&self) -> usize {
        MachoFile::section_count(self)
    }

    fn section_meta(&self, index: usize) -> Option<SectionMeta> {
        let (seg, s) = self.section_at(index)?;
        let name = s.name();
        Some(SectionMeta {
            kind: classify_section(&name, s, seg),
            standard_name: STANDARD_NAMES.contains(&name.as_str()),
            name,
            virtual_address: s.addr,
            virtual_size: s.size,
            file_offset: s.offset as usize,
            file_size: s.data.len(),
            executable: s.has_instructions() || seg.is_executable(),
            writable: seg.is_writable(),
        })
    }

    fn section_data(&self, index: usize) -> Option<&[u8]> {
        self.section_at(index).map(|(_, s)| s.data.as_slice())
    }

    fn section_data_mut(&mut self, index: usize) -> Option<&mut [u8]> {
        self.section_at_mut(index).map(|s| s.data.as_mut_slice())
    }

    fn add_section(
        &mut self,
        name: &str,
        data: Vec<u8>,
        kind: SectionKind,
    ) -> Result<u64, BinaryError> {
        Ok(MachoFile::add_section(self, name, data, kind)?)
    }

    fn can_add_sections(&self, n: usize) -> bool {
        MachoFile::can_add_sections(self, n)
    }

    fn next_free_va(&self) -> u64 {
        MachoFile::next_free_va(self)
    }

    fn entry_point(&self) -> u64 {
        MachoFile::entry_point(self)
    }

    fn set_entry_point(&mut self, va: u64) -> Result<(), BinaryError> {
        Ok(MachoFile::set_entry_point(self, va)?)
    }

    fn section_index_containing_va(&self, va: u64) -> Option<usize> {
        MachoFile::section_index_containing_va(self, va)
    }

    fn va_to_file_offset(&self, va: u64) -> Option<usize> {
        MachoFile::va_to_file_offset(self, va)
    }

    fn read_virtual(&self, va: u64, len: usize) -> Vec<u8> {
        MachoFile::read_virtual(self, va, len)
    }

    fn write_virtual(&mut self, va: u64, bytes: &[u8]) -> Result<(), BinaryError> {
        Ok(MachoFile::write_virtual(self, va, bytes)?)
    }

    fn overlay(&self) -> &[u8] {
        &self.overlay
    }

    fn append_overlay(&mut self, bytes: &[u8]) {
        MachoFile::append_overlay(self, bytes);
    }

    fn truncate_overlay(&mut self, len: usize) {
        MachoFile::truncate_overlay(self, len);
    }

    fn map_image_bounded(&self, max_bytes: usize) -> Result<Vec<u8>, BinaryError> {
        Ok(MachoFile::map_image_bounded(self, max_bytes)?)
    }

    fn randomize_free_headers(&mut self, rng: &mut dyn RngCore) {
        MachoFile::randomize_free_headers(self, rng);
    }

    fn finalize(&mut self) {
        // Mach-O carries no whole-file checksum; counts are derived at
        // serialization time, so there is nothing to recompute.
    }

    fn timestamp(&self) -> u32 {
        MachoFile::timestamp(self)
    }

    fn modifiable_positions(&self) -> Vec<ModifiableRegion> {
        let mut out = Vec::new();
        let cmds_end = crate::cmds::MACH_HEADER_SIZE + self.sizeofcmds() as usize;
        // Gap between the load-command region and the first section's data.
        let mut spans: Vec<(usize, usize)> = self
            .sections()
            .filter(|s| !s.is_zerofill() && s.offset != 0)
            .map(|s| (s.offset as usize, s.offset as usize + s.data.len()))
            .collect();
        spans.sort_unstable();
        if let Some(&(first, _)) = spans.first() {
            if first > cmds_end {
                out.push(ModifiableRegion {
                    kind: ModifiableKind::HeaderGap,
                    file_offset: cmds_end,
                    len: first - cmds_end,
                });
            }
        }
        // Alignment slack between consecutive sections' on-disk extents.
        let mut covered_end = spans.first().map(|&(_, e)| e).unwrap_or(cmds_end);
        for &(start, end) in spans.iter().skip(1) {
            if start > covered_end {
                out.push(ModifiableRegion {
                    kind: ModifiableKind::SectionSlack,
                    file_offset: covered_end,
                    len: start - covered_end,
                });
            }
            covered_end = covered_end.max(end);
        }
        // The overlay trails the serialized file.
        if !self.overlay.is_empty() {
            out.push(ModifiableRegion {
                kind: ModifiableKind::Overlay,
                file_offset: self.data_end(),
                len: self.overlay.len(),
            });
        }
        out
    }

    fn imports_summary(&self) -> Option<ImportSummary> {
        let names = self.dylib_names();
        if names.is_empty() {
            return None;
        }
        // Dylib linkage names the library surface but not individual
        // symbols in this substrate; symbol granularity stays empty.
        Some(ImportSummary { libraries: names.len(), symbol_count: 0, symbols: names })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EntryStyle, MachoBuilder};

    fn build() -> MachoFile {
        let mut b = MachoBuilder::new();
        b.add_section("__text", &[0x90; 300], SectionKind::Code)
            .add_section("__data", &[0x42; 100], SectionKind::Data)
            .add_dylib("/usr/lib/libSystem.B.dylib", 0x5000_0000)
            .set_entry_section("__text", 0);
        b.build().unwrap()
    }

    #[test]
    fn trait_view_matches_inherent_view() {
        let m = build();
        let dynm: &dyn BinaryFormat = &m;
        assert_eq!(dynm.format(), Format::MachO);
        assert_eq!(dynm.section_count(), 2);
        assert_eq!(dynm.entry_point(), MachoFile::entry_point(&m));
        assert_eq!(dynm.to_bytes(), MachoFile::to_bytes(&m));
        let meta = dynm.section_meta(0).unwrap();
        assert_eq!(meta.name, "__text");
        assert_eq!(meta.kind, SectionKind::Code);
        assert!(meta.standard_name && meta.executable && !meta.writable);
        assert!(dynm.section_meta(2).is_none());
    }

    #[test]
    fn add_section_round_trips_and_maps() {
        let mut m = build();
        assert!(BinaryFormat::can_add_sections(&m, 2));
        let va =
            BinaryFormat::add_section(&mut m, "__keys", vec![7u8; 64], SectionKind::Resource)
                .unwrap();
        assert_eq!(BinaryFormat::section_index_containing_va(&m, va), Some(2));
        let re = MachoFile::parse(&BinaryFormat::to_bytes(&m)).unwrap();
        assert_eq!(re, m);
        assert_eq!(BinaryFormat::read_virtual(&re, va, 4), vec![7u8; 4]);
    }

    #[test]
    fn entry_retarget_both_styles() {
        for style in [EntryStyle::Main, EntryStyle::UnixThread] {
            let mut b = MachoBuilder::new();
            b.add_section("__text", &[0x90; 64], SectionKind::Code)
                .set_entry_style(style)
                .set_entry_section("__text", 8);
            let mut m = b.build().unwrap();
            let old = BinaryFormat::entry_point(&m);
            assert_eq!(old, 0x1008, "{style:?}");
            let target = old + 16;
            BinaryFormat::set_entry_point(&mut m, target).unwrap();
            assert_eq!(BinaryFormat::entry_point(&m), target, "{style:?}");
            let re = MachoFile::parse(&m.to_bytes()).unwrap();
            assert_eq!(re.entry_point(), target, "{style:?}");
        }
    }

    #[test]
    fn modifiable_positions_are_behaviour_free() {
        let mut m = build();
        m.append_overlay(&[0xAB; 128]);
        let regions = BinaryFormat::modifiable_positions(&m);
        let bytes = m.to_bytes();
        assert!(regions.iter().any(|r| r.kind == ModifiableKind::Overlay && r.len == 128));
        assert!(regions.iter().any(|r| r.kind == ModifiableKind::HeaderGap));
        let mut mutated = bytes.clone();
        for r in &regions {
            assert!(r.file_range().end <= mutated.len(), "{r:?} out of bounds");
            for b in &mut mutated[r.file_range()] {
                *b = 0x5A;
            }
        }
        let re = MachoFile::parse(&mutated).unwrap();
        assert_eq!(re.section_count(), m.section_count());
        assert_eq!(re.entry_point(), m.entry_point());
        for i in 0..re.section_count() {
            assert_eq!(
                BinaryFormat::section_data(&re, i),
                BinaryFormat::section_data(&m, i),
                "section {i} bytes changed"
            );
        }
    }

    #[test]
    fn randomize_free_headers_keeps_structure() {
        use rand::SeedableRng;
        let mut m = build();
        let before = m.clone();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        BinaryFormat::randomize_free_headers(&mut m, &mut rng);
        assert_ne!(m.header.reserved, before.header.reserved);
        assert_ne!(MachoFile::timestamp(&m), MachoFile::timestamp(&before));
        assert_eq!(m.section_count(), before.section_count());
        assert_eq!(m.entry_point(), before.entry_point());
        let re = MachoFile::parse(&m.to_bytes()).unwrap();
        assert_eq!(re, m);
    }

    #[test]
    fn imports_surface_dylibs() {
        let m = build();
        let summary = BinaryFormat::imports_summary(&m).unwrap();
        assert_eq!(summary.libraries, 1);
        assert_eq!(summary.symbols, vec!["/usr/lib/libSystem.B.dylib".to_owned()]);
        let mut b = MachoBuilder::new();
        b.add_section("__text", &[0x90; 16], SectionKind::Code).set_entry_section("__text", 0);
        assert!(BinaryFormat::imports_summary(&b.build().unwrap()).is_none());
    }
}
