//! Load-command structures and their byte-level (de)serialization.

use crate::MachoError;
use serde::{Deserialize, Serialize};

/// Size of `mach_header_64`.
pub const MACH_HEADER_SIZE: usize = 32;
/// Fixed part of an `LC_SEGMENT_64` command.
pub const SEGMENT_CMD_SIZE: usize = 72;
/// Size of one `section_64` entry.
pub const SECTION_ENTRY_SIZE: usize = 80;
/// Size of an `LC_MAIN` command.
pub const MAIN_CMD_SIZE: usize = 24;
/// Fixed part of an `LC_LOAD_DYLIB` command (through the version fields).
pub const DYLIB_CMD_FIXED: usize = 24;

/// `LC_SEGMENT_64`.
pub const LC_SEGMENT_64: u32 = 0x19;
/// `LC_UNIXTHREAD` (register-state entry point).
pub const LC_UNIXTHREAD: u32 = 0x5;
/// `LC_MAIN` (file-offset entry point; requires dyld in real systems).
pub const LC_MAIN: u32 = 0x8000_0028;
/// `LC_LOAD_DYLIB`.
pub const LC_LOAD_DYLIB: u32 = 0xC;

/// `MH_EXECUTE` filetype.
pub const MH_EXECUTE: u32 = 0x2;
/// x86-64 CPU type.
pub const CPU_TYPE_X86_64: u32 = 0x0100_0007;
/// Generic x86-64 CPU subtype.
pub const CPU_SUBTYPE_X86_64_ALL: u32 = 0x3;

/// `x86_THREAD_STATE64` flavor for `LC_UNIXTHREAD`.
pub const X86_THREAD_STATE64: u32 = 4;
/// Number of 32-bit words in an x86-64 thread state (21 registers).
pub const X86_THREAD_STATE64_COUNT: u32 = 42;
/// Index of `rip` among the 64-bit registers of the thread state.
pub const RIP_REGISTER_INDEX: usize = 16;

/// `S_ZEROFILL` section type (occupies address space, no file bytes).
pub const S_ZEROFILL: u32 = 0x1;
/// Section-type mask (low byte of the flags word).
pub const SECTION_TYPE_MASK: u32 = 0xFF;
/// `S_ATTR_PURE_INSTRUCTIONS`.
pub const S_ATTR_PURE_INSTRUCTIONS: u32 = 0x8000_0000;
/// `S_ATTR_SOME_INSTRUCTIONS`.
pub const S_ATTR_SOME_INSTRUCTIONS: u32 = 0x0000_0400;

/// `VM_PROT_READ`.
pub const VM_PROT_READ: u32 = 0x1;
/// `VM_PROT_WRITE`.
pub const VM_PROT_WRITE: u32 = 0x2;
/// `VM_PROT_EXECUTE`.
pub const VM_PROT_EXECUTE: u32 = 0x4;

// ---- byte helpers (panic-free) ----

pub(crate) fn read_u32(buf: &[u8], at: usize, context: &'static str) -> Result<u32, MachoError> {
    match buf.get(at..at + 4) {
        Some(b) => Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        None => Err(MachoError::Truncated {
            context,
            needed: at.saturating_add(4),
            available: buf.len(),
        }),
    }
}

pub(crate) fn read_u64(buf: &[u8], at: usize, context: &'static str) -> Result<u64, MachoError> {
    match buf.get(at..at + 8) {
        Some(b) => {
            let mut a = [0u8; 8];
            a.copy_from_slice(b);
            Ok(u64::from_le_bytes(a))
        }
        None => Err(MachoError::Truncated {
            context,
            needed: at.saturating_add(8),
            available: buf.len(),
        }),
    }
}

pub(crate) fn read_name16(
    buf: &[u8],
    at: usize,
    context: &'static str,
) -> Result<[u8; 16], MachoError> {
    match buf.get(at..at + 16) {
        Some(b) => {
            let mut a = [0u8; 16];
            a.copy_from_slice(b);
            Ok(a)
        }
        None => Err(MachoError::Truncated {
            context,
            needed: at.saturating_add(16),
            available: buf.len(),
        }),
    }
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Decode a 16-byte NUL-padded name for display. Invalid UTF-8 bytes are
/// replaced, matching how analysis tools render hostile names.
pub fn name16_str(name: &[u8; 16]) -> String {
    let end = name.iter().position(|&b| b == 0).unwrap_or(16);
    String::from_utf8_lossy(&name[..end]).into_owned()
}

/// Encode a string into a 16-byte NUL-padded name field.
///
/// # Errors
///
/// Returns [`MachoError::NameTooLong`] when `name` exceeds sixteen bytes.
pub fn encode_name16(name: &str) -> Result<[u8; 16], MachoError> {
    let bytes = name.as_bytes();
    if bytes.len() > 16 {
        return Err(MachoError::NameTooLong(name.to_owned()));
    }
    let mut out = [0u8; 16];
    out[..bytes.len()].copy_from_slice(bytes);
    Ok(out)
}

/// `mach_header_64` minus the fields derived at serialization time
/// (`magic` is fixed, `ncmds`/`sizeofcmds` are computed from the command
/// list so edits can never desynchronize them).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachHeader {
    /// CPU type (`CPU_TYPE_X86_64` for built images).
    pub cputype: u32,
    /// CPU subtype.
    pub cpusubtype: u32,
    /// File type (`MH_EXECUTE` for built images).
    pub filetype: u32,
    /// Header flags (semantics-free for this substrate).
    pub flags: u32,
    /// Reserved word (semantics-free; randomizable).
    pub reserved: u32,
}

/// One `section_64` entry together with its owned raw data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachoSection {
    /// Raw 16-byte section name, NUL padded (`__text`, ...).
    pub sectname: [u8; 16],
    /// Raw 16-byte owning-segment name (`__TEXT`, ...).
    pub segname: [u8; 16],
    /// Virtual address the section maps at.
    pub addr: u64,
    /// Mapped size. Equals `data.len()` for file-backed sections; for
    /// zerofill sections it is the address-space footprint and `data` is
    /// empty.
    pub size: u64,
    /// File offset of the raw data (0 for zerofill sections).
    pub offset: u32,
    /// Alignment exponent.
    pub align: u32,
    /// Relocation table offset (carried verbatim).
    pub reloff: u32,
    /// Relocation count (carried verbatim).
    pub nreloc: u32,
    /// Section type and attribute flags.
    pub flags: u32,
    /// Reserved words (carried verbatim).
    pub reserved: [u32; 3],
    /// Owned raw bytes (empty for zerofill sections).
    pub data: Vec<u8>,
}

impl MachoSection {
    /// Display name with trailing NULs stripped.
    pub fn name(&self) -> String {
        name16_str(&self.sectname)
    }

    /// True when this section occupies address space without file bytes.
    pub fn is_zerofill(&self) -> bool {
        self.flags & SECTION_TYPE_MASK == S_ZEROFILL
    }

    /// True when the section carries instruction attributes.
    pub fn has_instructions(&self) -> bool {
        self.flags & (S_ATTR_PURE_INSTRUCTIONS | S_ATTR_SOME_INSTRUCTIONS) != 0
    }

    /// Whether `va` falls inside this section's mapped extent.
    pub fn contains_va(&self, va: u64) -> bool {
        va >= self.addr && va < self.addr.saturating_add(self.size.max(1))
    }
}

/// An `LC_SEGMENT_64` load command and its sections.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment64 {
    /// Raw 16-byte segment name.
    pub segname: [u8; 16],
    /// Virtual address of the segment.
    pub vmaddr: u64,
    /// Mapped size of the segment.
    pub vmsize: u64,
    /// File offset of the segment's bytes.
    pub fileoff: u64,
    /// File size of the segment's bytes.
    pub filesize: u64,
    /// Maximum protection.
    pub maxprot: u32,
    /// Initial protection.
    pub initprot: u32,
    /// Segment flags.
    pub flags: u32,
    /// The segment's sections.
    pub sections: Vec<MachoSection>,
}

impl Segment64 {
    /// Display name with trailing NULs stripped.
    pub fn name(&self) -> String {
        name16_str(&self.segname)
    }

    /// Serialized command size: fixed part plus one entry per section.
    pub fn cmdsize(&self) -> u32 {
        (SEGMENT_CMD_SIZE + self.sections.len() * SECTION_ENTRY_SIZE) as u32
    }

    /// Whether the segment is writable when mapped.
    pub fn is_writable(&self) -> bool {
        self.initprot & VM_PROT_WRITE != 0
    }

    /// Whether the segment is executable when mapped.
    pub fn is_executable(&self) -> bool {
        self.initprot & VM_PROT_EXECUTE != 0
    }
}

/// One load command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadCommand {
    /// `LC_SEGMENT_64`: a mapped segment with its sections.
    Segment(Segment64),
    /// `LC_MAIN`: entry expressed as a file offset.
    Main {
        /// File offset of the first instruction.
        entryoff: u64,
        /// Initial stack size (0 keeps the platform default).
        stacksize: u64,
    },
    /// `LC_UNIXTHREAD`: entry expressed as initial register state.
    UnixThread {
        /// Thread-state flavor (`X86_THREAD_STATE64` for built images).
        flavor: u32,
        /// Raw state words (`count * 4` bytes, carried verbatim except for
        /// the instruction-pointer slot).
        state: Vec<u8>,
    },
    /// `LC_LOAD_DYLIB`: a linked library (the Mach-O import surface).
    LoadDylib {
        /// Library install name bytes, carried verbatim (no NUL). Raw
        /// bytes rather than `String`: a hostile name need not be UTF-8,
        /// and lossy decoding would change its length and break the
        /// round-trip contract.
        name: Vec<u8>,
        /// Declared command size (preserves the original name padding).
        cmdsize: u32,
        /// Link timestamp (semantics-free; randomizable).
        timestamp: u32,
        /// Current version, encoded as `xxxx.yy.zz`.
        current_version: u32,
        /// Compatibility version.
        compat_version: u32,
    },
    /// Any other command, carried verbatim for round-trip fidelity.
    Other {
        /// The `cmd` identifier.
        cmd: u32,
        /// Payload bytes after the 8-byte command prefix.
        payload: Vec<u8>,
    },
}

impl LoadCommand {
    /// The `cmd` identifier this command serializes with.
    pub fn cmd(&self) -> u32 {
        match self {
            LoadCommand::Segment(_) => LC_SEGMENT_64,
            LoadCommand::Main { .. } => LC_MAIN,
            LoadCommand::UnixThread { .. } => LC_UNIXTHREAD,
            LoadCommand::LoadDylib { .. } => LC_LOAD_DYLIB,
            LoadCommand::Other { cmd, .. } => *cmd,
        }
    }

    /// The `cmdsize` this command serializes with.
    pub fn cmdsize(&self) -> u32 {
        match self {
            LoadCommand::Segment(seg) => seg.cmdsize(),
            LoadCommand::Main { .. } => MAIN_CMD_SIZE as u32,
            LoadCommand::UnixThread { state, .. } => (16 + state.len()) as u32,
            LoadCommand::LoadDylib { cmdsize, .. } => *cmdsize,
            LoadCommand::Other { payload, .. } => (8 + payload.len()) as u32,
        }
    }

    /// Serialize the command.
    pub(crate) fn write(&self, out: &mut Vec<u8>) {
        put_u32(out, self.cmd());
        put_u32(out, self.cmdsize());
        match self {
            LoadCommand::Segment(seg) => {
                out.extend_from_slice(&seg.segname);
                put_u64(out, seg.vmaddr);
                put_u64(out, seg.vmsize);
                put_u64(out, seg.fileoff);
                put_u64(out, seg.filesize);
                put_u32(out, seg.maxprot);
                put_u32(out, seg.initprot);
                put_u32(out, seg.sections.len() as u32);
                put_u32(out, seg.flags);
                for s in &seg.sections {
                    out.extend_from_slice(&s.sectname);
                    out.extend_from_slice(&s.segname);
                    put_u64(out, s.addr);
                    put_u64(out, s.size);
                    put_u32(out, s.offset);
                    put_u32(out, s.align);
                    put_u32(out, s.reloff);
                    put_u32(out, s.nreloc);
                    put_u32(out, s.flags);
                    put_u32(out, s.reserved[0]);
                    put_u32(out, s.reserved[1]);
                    put_u32(out, s.reserved[2]);
                }
            }
            LoadCommand::Main { entryoff, stacksize } => {
                put_u64(out, *entryoff);
                put_u64(out, *stacksize);
            }
            LoadCommand::UnixThread { flavor, state } => {
                put_u32(out, *flavor);
                put_u32(out, (state.len() / 4) as u32);
                out.extend_from_slice(state);
            }
            LoadCommand::LoadDylib { name, cmdsize, timestamp, current_version, compat_version } => {
                put_u32(out, DYLIB_CMD_FIXED as u32); // name offset
                put_u32(out, *timestamp);
                put_u32(out, *current_version);
                put_u32(out, *compat_version);
                let mut name_field = name.clone();
                name_field.push(0);
                let pad_to = (*cmdsize as usize).saturating_sub(DYLIB_CMD_FIXED);
                name_field.resize(pad_to, 0);
                out.extend_from_slice(&name_field);
            }
            LoadCommand::Other { payload, .. } => {
                out.extend_from_slice(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name16_round_trip() {
        let n = encode_name16("__text").unwrap();
        assert_eq!(name16_str(&n), "__text");
        assert!(encode_name16("exactly-16-chars").is_ok());
        assert!(matches!(encode_name16("seventeen-chars-x"), Err(MachoError::NameTooLong(_))));
    }

    #[test]
    fn cmdsize_accounting() {
        let seg = Segment64 {
            segname: encode_name16("__TEXT").unwrap(),
            vmaddr: 0x1000,
            vmsize: 0x1000,
            fileoff: 0,
            filesize: 0x1000,
            maxprot: 7,
            initprot: VM_PROT_READ | VM_PROT_EXECUTE,
            flags: 0,
            sections: vec![],
        };
        assert_eq!(seg.cmdsize(), 72);
        assert_eq!(LoadCommand::Main { entryoff: 0, stacksize: 0 }.cmdsize(), 24);
        let th = LoadCommand::UnixThread { flavor: X86_THREAD_STATE64, state: vec![0; 168] };
        assert_eq!(th.cmdsize(), 184);
    }
}
