//! Panic-free Mach-O parsing with loader-tolerant and strict modes.

use crate::cmds::{
    read_name16, read_u32, read_u64, LoadCommand, MachHeader, MachoSection, Segment64,
    DYLIB_CMD_FIXED, LC_LOAD_DYLIB, LC_MAIN, LC_SEGMENT_64, LC_UNIXTHREAD, MACH_HEADER_SIZE,
    MAIN_CMD_SIZE, SECTION_ENTRY_SIZE, SEGMENT_CMD_SIZE,
};
use crate::{MachoError, MachoFile};
use mpass_binfmt::{ParseMode, FAT_MAGIC, MH_CIGAM_64, MH_MAGIC_32, MH_MAGIC_64};

/// Byte-swapped fat magic (little-endian view of a big-endian header).
const FAT_CIGAM: u32 = 0xBEBA_FECA;
/// Byte-swapped 32-bit magic.
const MH_CIGAM_32: u32 = 0xCEFA_EDFE;

/// Upper bound on declared load commands; a 4-billion-command header is a
/// decompression bomb, not a program.
const MAX_NCMDS: u32 = 4096;

impl MachoFile {
    /// Parse a 64-bit little-endian Mach-O image in loader-tolerant mode.
    ///
    /// # Errors
    ///
    /// Returns a typed [`MachoError`] on any structural violation; never
    /// panics on hostile input.
    pub fn parse(bytes: &[u8]) -> Result<Self, MachoError> {
        Self::parse_with(bytes, ParseMode::LoaderTolerant)
    }

    /// Parse with every cross-structure consistency check enabled.
    ///
    /// # Errors
    ///
    /// Returns a typed [`MachoError`] on any structural violation.
    pub fn parse_strict(bytes: &[u8]) -> Result<Self, MachoError> {
        Self::parse_with(bytes, ParseMode::Strict)
    }

    /// Parse under an explicit [`ParseMode`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`MachoError`] on any structural violation.
    pub fn parse_with(bytes: &[u8], mode: ParseMode) -> Result<Self, MachoError> {
        let magic = read_u32(bytes, 0, "mach header")?;
        match magic {
            MH_MAGIC_64 => {}
            FAT_MAGIC | FAT_CIGAM => {
                // Fat arch counts are big-endian on disk.
                let raw = read_u32(bytes, 4, "fat header")?;
                let arch_count = if magic == FAT_MAGIC { raw.swap_bytes() } else { raw };
                return Err(MachoError::FatBinary { arch_count });
            }
            MH_MAGIC_32 | MH_CIGAM_32 => {
                return Err(MachoError::Unsupported { detail: "32-bit mach-o image" })
            }
            MH_CIGAM_64 => {
                return Err(MachoError::Unsupported { detail: "byte-swapped (big-endian) mach-o image" })
            }
            other => return Err(MachoError::BadMagic { context: "mach header", found: other }),
        }

        if bytes.len() < MACH_HEADER_SIZE {
            return Err(MachoError::Truncated {
                context: "mach header",
                needed: MACH_HEADER_SIZE,
                available: bytes.len(),
            });
        }
        let header = MachHeader {
            cputype: read_u32(bytes, 4, "mach header")?,
            cpusubtype: read_u32(bytes, 8, "mach header")?,
            filetype: read_u32(bytes, 12, "mach header")?,
            flags: read_u32(bytes, 24, "mach header")?,
            reserved: read_u32(bytes, 28, "mach header")?,
        };
        let ncmds = read_u32(bytes, 16, "mach header")?;
        let sizeofcmds = read_u32(bytes, 20, "mach header")? as usize;

        if ncmds > MAX_NCMDS {
            return Err(MachoError::InvalidHeader {
                field: "ncmds",
                reason: format!("{ncmds} exceeds the {MAX_NCMDS}-command sanity bound"),
            });
        }
        let cmds_end = MACH_HEADER_SIZE
            .checked_add(sizeofcmds)
            .ok_or(MachoError::InvalidHeader {
                field: "sizeofcmds",
                reason: "overflows the address space".to_owned(),
            })?;
        if cmds_end > bytes.len() {
            return Err(MachoError::Truncated {
                context: "load commands",
                needed: cmds_end,
                available: bytes.len(),
            });
        }

        let mut commands = Vec::with_capacity(ncmds as usize);
        let mut cursor = MACH_HEADER_SIZE;
        for _ in 0..ncmds {
            let (cmd, next) = parse_command(bytes, cursor, cmds_end)?;
            commands.push(cmd);
            cursor = next;
        }
        if cursor != cmds_end {
            return Err(MachoError::InvalidHeader {
                field: "sizeofcmds",
                reason: format!(
                    "declares {sizeofcmds} bytes but commands occupy {}",
                    cursor - MACH_HEADER_SIZE
                ),
            });
        }

        // Attach section data and find where mapped file content ends so the
        // tail can be preserved as overlay.
        let mut data_end = cmds_end;
        for cmd in &mut commands {
            if let LoadCommand::Segment(seg) = cmd {
                for sect in &mut seg.sections {
                    if sect.is_zerofill() || sect.offset == 0 {
                        continue;
                    }
                    let start = sect.offset as usize;
                    let size = usize::try_from(sect.size).map_err(|_| MachoError::InvalidHeader {
                        field: "section size",
                        reason: format!("{:#x} does not fit in memory", sect.size),
                    })?;
                    let end = start.checked_add(size).ok_or(MachoError::InvalidHeader {
                        field: "section offset",
                        reason: "offset + size overflows".to_owned(),
                    })?;
                    let slice = bytes.get(start..end).ok_or(MachoError::Truncated {
                        context: "section data",
                        needed: end,
                        available: bytes.len(),
                    })?;
                    sect.data = slice.to_vec();
                    data_end = data_end.max(end);
                }
            }
        }

        let overlay = bytes.get(data_end..).unwrap_or(&[]).to_vec();
        let file = MachoFile { header, commands, overlay };

        if mode == ParseMode::Strict {
            validate_strict(&file, bytes.len())?;
        }
        Ok(file)
    }
}

/// Parse one load command starting at `at`; returns the command and the
/// offset of the next one.
fn parse_command(
    bytes: &[u8],
    at: usize,
    cmds_end: usize,
) -> Result<(LoadCommand, usize), MachoError> {
    let cmd = read_u32(bytes, at, "load command")?;
    let cmdsize = read_u32(bytes, at + 4, "load command")? as usize;
    if cmdsize < 8 || !cmdsize.is_multiple_of(4) {
        return Err(MachoError::InvalidHeader {
            field: "cmdsize",
            reason: format!("{cmdsize} is below the 8-byte minimum or unaligned"),
        });
    }
    let end = at.checked_add(cmdsize).ok_or(MachoError::InvalidHeader {
        field: "cmdsize",
        reason: "overflows the address space".to_owned(),
    })?;
    if end > cmds_end {
        return Err(MachoError::Truncated { context: "load command", needed: end, available: cmds_end });
    }

    let parsed = match cmd {
        LC_SEGMENT_64 => parse_segment(bytes, at, cmdsize)?,
        LC_MAIN => {
            if cmdsize != MAIN_CMD_SIZE {
                return Err(MachoError::InvalidHeader {
                    field: "LC_MAIN cmdsize",
                    reason: format!("{cmdsize} != {MAIN_CMD_SIZE}"),
                });
            }
            LoadCommand::Main {
                entryoff: read_u64(bytes, at + 8, "LC_MAIN")?,
                stacksize: read_u64(bytes, at + 16, "LC_MAIN")?,
            }
        }
        LC_UNIXTHREAD => {
            let flavor = read_u32(bytes, at + 8, "LC_UNIXTHREAD")?;
            let count = read_u32(bytes, at + 12, "LC_UNIXTHREAD")? as usize;
            let state_len = count.checked_mul(4).ok_or(MachoError::InvalidHeader {
                field: "thread state count",
                reason: "overflows".to_owned(),
            })?;
            if 16 + state_len != cmdsize {
                return Err(MachoError::InvalidHeader {
                    field: "LC_UNIXTHREAD cmdsize",
                    reason: format!("{cmdsize} does not match state count {count}"),
                });
            }
            let state = bytes
                .get(at + 16..at + 16 + state_len)
                .ok_or(MachoError::Truncated {
                    context: "thread state",
                    needed: at + 16 + state_len,
                    available: bytes.len(),
                })?
                .to_vec();
            LoadCommand::UnixThread { flavor, state }
        }
        LC_LOAD_DYLIB => {
            let name_offset = read_u32(bytes, at + 8, "LC_LOAD_DYLIB")? as usize;
            if name_offset != DYLIB_CMD_FIXED {
                return Err(MachoError::InvalidHeader {
                    field: "dylib name offset",
                    reason: format!("{name_offset} != {DYLIB_CMD_FIXED}"),
                });
            }
            let timestamp = read_u32(bytes, at + 12, "LC_LOAD_DYLIB")?;
            let current_version = read_u32(bytes, at + 16, "LC_LOAD_DYLIB")?;
            let compat_version = read_u32(bytes, at + 20, "LC_LOAD_DYLIB")?;
            let name_field = bytes.get(at + DYLIB_CMD_FIXED..end).ok_or(MachoError::Truncated {
                context: "dylib name",
                needed: end,
                available: bytes.len(),
            })?;
            let name_end = name_field.iter().position(|&b| b == 0).unwrap_or(name_field.len());
            let name = name_field[..name_end].to_vec();
            LoadCommand::LoadDylib {
                name,
                cmdsize: cmdsize as u32,
                timestamp,
                current_version,
                compat_version,
            }
        }
        other => LoadCommand::Other {
            cmd: other,
            payload: bytes
                .get(at + 8..end)
                .ok_or(MachoError::Truncated { context: "load command", needed: end, available: bytes.len() })?
                .to_vec(),
        },
    };
    Ok((parsed, end))
}

fn parse_segment(bytes: &[u8], at: usize, cmdsize: usize) -> Result<LoadCommand, MachoError> {
    let nsects = read_u32(bytes, at + 64, "segment command")? as usize;
    let expected = SEGMENT_CMD_SIZE
        .checked_add(nsects.checked_mul(SECTION_ENTRY_SIZE).ok_or(MachoError::InvalidHeader {
            field: "nsects",
            reason: "overflows".to_owned(),
        })?)
        .ok_or(MachoError::InvalidHeader { field: "nsects", reason: "overflows".to_owned() })?;
    if cmdsize != expected {
        return Err(MachoError::InvalidHeader {
            field: "segment cmdsize",
            reason: format!("{cmdsize} does not match {nsects} sections (expected {expected})"),
        });
    }
    let mut sections = Vec::with_capacity(nsects);
    for i in 0..nsects {
        let s = at + SEGMENT_CMD_SIZE + i * SECTION_ENTRY_SIZE;
        sections.push(MachoSection {
            sectname: read_name16(bytes, s, "section entry")?,
            segname: read_name16(bytes, s + 16, "section entry")?,
            addr: read_u64(bytes, s + 32, "section entry")?,
            size: read_u64(bytes, s + 40, "section entry")?,
            offset: read_u32(bytes, s + 48, "section entry")?,
            align: read_u32(bytes, s + 52, "section entry")?,
            reloff: read_u32(bytes, s + 56, "section entry")?,
            nreloc: read_u32(bytes, s + 60, "section entry")?,
            flags: read_u32(bytes, s + 64, "section entry")?,
            reserved: [
                read_u32(bytes, s + 68, "section entry")?,
                read_u32(bytes, s + 72, "section entry")?,
                read_u32(bytes, s + 76, "section entry")?,
            ],
            data: Vec::new(),
        });
    }
    Ok(LoadCommand::Segment(Segment64 {
        segname: read_name16(bytes, at + 8, "segment command")?,
        vmaddr: read_u64(bytes, at + 24, "segment command")?,
        vmsize: read_u64(bytes, at + 32, "segment command")?,
        fileoff: read_u64(bytes, at + 40, "segment command")?,
        filesize: read_u64(bytes, at + 48, "segment command")?,
        maxprot: read_u32(bytes, at + 56, "segment command")?,
        initprot: read_u32(bytes, at + 60, "segment command")?,
        flags: read_u32(bytes, at + 68, "segment command")?,
        sections,
    }))
}

/// Strict-mode cross-structure checks: loaders shrug these off, but a
/// well-formed toolchain output never violates them.
fn validate_strict(file: &MachoFile, file_len: usize) -> Result<(), MachoError> {
    let mut seen = std::collections::BTreeSet::new();
    let mut mapped: Vec<(u64, u64, String)> = Vec::new();
    for seg in file.segments() {
        for sect in &seg.sections {
            let name = format!("{},{}", seg.name(), sect.name());
            if !seen.insert(name.clone()) {
                return Err(MachoError::DuplicateSection(name));
            }
            if !sect.is_zerofill() {
                let end = u64::from(sect.offset).saturating_add(sect.size);
                if end > file_len as u64 {
                    return Err(MachoError::Truncated {
                        context: "section data",
                        needed: end as usize,
                        available: file_len,
                    });
                }
                // Containment in the owning segment's file extent.
                let seg_end = seg.fileoff.saturating_add(seg.filesize);
                if u64::from(sect.offset) < seg.fileoff || end > seg_end {
                    return Err(MachoError::InvalidHeader {
                        field: "section offset",
                        reason: format!("section {name} escapes its segment's file extent"),
                    });
                }
                let va_end = sect.addr.saturating_add(sect.size);
                let seg_va_end = seg.vmaddr.saturating_add(seg.vmsize);
                if sect.addr < seg.vmaddr || va_end > seg_va_end {
                    return Err(MachoError::InvalidHeader {
                        field: "section addr",
                        reason: format!("section {name} escapes its segment's vm extent"),
                    });
                }
            }
            if sect.size > 0 {
                mapped.push((sect.addr, sect.addr.saturating_add(sect.size), name));
            }
        }
        if seg.vmsize < seg.filesize {
            return Err(MachoError::InvalidHeader {
                field: "vmsize",
                reason: format!("segment {} maps fewer bytes than its file extent", seg.name()),
            });
        }
    }
    mapped.sort();
    for pair in mapped.windows(2) {
        if pair[1].0 < pair[0].1 {
            return Err(MachoError::InvalidHeader {
                field: "section addr",
                reason: format!("sections {} and {} overlap in memory", pair[0].2, pair[1].2),
            });
        }
    }
    if let Some(entryoff) = file.commands.iter().find_map(|c| match c {
        LoadCommand::Main { entryoff, .. } => Some(*entryoff),
        _ => None,
    }) {
        if file.section_containing_fileoff(entryoff).is_none() {
            return Err(MachoError::InvalidHeader {
                field: "entryoff",
                reason: format!("{entryoff:#x} maps into no section"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachoBuilder;
    use mpass_binfmt::SectionKind;

    #[test]
    fn fat_and_variant_magics_are_typed() {
        // Big-endian fat header with 3 slices.
        let mut fat = FAT_MAGIC.to_le_bytes().to_vec();
        fat.extend_from_slice(&3u32.to_be_bytes());
        fat.resize(32, 0);
        assert_eq!(MachoFile::parse(&fat), Err(MachoError::FatBinary { arch_count: 3 }));

        let mut thirty_two = MH_MAGIC_32.to_le_bytes().to_vec();
        thirty_two.resize(28, 0);
        assert!(matches!(MachoFile::parse(&thirty_two), Err(MachoError::Unsupported { .. })));

        let mut swapped = MH_CIGAM_64.to_le_bytes().to_vec();
        swapped.resize(32, 0);
        assert!(matches!(MachoFile::parse(&swapped), Err(MachoError::Unsupported { .. })));

        assert!(matches!(
            MachoFile::parse(b"MZ\x90\x00"),
            Err(MachoError::BadMagic { .. }) | Err(MachoError::Truncated { .. })
        ));
    }

    #[test]
    fn truncation_never_panics() {
        let mut b = MachoBuilder::new();
        b.add_section("__text", &[0x90; 64], SectionKind::Code).set_entry_section("__text", 0);
        let bytes = b.build().unwrap().to_bytes();
        for cut in 0..bytes.len() {
            let _ = MachoFile::parse(&bytes[..cut]);
            let _ = MachoFile::parse_strict(&bytes[..cut]);
        }
    }

    #[test]
    fn strict_rejects_overlapping_sections() {
        let mut b = MachoBuilder::new();
        b.add_section("__text", &[0x90; 64], SectionKind::Code)
            .add_section("__data", &[1; 64], SectionKind::Data)
            .set_entry_section("__text", 0);
        let mut m = b.build().unwrap();
        // Drag the second section's address on top of the first.
        if let Some(s) = m.section_at_mut(1) {
            s.addr = 0x1000;
        }
        if let Some(crate::LoadCommand::Segment(seg)) = m.commands.get_mut(1) {
            seg.vmaddr = 0x1000;
        }
        let bytes = m.to_bytes();
        assert!(MachoFile::parse(&bytes).is_ok(), "loader-tolerant accepts overlap");
        assert!(matches!(
            MachoFile::parse_strict(&bytes),
            Err(MachoError::InvalidHeader { field: "section addr", .. })
        ));
    }

    #[test]
    fn overlay_survives_round_trip() {
        let mut b = MachoBuilder::new();
        b.add_section("__text", &[0x90; 64], SectionKind::Code).set_entry_section("__text", 0);
        let mut m = b.build().unwrap();
        m.append_overlay(b"trailing bytes the loader ignores");
        let re = MachoFile::parse(&m.to_bytes()).unwrap();
        assert_eq!(re, m);
        assert_eq!(re.overlay, b"trailing bytes the loader ignores");
    }
}
