//! Round-trip-faithful serialization.
//!
//! Layout model: `[header][load commands][section data at stored offsets,
//! zero-filled gaps][overlay]`. Because every section records its own file
//! offset and the parser re-reads data from those offsets, an image
//! serialized from a parsed struct reproduces the original bytes for any
//! input that parses — including overlapping or out-of-order section data.

use crate::cmds::{put_u32, MACH_HEADER_SIZE};
use crate::MachoFile;
use mpass_binfmt::MH_MAGIC_64;

impl MachoFile {
    /// Total size of the load-command region as it will serialize.
    pub fn sizeofcmds(&self) -> u32 {
        self.commands.iter().map(|c| c.cmdsize()).sum()
    }

    /// File offset where mapped content ends and the overlay begins.
    pub fn data_end(&self) -> usize {
        let mut end = MACH_HEADER_SIZE + self.sizeofcmds() as usize;
        for seg in self.segments() {
            for sect in &seg.sections {
                if sect.is_zerofill() || sect.offset == 0 {
                    continue;
                }
                end = end.max(sect.offset as usize + sect.data.len());
            }
        }
        end
    }

    /// Serialize the image. `ncmds` and `sizeofcmds` are derived from the
    /// command list, so edits can never desynchronize them.
    pub fn to_bytes(&self) -> Vec<u8> {
        let data_end = self.data_end();
        let mut out = Vec::with_capacity(data_end + self.overlay.len());

        put_u32(&mut out, MH_MAGIC_64);
        put_u32(&mut out, self.header.cputype);
        put_u32(&mut out, self.header.cpusubtype);
        put_u32(&mut out, self.header.filetype);
        put_u32(&mut out, self.commands.len() as u32);
        put_u32(&mut out, self.sizeofcmds());
        put_u32(&mut out, self.header.flags);
        put_u32(&mut out, self.header.reserved);
        for cmd in &self.commands {
            cmd.write(&mut out);
        }

        out.resize(data_end, 0);
        for seg in self.segments() {
            for sect in &seg.sections {
                if sect.is_zerofill() || sect.offset == 0 {
                    continue;
                }
                let start = sect.offset as usize;
                let end = start + sect.data.len();
                if end <= out.len() {
                    out[start..end].copy_from_slice(&sect.data);
                }
            }
        }
        out.extend_from_slice(&self.overlay);
        out
    }
}
