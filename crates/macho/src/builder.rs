//! Synthetic Mach-O construction, mirroring `mpass_pe::PeBuilder`.
//!
//! The builder produces minimal but well-formed `MH_EXECUTE` images: one
//! single-section segment per added section, page-aligned virtual
//! addresses starting at a small base so flat loader mappings stay cheap,
//! optional linked dylibs, and an entry point expressed either as
//! `LC_MAIN` (file offset) or `LC_UNIXTHREAD` (register state).

use crate::cmds::{
    encode_name16, LoadCommand, MachHeader, MachoSection, Segment64, CPU_SUBTYPE_X86_64_ALL,
    CPU_TYPE_X86_64, DYLIB_CMD_FIXED, MACH_HEADER_SIZE, MH_EXECUTE, RIP_REGISTER_INDEX,
    SECTION_ENTRY_SIZE, SEGMENT_CMD_SIZE, S_ATTR_PURE_INSTRUCTIONS, S_ATTR_SOME_INSTRUCTIONS,
    S_ZEROFILL, VM_PROT_EXECUTE, VM_PROT_READ, VM_PROT_WRITE, X86_THREAD_STATE64,
};
use crate::{MachoError, MachoFile};
use mpass_binfmt::SectionKind;

/// Lowest virtual address the builder maps at. Kept deliberately small so
/// the sandbox's flat memory image stays proportional to content size.
const BASE_VA: u64 = 0x1000;
/// Page alignment for mapped segments.
const PAGE: u64 = 0x1000;
/// File alignment for section data.
const FILE_ALIGN: usize = 16;

/// How the built image declares its entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryStyle {
    /// `LC_MAIN`: entry as a file offset (the modern toolchain default).
    Main,
    /// `LC_UNIXTHREAD`: entry as initial register state.
    UnixThread,
}

struct PendingSection {
    name: String,
    kind: SectionKind,
    data: Vec<u8>,
}

struct PendingDylib {
    name: String,
    timestamp: u32,
    current_version: u32,
    compat_version: u32,
}

/// Builder for synthetic 64-bit Mach-O executables.
pub struct MachoBuilder {
    sections: Vec<PendingSection>,
    dylibs: Vec<PendingDylib>,
    entry: Option<(String, u64)>,
    entry_style: EntryStyle,
    header_slack: usize,
    flags: u32,
}

impl Default for MachoBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl MachoBuilder {
    /// Start an empty builder. By default the load-command region reserves
    /// room for two future sections, like the PE builder's header slack.
    pub fn new() -> Self {
        MachoBuilder {
            sections: Vec::new(),
            dylibs: Vec::new(),
            entry: None,
            entry_style: EntryStyle::Main,
            header_slack: 2,
            flags: 0,
        }
    }

    /// Reserve load-command room for `sections` future section additions
    /// (0 produces an image where `add_section` must fall back to overlay
    /// appending, the paper's no-space case).
    pub fn set_header_slack(&mut self, sections: usize) -> &mut Self {
        self.header_slack = sections;
        self
    }

    /// Choose how the entry point is declared.
    pub fn set_entry_style(&mut self, style: EntryStyle) -> &mut Self {
        self.entry_style = style;
        self
    }

    /// Set the `mach_header_64` flags word.
    pub fn set_flags(&mut self, flags: u32) -> &mut Self {
        self.flags = flags;
        self
    }

    /// Append a section with the given payload, classified as `kind`.
    pub fn add_section(&mut self, name: &str, data: &[u8], kind: SectionKind) -> &mut Self {
        self.sections.push(PendingSection {
            name: name.to_owned(),
            kind,
            data: data.to_vec(),
        });
        self
    }

    /// Link a dylib by install name (the Mach-O import surface).
    pub fn add_dylib(&mut self, name: &str, timestamp: u32) -> &mut Self {
        self.dylibs.push(PendingDylib {
            name: name.to_owned(),
            timestamp,
            current_version: 0x0001_0000,
            compat_version: 0x0001_0000,
        });
        self
    }

    /// Declare the entry point at `offset` bytes into section `name`.
    pub fn set_entry_section(&mut self, name: &str, offset: u64) -> &mut Self {
        self.entry = Some((name.to_owned(), offset));
        self
    }

    /// Build the image.
    ///
    /// # Errors
    ///
    /// [`MachoError::DuplicateSection`] on repeated names,
    /// [`MachoError::NameTooLong`] past 16 bytes, and
    /// [`MachoError::MissingSection`] when the declared entry section does
    /// not exist.
    pub fn build(&self) -> Result<MachoFile, MachoError> {
        for (i, s) in self.sections.iter().enumerate() {
            if self.sections[..i].iter().any(|p| p.name == s.name) {
                return Err(MachoError::DuplicateSection(s.name.clone()));
            }
        }
        if let Some((entry_name, _)) = &self.entry {
            if !self.sections.iter().any(|s| &s.name == entry_name) {
                return Err(MachoError::MissingSection(entry_name.clone()));
            }
        }

        let mut commands: Vec<LoadCommand> = Vec::new();
        let mut sizeofcmds = 0usize;
        for _ in &self.sections {
            sizeofcmds += SEGMENT_CMD_SIZE + SECTION_ENTRY_SIZE;
        }
        for d in &self.dylibs {
            sizeofcmds += dylib_cmdsize(&d.name);
        }
        sizeofcmds += match self.entry_style {
            EntryStyle::Main => 24,
            EntryStyle::UnixThread => 16 + 21 * 8,
        };
        let data_start =
            MACH_HEADER_SIZE + sizeofcmds + self.header_slack * (SEGMENT_CMD_SIZE + SECTION_ENTRY_SIZE);

        let mut file_cursor = data_start;
        let mut va_cursor = BASE_VA;
        let mut entry_va = 0u64;
        let mut entry_fileoff = 0u64;

        for pending in &self.sections {
            let (segname, initprot, maxprot, flags) = section_profile(pending.kind);
            let zerofill = flags & S_ZEROFILL != 0;
            let size = pending.data.len() as u64;
            let fileoff = align_up(file_cursor, FILE_ALIGN);
            let vmaddr = va_cursor;

            if let Some((entry_name, offset)) = &self.entry {
                if entry_name == &pending.name {
                    entry_va = vmaddr + offset;
                    entry_fileoff = fileoff as u64 + offset;
                }
            }

            let section = MachoSection {
                sectname: encode_name16(&pending.name)?,
                segname: encode_name16(segname)?,
                addr: vmaddr,
                size,
                offset: if zerofill {
                    0
                } else {
                    u32::try_from(fileoff).map_err(|_| MachoError::Malformed(
                        "section data placement exceeds the 4 GiB file-offset space".to_owned(),
                    ))?
                },
                align: 4,
                reloff: 0,
                nreloc: 0,
                flags,
                reserved: [0; 3],
                data: if zerofill { Vec::new() } else { pending.data.clone() },
            };
            commands.push(LoadCommand::Segment(Segment64 {
                segname: encode_name16(segname)?,
                vmaddr,
                vmsize: align_up_u64(size.max(1), PAGE),
                fileoff: if zerofill { 0 } else { fileoff as u64 },
                filesize: if zerofill { 0 } else { size },
                maxprot,
                initprot,
                flags: 0,
                sections: vec![section],
            }));

            va_cursor = align_up_u64(vmaddr + size.max(1), PAGE);
            if !zerofill {
                file_cursor = fileoff + pending.data.len();
            }
        }

        for d in &self.dylibs {
            commands.push(LoadCommand::LoadDylib {
                name: d.name.as_bytes().to_vec(),
                cmdsize: dylib_cmdsize(&d.name) as u32,
                timestamp: d.timestamp,
                current_version: d.current_version,
                compat_version: d.compat_version,
            });
        }

        match self.entry_style {
            EntryStyle::Main => {
                commands.push(LoadCommand::Main { entryoff: entry_fileoff, stacksize: 0 });
            }
            EntryStyle::UnixThread => {
                let mut state = vec![0u8; 21 * 8];
                if let Some(slot) =
                    state.get_mut(RIP_REGISTER_INDEX * 8..RIP_REGISTER_INDEX * 8 + 8)
                {
                    slot.copy_from_slice(&entry_va.to_le_bytes());
                }
                commands.push(LoadCommand::UnixThread { flavor: X86_THREAD_STATE64, state });
            }
        }

        Ok(MachoFile {
            header: MachHeader {
                cputype: CPU_TYPE_X86_64,
                cpusubtype: CPU_SUBTYPE_X86_64_ALL,
                filetype: MH_EXECUTE,
                flags: self.flags,
                reserved: 0,
            },
            commands,
            overlay: Vec::new(),
        })
    }
}

fn section_profile(kind: SectionKind) -> (&'static str, u32, u32, u32) {
    match kind {
        SectionKind::Code => (
            "__TEXT",
            VM_PROT_READ | VM_PROT_EXECUTE,
            VM_PROT_READ | VM_PROT_WRITE | VM_PROT_EXECUTE,
            S_ATTR_PURE_INSTRUCTIONS | S_ATTR_SOME_INSTRUCTIONS,
        ),
        SectionKind::Bss => (
            "__DATA",
            VM_PROT_READ | VM_PROT_WRITE,
            VM_PROT_READ | VM_PROT_WRITE,
            S_ZEROFILL,
        ),
        SectionKind::ReadOnlyData
        | SectionKind::Resource
        | SectionKind::Import
        | SectionKind::Relocation => ("__DATA_CONST", VM_PROT_READ, VM_PROT_READ, 0),
        _ => ("__DATA", VM_PROT_READ | VM_PROT_WRITE, VM_PROT_READ | VM_PROT_WRITE, 0),
    }
}

fn dylib_cmdsize(name: &str) -> usize {
    align_up(DYLIB_CMD_FIXED + name.len() + 1, 8)
}

fn align_up(v: usize, align: usize) -> usize {
    v.div_ceil(align) * align
}

fn align_up_u64(v: u64, align: u64) -> u64 {
    v.div_ceil(align) * align
}
