//! Typed Mach-O errors, mirroring `PeError`'s panic-free discipline.

use mpass_binfmt::BinaryError;
use std::error::Error;
use std::fmt;

/// What went wrong while parsing or editing a Mach-O image.
///
/// Every failure mode of the backend is enumerated here; nothing in the
/// crate panics on hostile input. The shape deliberately mirrors
/// `PeError` so the two backends read the same, with two Mach-O-specific
/// additions: fat/universal wrappers and non-64-bit variants are detected
/// and reported as such rather than lumped into a bad-magic catch-all.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MachoError {
    /// The buffer is shorter than a structure requires.
    Truncated {
        /// What was being read when the buffer ran out.
        context: &'static str,
        /// Bytes the structure needs.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A magic number is wrong.
    BadMagic {
        /// Which magic failed.
        context: &'static str,
        /// The value found.
        found: u32,
    },
    /// The file is a fat/universal wrapper around per-architecture images.
    FatBinary {
        /// Number of architecture slices the fat header declares.
        arch_count: u32,
    },
    /// The file is a recognized Mach-O variant this backend does not
    /// support (32-bit or byte-swapped images).
    Unsupported {
        /// Which variant was found.
        detail: &'static str,
    },
    /// A header field holds a value the implementation cannot honor.
    InvalidHeader {
        /// Field name.
        field: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// A section with this name already exists.
    DuplicateSection(String),
    /// No section with this name exists.
    MissingSection(String),
    /// A name exceeds the 16-byte Mach-O name field.
    NameTooLong(String),
    /// The load-command region has no room before the first section's data.
    NoHeaderSpace,
    /// A virtual address maps into no section.
    UnmappedAddress(u64),
    /// Catch-all structural violation.
    Malformed(String),
}

impl fmt::Display for MachoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachoError::Truncated { context, needed, available } => write!(
                f,
                "truncated {context}: need {needed} bytes, have {available}"
            ),
            MachoError::BadMagic { context, found } => {
                write!(f, "bad {context} magic: {found:#x}")
            }
            MachoError::FatBinary { arch_count } => {
                write!(f, "fat/universal binary with {arch_count} architecture slices")
            }
            MachoError::Unsupported { detail } => write!(f, "unsupported mach-o variant: {detail}"),
            MachoError::InvalidHeader { field, reason } => {
                write!(f, "invalid {field}: {reason}")
            }
            MachoError::DuplicateSection(name) => write!(f, "section {name:?} already exists"),
            MachoError::MissingSection(name) => write!(f, "no section named {name:?}"),
            MachoError::NameTooLong(name) => {
                write!(f, "name {name:?} exceeds the 16-byte mach-o field")
            }
            MachoError::NoHeaderSpace => {
                write!(f, "no load-command room left before the first section's data")
            }
            MachoError::UnmappedAddress(va) => {
                write!(f, "virtual address {va:#x} maps into no section")
            }
            MachoError::Malformed(reason) => write!(f, "malformed image: {reason}"),
        }
    }
}

impl Error for MachoError {}

impl From<MachoError> for BinaryError {
    fn from(e: MachoError) -> Self {
        match e {
            MachoError::Truncated { context, needed, available } => {
                BinaryError::Truncated { context, needed, available }
            }
            MachoError::BadMagic { context, found } => BinaryError::BadMagic { context, found },
            MachoError::FatBinary { arch_count } => BinaryError::UnsupportedVariant {
                context: "mach-o container",
                detail: format!("fat/universal wrapper ({arch_count} slices)"),
            },
            MachoError::Unsupported { detail } => BinaryError::UnsupportedVariant {
                context: "mach-o container",
                detail: detail.to_owned(),
            },
            MachoError::InvalidHeader { field, reason } => {
                BinaryError::InvalidHeader { field, reason }
            }
            MachoError::DuplicateSection(n) => BinaryError::DuplicateSection(n),
            MachoError::MissingSection(n) => BinaryError::MissingSection(n),
            MachoError::NameTooLong(n) => BinaryError::NameTooLong(n),
            MachoError::NoHeaderSpace => BinaryError::NoHeaderSpace,
            MachoError::UnmappedAddress(va) => BinaryError::UnmappedAddress(va),
            other => BinaryError::Malformed(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_lowercase() {
        let cases = [
            MachoError::Truncated { context: "mach header", needed: 32, available: 4 },
            MachoError::BadMagic { context: "mach header", found: 0x1234 },
            MachoError::FatBinary { arch_count: 2 },
            MachoError::Unsupported { detail: "32-bit image" },
            MachoError::InvalidHeader { field: "sizeofcmds", reason: "escapes file".into() },
            MachoError::DuplicateSection("__text".into()),
            MachoError::MissingSection("__data".into()),
            MachoError::NameTooLong("seventeen-bytes-x".into()),
            MachoError::NoHeaderSpace,
            MachoError::UnmappedAddress(0x99),
            MachoError::Malformed("why".into()),
        ];
        for c in cases {
            let msg = c.to_string();
            assert!(msg.chars().next().is_some_and(|c| c.is_lowercase()), "{msg}");
        }
    }

    #[test]
    fn fat_conversion_stays_typed() {
        let b: BinaryError = MachoError::FatBinary { arch_count: 3 }.into();
        assert!(matches!(b, BinaryError::UnsupportedVariant { .. }), "{b:?}");
    }

    #[test]
    fn is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MachoError>();
    }
}
