//! 64-bit Mach-O container backend for the MPass binary layer.
//!
//! This crate is the second [`mpass_binfmt::BinaryFormat`] backend,
//! alongside `mpass-pe`. It parses little-endian `MH_MAGIC_64` images
//! (executables built by [`MachoBuilder`] or found in the wild), supports
//! the same edit surface the attack pipeline needs — section addition,
//! entry-point retargeting across both `LC_MAIN` and `LC_UNIXTHREAD`,
//! virtual writes, overlay appends, free-header randomization — and
//! serializes round-trip-faithfully: `parse(to_bytes(x)) == x` for every
//! image it accepts.
//!
//! Scope is deliberately the same as the PE backend's: enough structure for
//! the paper's threat model (static detectors reading headers, sections and
//! import names), with everything else carried verbatim as opaque load
//! commands so hostile inputs neither panic nor lose bytes. Fat/universal
//! wrappers, 32-bit images and byte-swapped images are detected and
//! rejected with typed errors rather than misparsed.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
#![deny(missing_docs)]

mod binfmt_impl;
pub mod builder;
pub mod cmds;
mod edit;
mod error;
mod parse;
mod write;

pub use binfmt_impl::classify_section;
pub use builder::{EntryStyle, MachoBuilder};
pub use cmds::{
    encode_name16, name16_str, LoadCommand, MachHeader, MachoSection, Segment64,
    CPU_SUBTYPE_X86_64_ALL, CPU_TYPE_X86_64, LC_LOAD_DYLIB, LC_MAIN, LC_SEGMENT_64, LC_UNIXTHREAD,
    MACH_HEADER_SIZE, MH_EXECUTE, SECTION_ENTRY_SIZE, SEGMENT_CMD_SIZE, S_ATTR_PURE_INSTRUCTIONS,
    S_ATTR_SOME_INSTRUCTIONS, S_ZEROFILL, VM_PROT_EXECUTE, VM_PROT_READ, VM_PROT_WRITE,
    X86_THREAD_STATE64,
};
pub use error::MachoError;
// The shared mode/format vocabulary lives in mpass-binfmt; re-export so
// this crate is usable standalone, mirroring `mpass_pe::ParseMode`.
pub use mpass_binfmt::ParseMode;

use serde::{Deserialize, Serialize};

/// A parsed 64-bit Mach-O image.
///
/// `magic`, `ncmds` and `sizeofcmds` are not stored: the magic is fixed
/// (`MH_MAGIC_64`) and the counts are derived from [`MachoFile::commands`]
/// at serialization time, so edits cannot desynchronize them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachoFile {
    /// Header fields carried verbatim.
    pub header: MachHeader,
    /// Load commands in file order. Segments own their section data.
    pub commands: Vec<LoadCommand>,
    /// Bytes past the last mapped section's file extent.
    pub overlay: Vec<u8>,
}

impl MachoFile {
    /// Iterate the segment load commands.
    pub fn segments(&self) -> impl Iterator<Item = &Segment64> {
        self.commands.iter().filter_map(|c| match c {
            LoadCommand::Segment(seg) => Some(seg),
            _ => None,
        })
    }

    /// Iterate the segment load commands mutably.
    pub fn segments_mut(&mut self) -> impl Iterator<Item = &mut Segment64> {
        self.commands.iter_mut().filter_map(|c| match c {
            LoadCommand::Segment(seg) => Some(seg),
            _ => None,
        })
    }

    /// Flat iterator over all sections in command order, the order the
    /// [`mpass_binfmt::BinaryFormat`] index space uses.
    pub fn sections(&self) -> impl Iterator<Item = &MachoSection> {
        self.segments().flat_map(|seg| seg.sections.iter())
    }

    /// Number of sections across all segments.
    pub fn section_count(&self) -> usize {
        self.segments().map(|seg| seg.sections.len()).sum()
    }

    /// Section at flat index `index`, with its owning segment.
    pub fn section_at(&self, index: usize) -> Option<(&Segment64, &MachoSection)> {
        let mut remaining = index;
        for seg in self.segments() {
            if remaining < seg.sections.len() {
                return seg.sections.get(remaining).map(|s| (seg, s));
            }
            remaining -= seg.sections.len();
        }
        None
    }

    /// Mutable section at flat index `index`.
    pub fn section_at_mut(&mut self, index: usize) -> Option<&mut MachoSection> {
        let mut remaining = index;
        for seg in self.segments_mut() {
            if remaining < seg.sections.len() {
                return seg.sections.get_mut(remaining);
            }
            remaining -= seg.sections.len();
        }
        None
    }

    /// Flat index of the first section named `name`.
    pub fn section_index(&self, name: &str) -> Option<usize> {
        self.sections().position(|s| s.name() == name)
    }

    /// Flat index of the section whose mapped extent contains `va`.
    pub fn section_index_containing_va(&self, va: u64) -> Option<usize> {
        self.sections().position(|s| s.contains_va(va))
    }

    /// The section whose file extent contains `fileoff` (zerofill sections
    /// have no file extent and never match).
    pub fn section_containing_fileoff(&self, fileoff: u64) -> Option<&MachoSection> {
        self.sections().find(|s| {
            !s.is_zerofill()
                && s.offset != 0
                && fileoff >= u64::from(s.offset)
                && fileoff < u64::from(s.offset).saturating_add(s.size.max(1))
        })
    }

    /// File offset backing virtual address `va`, when a file-backed section
    /// maps it.
    pub fn va_to_file_offset(&self, va: u64) -> Option<usize> {
        let s = self.sections().find(|s| !s.is_zerofill() && s.offset != 0 && s.contains_va(va))?;
        usize::try_from(u64::from(s.offset) + (va - s.addr)).ok()
    }

    /// Virtual address execution starts at: `LC_MAIN`'s `entryoff`
    /// translated through the section that maps it, or `LC_UNIXTHREAD`'s
    /// stored instruction pointer. 0 when the image declares no entry.
    pub fn entry_point(&self) -> u64 {
        for cmd in &self.commands {
            match cmd {
                LoadCommand::Main { entryoff, .. } => {
                    if let Some(s) = self.section_containing_fileoff(*entryoff) {
                        return s.addr + (*entryoff - u64::from(s.offset));
                    }
                    return *entryoff;
                }
                LoadCommand::UnixThread { state, .. } => {
                    let at = cmds::RIP_REGISTER_INDEX * 8;
                    if let Some(b) = state.get(at..at + 8) {
                        let mut a = [0u8; 8];
                        a.copy_from_slice(b);
                        return u64::from_le_bytes(a);
                    }
                    return 0;
                }
                _ => {}
            }
        }
        0
    }

    /// Names of the linked libraries (`LC_LOAD_DYLIB`), the Mach-O import
    /// surface this substrate models. Non-UTF8 name bytes (possible in
    /// hostile inputs; the struct carries them verbatim) decode lossily
    /// here, at the display boundary.
    pub fn dylib_names(&self) -> Vec<String> {
        self.commands
            .iter()
            .filter_map(|c| match c {
                LoadCommand::LoadDylib { name, .. } => {
                    Some(String::from_utf8_lossy(name).into_owned())
                }
                _ => None,
            })
            .collect()
    }

    /// Read `len` bytes of mapped memory starting at `va`, zero filled
    /// where nothing maps (zerofill sections read as zeros).
    pub fn read_virtual(&self, va: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        for s in self.sections() {
            if s.size == 0 {
                continue;
            }
            let s_end = s.addr.saturating_add(s.size);
            let lo = va.max(s.addr);
            let hi = va.saturating_add(len as u64).min(s_end);
            if lo >= hi {
                continue;
            }
            for off in lo..hi {
                let dst = (off - va) as usize;
                let src = (off - s.addr) as usize;
                out[dst] = s.data.get(src).copied().unwrap_or(0);
            }
        }
        out
    }
}
