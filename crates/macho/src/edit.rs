//! Mutation surface: section addition, entry retargeting, virtual writes,
//! overlay control and free-header randomization.

use crate::cmds::{
    encode_name16, LoadCommand, MachoSection, Segment64, MACH_HEADER_SIZE, RIP_REGISTER_INDEX,
    SECTION_ENTRY_SIZE, SEGMENT_CMD_SIZE, S_ATTR_PURE_INSTRUCTIONS, S_ATTR_SOME_INSTRUCTIONS,
    S_ZEROFILL, VM_PROT_EXECUTE, VM_PROT_READ, VM_PROT_WRITE,
};
use crate::{MachoError, MachoFile};
use mpass_binfmt::SectionKind;
use rand::RngCore;

/// Page size new segments are aligned to.
const PAGE: u64 = 0x1000;
/// File alignment for newly placed section data.
const FILE_ALIGN: usize = 16;
/// Serialized cost of one added segment + section pair.
const ADDED_CMD_SIZE: usize = SEGMENT_CMD_SIZE + SECTION_ENTRY_SIZE;

fn align_up_u64(v: u64, align: u64) -> u64 {
    v.div_ceil(align) * align
}

fn align_up(v: usize, align: usize) -> usize {
    v.div_ceil(align) * align
}

impl MachoFile {
    /// File offset of the first file-backed section's data — the hard wall
    /// the load-command region cannot grow past.
    fn first_data_offset(&self) -> Option<usize> {
        self.sections()
            .filter(|s| !s.is_zerofill() && s.offset != 0)
            .map(|s| s.offset as usize)
            .min()
    }

    /// Whether `n` more single-section segments fit in the load-command
    /// region without displacing existing section data.
    pub fn can_add_sections(&self, n: usize) -> bool {
        let needed = MACH_HEADER_SIZE + self.sizeofcmds() as usize + n * ADDED_CMD_SIZE;
        match self.first_data_offset() {
            Some(first) => needed <= first,
            None => true,
        }
    }

    /// The virtual address the next added section would receive: one page
    /// past the highest mapped extent, never below the first page.
    pub fn next_free_va(&self) -> u64 {
        let end = self
            .segments()
            .map(|seg| seg.vmaddr.saturating_add(seg.vmsize))
            .chain(self.sections().map(|s| s.addr.saturating_add(s.size)))
            .max()
            .unwrap_or(PAGE);
        align_up_u64(end.max(PAGE), PAGE)
    }

    /// Append a new single-section segment carrying `data`, classified as
    /// `kind`; returns the virtual address the section maps at.
    ///
    /// # Errors
    ///
    /// [`MachoError::DuplicateSection`] when a section named `name` exists,
    /// [`MachoError::NameTooLong`] past 16 bytes, and
    /// [`MachoError::NoHeaderSpace`] when the grown load-command region
    /// would collide with the first section's file data.
    pub fn add_section(
        &mut self,
        name: &str,
        data: Vec<u8>,
        kind: SectionKind,
    ) -> Result<u64, MachoError> {
        if self.sections().any(|s| s.name() == name) {
            return Err(MachoError::DuplicateSection(name.to_owned()));
        }
        let sectname = encode_name16(name)?;
        if !self.can_add_sections(1) {
            return Err(MachoError::NoHeaderSpace);
        }

        let (segname, initprot, maxprot, flags) = match kind {
            SectionKind::Code => (
                "__TEXT",
                VM_PROT_READ | VM_PROT_EXECUTE,
                VM_PROT_READ | VM_PROT_WRITE | VM_PROT_EXECUTE,
                S_ATTR_PURE_INSTRUCTIONS | S_ATTR_SOME_INSTRUCTIONS,
            ),
            SectionKind::Bss => ("__DATA", VM_PROT_READ | VM_PROT_WRITE, VM_PROT_READ | VM_PROT_WRITE, S_ZEROFILL),
            SectionKind::ReadOnlyData
            | SectionKind::Resource
            | SectionKind::Import
            | SectionKind::Relocation => ("__DATA_CONST", VM_PROT_READ, VM_PROT_READ, 0),
            _ => ("__DATA", VM_PROT_READ | VM_PROT_WRITE, VM_PROT_READ | VM_PROT_WRITE, 0),
        };

        let vmaddr = self.next_free_va();
        let size = data.len() as u64;
        let zerofill = flags & S_ZEROFILL != 0;
        // The new command grows the header region, which can push data_end
        // forward when the file has no section data yet; account for it
        // before placing the new bytes.
        let grown_cmds_end = MACH_HEADER_SIZE + self.sizeofcmds() as usize + ADDED_CMD_SIZE;
        let fileoff = align_up(self.data_end().max(grown_cmds_end), FILE_ALIGN);

        let section = MachoSection {
            sectname,
            segname: encode_name16(segname)?,
            addr: vmaddr,
            size,
            offset: if zerofill {
                0
            } else {
                u32::try_from(fileoff).map_err(|_| MachoError::Malformed(
                    "section data placement exceeds the 4 GiB file-offset space".to_owned(),
                ))?
            },
            align: 4,
            reloff: 0,
            nreloc: 0,
            flags,
            reserved: [0; 3],
            data: if zerofill { Vec::new() } else { data },
        };
        self.commands.push(LoadCommand::Segment(Segment64 {
            segname: encode_name16(segname)?,
            vmaddr,
            vmsize: align_up_u64(size.max(1), PAGE),
            fileoff: if zerofill { 0 } else { fileoff as u64 },
            filesize: if zerofill { 0 } else { size },
            maxprot,
            initprot,
            flags: 0,
            sections: vec![section],
        }));
        Ok(vmaddr)
    }

    /// Retarget the entry point to `va`.
    ///
    /// An existing `LC_MAIN` gets its `entryoff` rewritten through the
    /// section that maps `va`; an `LC_UNIXTHREAD` gets its instruction
    /// pointer overwritten in place. Images with neither gain an
    /// `LC_UNIXTHREAD` (it needs no file-offset backing).
    ///
    /// # Errors
    ///
    /// [`MachoError::UnmappedAddress`] when `va` maps into no section, or
    /// into a file-backed section for the `LC_MAIN` case.
    pub fn set_entry_point(&mut self, va: u64) -> Result<(), MachoError> {
        if self.section_index_containing_va(va).is_none() {
            return Err(MachoError::UnmappedAddress(va));
        }
        let file_off = self.va_to_file_offset(va);
        for cmd in &mut self.commands {
            match cmd {
                LoadCommand::Main { entryoff, .. } => {
                    *entryoff = file_off.ok_or(MachoError::UnmappedAddress(va))? as u64;
                    return Ok(());
                }
                LoadCommand::UnixThread { state, .. } => {
                    let at = RIP_REGISTER_INDEX * 8;
                    match state.get_mut(at..at + 8) {
                        Some(slot) => {
                            slot.copy_from_slice(&va.to_le_bytes());
                            return Ok(());
                        }
                        None => {
                            return Err(MachoError::InvalidHeader {
                                field: "thread state",
                                reason: "too short to hold an instruction pointer".to_owned(),
                            })
                        }
                    }
                }
                _ => {}
            }
        }
        if !self.can_add_sections(0) {
            // The thread command needs 184 bytes of header room, strictly
            // less than a segment; reuse the section bound as a proxy.
            return Err(MachoError::NoHeaderSpace);
        }
        let mut state = vec![0u8; 21 * 8];
        if let Some(slot) = state.get_mut(RIP_REGISTER_INDEX * 8..RIP_REGISTER_INDEX * 8 + 8) {
            slot.copy_from_slice(&va.to_le_bytes());
        }
        self.commands
            .push(LoadCommand::UnixThread { flavor: crate::cmds::X86_THREAD_STATE64, state });
        Ok(())
    }

    /// Write `bytes` into mapped sections starting at `va`.
    ///
    /// # Errors
    ///
    /// [`MachoError::UnmappedAddress`] when any byte of the span falls
    /// outside file-backed section data (zerofill pages are not writable
    /// storage).
    pub fn write_virtual(&mut self, va: u64, bytes: &[u8]) -> Result<(), MachoError> {
        let mut written = 0usize;
        while written < bytes.len() {
            let at = va + written as u64;
            let Some(idx) = self
                .sections()
                .position(|s| !s.is_zerofill() && s.contains_va(at) && ((at - s.addr) as usize) < s.data.len())
            else {
                return Err(MachoError::UnmappedAddress(at));
            };
            // Two lookups because sections() borrows immutably.
            let Some(sect) = self.section_at_mut(idx) else {
                return Err(MachoError::UnmappedAddress(at));
            };
            let off = (at - sect.addr) as usize;
            let n = (sect.data.len() - off).min(bytes.len() - written);
            sect.data[off..off + n].copy_from_slice(&bytes[written..written + n]);
            written += n;
        }
        Ok(())
    }

    /// Map the image as the loader would: a flat buffer covering every
    /// mapped extent, sections copied to their `vmaddr`.
    ///
    /// # Errors
    ///
    /// [`MachoError::Malformed`] when the mapped footprint exceeds
    /// `max_bytes` — hostile `vmaddr` values cannot force a giant
    /// allocation.
    pub fn map_image_bounded(&self, max_bytes: usize) -> Result<Vec<u8>, MachoError> {
        let end = self
            .sections()
            .map(|s| s.addr.saturating_add(s.size))
            .max()
            .unwrap_or(0);
        let size = usize::try_from(end).unwrap_or(usize::MAX);
        if size > max_bytes {
            return Err(MachoError::Malformed(format!(
                "mapped image of {size:#x} bytes exceeds the mapping ceiling {max_bytes:#x}"
            )));
        }
        let mut image = vec![0u8; size];
        for s in self.sections() {
            let start = usize::try_from(s.addr).unwrap_or(usize::MAX);
            if start >= size {
                continue;
            }
            let n = s.data.len().min(size - start);
            image[start..start + n].copy_from_slice(&s.data[..n]);
        }
        Ok(image)
    }

    /// Randomize header fields no loader reads: the reserved header word
    /// and each dylib's link timestamp and current-version stamp. Draw
    /// order (reserved, then per-dylib timestamp/version in command order)
    /// is a stability contract for seeded attacks.
    pub fn randomize_free_headers(&mut self, rng: &mut dyn RngCore) {
        self.header.reserved = rng.next_u32();
        for cmd in &mut self.commands {
            if let LoadCommand::LoadDylib { timestamp, current_version, .. } = cmd {
                *timestamp = rng.next_u32();
                *current_version = rng.next_u32();
            }
        }
    }

    /// The first dylib's link timestamp, the closest Mach-O analogue of the
    /// PE `TimeDateStamp`. 0 when no dylibs are linked.
    pub fn timestamp(&self) -> u32 {
        self.commands
            .iter()
            .find_map(|c| match c {
                LoadCommand::LoadDylib { timestamp, .. } => Some(*timestamp),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Append bytes to the overlay.
    pub fn append_overlay(&mut self, bytes: &[u8]) {
        self.overlay.extend_from_slice(bytes);
    }

    /// Truncate the overlay to `len` bytes.
    pub fn truncate_overlay(&mut self, len: usize) {
        self.overlay.truncate(len);
    }
}
