//! Byte-embedding layer.
//!
//! MalConv-family detectors embed each input byte into a small dense
//! vector. The MPass optimizer exploits exactly this layer: perturbations
//! are optimized *in embedding space* and mapped back to discrete bytes via
//! nearest-neighbour lookup ([`Embedding::nearest_token`]), following the
//! paper's §III-D ("the perturbations are first lifted to feature vectors
//! using the embedding layer ... and get mapped back to discrete bytes").

use crate::param::ParamBuf;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A learned `vocab × dim` embedding table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Embedding {
    /// Embedding table parameters, row-major `[vocab][dim]`.
    pub table: ParamBuf,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// New table with uniform init.
    pub fn new<R: Rng + ?Sized>(vocab: usize, dim: usize, rng: &mut R) -> Self {
        Embedding { table: ParamBuf::uniform(vocab * dim, 0.5, rng), vocab, dim }
    }

    /// Reconstruct a table from serialized weights (e.g. a weight
    /// snapshot). Optimizer moments start fresh, which is exact for
    /// inference-only use.
    ///
    /// # Panics
    ///
    /// Panics if `table.len() != vocab * dim`.
    pub fn from_weights(vocab: usize, dim: usize, table: Vec<f32>) -> Self {
        assert_eq!(table.len(), vocab * dim, "embedding table shape mismatch");
        Embedding { table: ParamBuf::new(table), vocab, dim }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The embedding vector of `token`.
    ///
    /// # Panics
    ///
    /// Panics if `token ≥ vocab`.
    ///
    /// `#[inline]` because the batch embed loops call this once per input
    /// byte from other crates; without cross-crate inlining the call and
    /// its bounds assert dominate the gather.
    #[inline]
    pub fn vector(&self, token: usize) -> &[f32] {
        assert!(token < self.vocab, "token {token} out of vocabulary {}", self.vocab);
        &self.table.w[token * self.dim..(token + 1) * self.dim]
    }

    /// Embed a token sequence into a flat `[len × dim]` activation.
    pub fn forward(&self, tokens: &[usize]) -> Vec<f32> {
        let mut out = Vec::with_capacity(tokens.len() * self.dim);
        for &t in tokens {
            out.extend_from_slice(self.vector(t));
        }
        out
    }

    /// Zero the embedding row of `token` and its gradient accumulator.
    /// Calling this at init and again after every backward pass keeps the
    /// row frozen at the zero vector — PyTorch's `padding_idx` semantics.
    /// Without it, on inputs shorter than the model window the padding
    /// windows dominate a global max-pool and both classes' gradients
    /// cancel through them.
    pub fn freeze_zero_row(&mut self, token: usize) {
        assert!(token < self.vocab, "token {token} out of vocabulary {}", self.vocab);
        self.table.w[token * self.dim..(token + 1) * self.dim].fill(0.0);
        self.table.g[token * self.dim..(token + 1) * self.dim].fill(0.0);
    }

    /// Accumulate table gradients from the gradient w.r.t. the embedded
    /// activation (same layout as [`Embedding::forward`] output).
    pub fn backward(&mut self, tokens: &[usize], grad_out: &[f32]) {
        debug_assert_eq!(grad_out.len(), tokens.len() * self.dim);
        for (i, &t) in tokens.iter().enumerate() {
            let g = &grad_out[i * self.dim..(i + 1) * self.dim];
            let row = &mut self.table.g[t * self.dim..(t + 1) * self.dim];
            for (r, &gi) in row.iter_mut().zip(g) {
                *r += gi;
            }
        }
    }

    /// The token whose embedding is nearest (L2) to `vec`, optionally
    /// restricted to tokens `< limit` (MalConv uses vocab 257 where token
    /// 256 is padding, which must not be emitted as a byte).
    pub fn nearest_token(&self, vec: &[f32], limit: usize) -> usize {
        debug_assert_eq!(vec.len(), self.dim);
        let limit = limit.min(self.vocab);
        let mut best = 0;
        let mut best_d = f32::INFINITY;
        for t in 0..limit {
            let row = self.vector(t);
            let mut d = 0.0;
            for (a, b) in row.iter().zip(vec) {
                let diff = a - b;
                d += diff * diff;
            }
            if d < best_d {
                best_d = d;
                best = t;
            }
        }
        best
    }

    /// Squared L2 norms `‖e(t)‖²` for every token `t < limit`, for use
    /// with [`Embedding::nearest_token_with`]. Recompute after weights
    /// change (i.e. after training).
    pub fn squared_norms(&self, limit: usize) -> Vec<f32> {
        let limit = limit.min(self.vocab);
        (0..limit)
            .map(|t| self.vector(t).iter().map(|a| a * a).sum())
            .collect()
    }

    /// Fast variant of [`Embedding::nearest_token`] using precomputed
    /// squared norms: since `‖e(t) − z‖² = ‖e(t)‖² − 2⟨e(t), z⟩ + ‖z‖²`
    /// and `‖z‖²` is constant across candidates, the argmin of
    /// `norms[t] − 2⟨e(t), z⟩` is the nearest token. The candidate set is
    /// `norms.len()` (pass `squared_norms(limit)` to bound it).
    pub fn nearest_token_with(&self, norms: &[f32], vec: &[f32]) -> usize {
        debug_assert_eq!(vec.len(), self.dim);
        let limit = norms.len().min(self.vocab);
        let mut best = 0;
        let mut best_s = f32::INFINITY;
        for (t, &n) in norms[..limit].iter().enumerate() {
            let row = &self.table.w[t * self.dim..(t + 1) * self.dim];
            let mut dot = 0.0;
            for (a, b) in row.iter().zip(vec) {
                dot += a * b;
            }
            let s = n - 2.0 * dot;
            if s < best_s {
                best_s = s;
                best = t;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn emb() -> Embedding {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        Embedding::new(257, 4, &mut rng)
    }

    #[test]
    fn forward_concatenates_rows() {
        let e = emb();
        let out = e.forward(&[3, 5]);
        assert_eq!(out.len(), 8);
        assert_eq!(&out[..4], e.vector(3));
        assert_eq!(&out[4..], e.vector(5));
    }

    #[test]
    fn backward_accumulates_per_token() {
        let mut e = emb();
        e.table.zero_grad();
        let tokens = [7usize, 7, 9];
        let grad = vec![1.0f32; 12];
        e.backward(&tokens, &grad);
        // token 7 appears twice → gradient 2.0 per component.
        assert!(e.table.g[7 * 4..8 * 4].iter().all(|&g| (g - 2.0).abs() < 1e-6));
        assert!(e.table.g[9 * 4..10 * 4].iter().all(|&g| (g - 1.0).abs() < 1e-6));
        assert!(e.table.g[..4].iter().all(|&g| g == 0.0));
    }

    #[test]
    fn nearest_token_recovers_own_vector() {
        let e = emb();
        for t in [0usize, 100, 255] {
            let v = e.vector(t).to_vec();
            assert_eq!(e.nearest_token(&v, 256), t);
        }
    }

    #[test]
    fn nearest_token_respects_limit() {
        let e = emb();
        // The pad token (256) can never be returned with limit 256.
        let v = e.vector(256).to_vec();
        assert!(e.nearest_token(&v, 256) < 256);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn out_of_vocab_panics() {
        let e = emb();
        let _ = e.vector(300);
    }

    /// Property: the norm-table sweep returns the identical token to the
    /// naive squared-distance loop on random queries.
    #[test]
    fn nearest_token_with_matches_naive_loop() {
        let e = emb();
        let norms = e.squared_norms(256);
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        for _ in 0..200 {
            let v: Vec<f32> = (0..4).map(|_| rng.gen_range(-1.5..1.5)).collect();
            assert_eq!(e.nearest_token_with(&norms, &v), e.nearest_token(&v, 256));
        }
        // Exact token vectors must round-trip too.
        for t in [0usize, 42, 255] {
            let v = e.vector(t).to_vec();
            assert_eq!(e.nearest_token_with(&norms, &v), t);
        }
    }
}
