//! Binary cross-entropy with logits — the loss both for detector training
//! and for the attack objective ℒ_opt = ℒ(F(x + M·δ), y) of Eq. 3, where
//! the attack minimizes the loss toward the *benign* label.

use crate::activation::sigmoid;

/// Numerically stable `BCE(sigmoid(logit), target)`.
///
/// `target` is 1.0 for malicious, 0.0 for benign.
pub fn bce_with_logits(logit: f32, target: f32) -> f32 {
    // max(z,0) - z*t + ln(1 + e^{-|z|})
    logit.max(0.0) - logit * target + (1.0 + (-logit.abs()).exp()).ln()
}

/// d loss / d logit.
pub fn bce_with_logits_backward(logit: f32, target: f32) -> f32 {
    sigmoid(logit) - target
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confident_correct_is_near_zero() {
        assert!(bce_with_logits(10.0, 1.0) < 1e-3);
        assert!(bce_with_logits(-10.0, 0.0) < 1e-3);
    }

    #[test]
    fn confident_wrong_is_large() {
        assert!(bce_with_logits(10.0, 0.0) > 5.0);
        assert!(bce_with_logits(-10.0, 1.0) > 5.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        for &(z, t) in &[(0.5f32, 1.0f32), (-1.5, 0.0), (3.0, 0.0), (-2.0, 1.0)] {
            let eps = 1e-3;
            let num = (bce_with_logits(z + eps, t) - bce_with_logits(z - eps, t)) / (2.0 * eps);
            let ana = bce_with_logits_backward(z, t);
            assert!((num - ana).abs() < 1e-3, "z={z} t={t}");
        }
    }

    #[test]
    fn loss_is_nonnegative_and_stable_at_extremes() {
        for &z in &[-500.0f32, -50.0, 0.0, 50.0, 500.0] {
            for &t in &[0.0f32, 1.0] {
                let l = bce_with_logits(z, t);
                assert!(l.is_finite());
                assert!(l >= 0.0);
            }
        }
    }
}
