//! A small two-layer perceptron used as the neural component of the
//! simulated commercial AVs.

use crate::activation::{relu, relu_backward};
use crate::linear::Linear;
use crate::loss::{bce_with_logits, bce_with_logits_backward};
use crate::param::Adam;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// `in_dim → hidden → 1` binary classifier with ReLU hidden activation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    l1: Linear,
    l2: Linear,
}

impl Mlp {
    /// New MLP with random init.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, hidden: usize, rng: &mut R) -> Self {
        Mlp { l1: Linear::new(in_dim, hidden, rng), l2: Linear::new(hidden, 1, rng) }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.l1.in_dim()
    }

    /// Raw logit for one feature vector.
    pub fn logit(&self, x: &[f32]) -> f32 {
        let h = relu(&self.l1.forward(x));
        self.l2.forward(&h)[0]
    }

    /// Malicious probability.
    pub fn score(&self, x: &[f32]) -> f32 {
        crate::activation::sigmoid(self.logit(x))
    }

    /// One SGD/Adam epoch over `(features, label)` pairs in the given
    /// order; returns mean loss. Labels: 1.0 malicious, 0.0 benign.
    pub fn train_epoch(&mut self, data: &[(Vec<f32>, f32)], adam: &Adam) -> f32 {
        let mut total = 0.0;
        for (x, y) in data {
            let a1 = self.l1.forward(x);
            let h = relu(&a1);
            let logit = self.l2.forward(&h)[0];
            total += bce_with_logits(logit, *y);
            let dlogit = bce_with_logits_backward(logit, *y);
            let dh = self.l2.backward(&h, &[dlogit]);
            let da1 = relu_backward(&a1, &dh);
            let _ = self.l1.backward(x, &da1);
            adam.step(&mut self.l1.weight);
            adam.step(&mut self.l1.bias);
            adam.step(&mut self.l2.weight);
            adam.step(&mut self.l2.bias);
        }
        total / data.len().max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn learns_linearly_separable_data() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut mlp = Mlp::new(2, 8, &mut rng);
        let mut data = Vec::new();
        for _ in 0..200 {
            let x1: f32 = rng.gen_range(-1.0..1.0);
            let x2: f32 = rng.gen_range(-1.0..1.0);
            let y = if x1 + x2 > 0.0 { 1.0 } else { 0.0 };
            data.push((vec![x1, x2], y));
        }
        let adam = Adam::with_lr(0.01);
        for _ in 0..30 {
            mlp.train_epoch(&data, &adam);
        }
        let correct = data
            .iter()
            .filter(|(x, y)| (mlp.score(x) > 0.5) == (*y > 0.5))
            .count();
        assert!(correct as f32 / data.len() as f32 > 0.95, "accuracy {correct}/200");
    }

    #[test]
    fn learns_xor() {
        // Nonlinear problem: requires the hidden layer to matter.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut mlp = Mlp::new(2, 16, &mut rng);
        let data: Vec<(Vec<f32>, f32)> = vec![
            (vec![0.0, 0.0], 0.0),
            (vec![0.0, 1.0], 1.0),
            (vec![1.0, 0.0], 1.0),
            (vec![1.0, 1.0], 0.0),
        ];
        let adam = Adam::with_lr(0.02);
        for _ in 0..800 {
            mlp.train_epoch(&data, &adam);
        }
        for (x, y) in &data {
            assert_eq!(mlp.score(x) > 0.5, *y > 0.5, "failed at {x:?}");
        }
    }

    #[test]
    fn score_is_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mlp = Mlp::new(3, 4, &mut rng);
        let s = mlp.score(&[0.5, -0.5, 1.0]);
        assert!((0.0..=1.0).contains(&s));
    }
}
