//! Evaluation metrics for binary detectors.

/// Fraction of `(score, label)` pairs classified correctly at `threshold`.
///
/// Labels are 1.0 (malicious) / 0.0 (benign). Empty input yields 0.0.
pub fn accuracy(pairs: &[(f32, f32)], threshold: f32) -> f32 {
    if pairs.is_empty() {
        return 0.0;
    }
    let correct = pairs
        .iter()
        .filter(|(score, label)| (*score > threshold) == (*label > 0.5))
        .count();
    correct as f32 / pairs.len() as f32
}

/// Area under the ROC curve via the rank-sum (Mann–Whitney) formulation.
///
/// Returns 0.5 when either class is absent (no ranking information).
pub fn auc(pairs: &[(f32, f32)]) -> f32 {
    let pos: Vec<f32> =
        pairs.iter().filter(|(_, l)| *l > 0.5).map(|(s, _)| *s).collect();
    let neg: Vec<f32> =
        pairs.iter().filter(|(_, l)| *l <= 0.5).map(|(s, _)| *s).collect();
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0f64;
    for &p in &pos {
        for &n in &neg {
            if p > n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    (wins / (pos.len() as f64 * neg.len() as f64)) as f32
}

/// True-positive rate at `threshold` (detection rate on malicious items).
pub fn detection_rate(pairs: &[(f32, f32)], threshold: f32) -> f32 {
    let pos: Vec<&(f32, f32)> = pairs.iter().filter(|(_, l)| *l > 0.5).collect();
    if pos.is_empty() {
        return 0.0;
    }
    pos.iter().filter(|(s, _)| *s > threshold).count() as f32 / pos.len() as f32
}

/// False-positive rate at `threshold`.
pub fn false_positive_rate(pairs: &[(f32, f32)], threshold: f32) -> f32 {
    let neg: Vec<&(f32, f32)> = pairs.iter().filter(|(_, l)| *l <= 0.5).collect();
    if neg.is_empty() {
        return 0.0;
    }
    neg.iter().filter(|(s, _)| *s > threshold).count() as f32 / neg.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let pairs = vec![(0.9, 1.0), (0.8, 1.0), (0.1, 0.0), (0.2, 0.0)];
        assert_eq!(accuracy(&pairs, 0.5), 1.0);
        assert_eq!(auc(&pairs), 1.0);
        assert_eq!(detection_rate(&pairs, 0.5), 1.0);
        assert_eq!(false_positive_rate(&pairs, 0.5), 0.0);
    }

    #[test]
    fn inverted_classifier() {
        let pairs = vec![(0.1, 1.0), (0.9, 0.0)];
        assert_eq!(accuracy(&pairs, 0.5), 0.0);
        assert_eq!(auc(&pairs), 0.0);
    }

    #[test]
    fn random_ties_give_half_auc() {
        let pairs = vec![(0.5, 1.0), (0.5, 0.0), (0.5, 1.0), (0.5, 0.0)];
        assert!((auc(&pairs) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn single_class_degenerates() {
        let pairs = vec![(0.9, 1.0), (0.7, 1.0)];
        assert_eq!(auc(&pairs), 0.5);
        assert_eq!(false_positive_rate(&pairs, 0.5), 0.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(accuracy(&[], 0.5), 0.0);
        assert_eq!(auc(&[]), 0.5);
        assert_eq!(detection_rate(&[], 0.5), 0.0);
    }
}
