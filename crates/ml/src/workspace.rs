//! Reusable inference scratch: the [`Workspace`] buffer pool and the
//! [`Cached`] wrapper for derived (weight-dependent) lookup tables.
//!
//! The attack loop calls gradient and scoring paths thousands of times per
//! sample; allocating activation buffers (or worse, cloning a model for
//! its gradient accumulators) on every call dominates the wall-clock. A
//! `Workspace` is a per-thread bag of recycled `Vec`s: hot paths `take` a
//! buffer, use it, and `give` it back, so after warm-up no call allocates.

use serde::{Deserialize, Error, Serialize, Value};
use std::sync::OnceLock;

/// A pool of reusable scratch buffers.
///
/// Buffers handed out by [`Workspace::take_f32`] / [`Workspace::take_idx`]
/// come back zero-filled at the requested length but keep their previous
/// capacity, so steady-state use performs no heap allocation. Return
/// buffers with the matching `give_*` when done; failing to do so is not
/// unsafe, it merely re-allocates next time.
///
/// A `Workspace` is deliberately `!Sync`-by-use: each thread (engine
/// shard, optimizer session) owns its own.
#[derive(Debug, Default)]
pub struct Workspace {
    f32s: Vec<Vec<f32>>,
    idxs: Vec<Vec<usize>>,
}

impl Workspace {
    /// A zero-filled `f32` buffer of length `len` (recycled capacity).
    pub fn take_f32(&mut self, len: usize) -> Vec<f32> {
        let mut v = self.f32s.pop().unwrap_or_default();
        v.clear();
        v.resize(len, 0.0);
        v
    }

    /// Return an `f32` buffer to the pool.
    pub fn give_f32(&mut self, v: Vec<f32>) {
        self.f32s.push(v);
    }

    /// A zero-filled index buffer of length `len` (recycled capacity).
    pub fn take_idx(&mut self, len: usize) -> Vec<usize> {
        let mut v = self.idxs.pop().unwrap_or_default();
        v.clear();
        v.resize(len, 0);
        v
    }

    /// Return an index buffer to the pool.
    pub fn give_idx(&mut self, v: Vec<usize>) {
        self.idxs.push(v);
    }

    /// Number of pooled buffers currently at rest (diagnostic).
    pub fn pooled(&self) -> usize {
        self.f32s.len() + self.idxs.len()
    }
}

/// A lazily built, weight-derived cache (token-indexed conv tables, norm
/// tables) attached to a model.
///
/// Contract: the cached value is a pure function of the owner's weights.
/// Owners must call [`Cached::invalidate`] whenever weights change (i.e.
/// after training steps); readers call [`Cached::get_or_build`]. The cache
/// is deliberately excluded from comparison, serialization and cloning —
/// a clone or a deserialized model rebuilds on first use, which keeps the
/// invariant "tables always match weights" impossible to violate through
/// persistence.
pub struct Cached<T>(OnceLock<T>);

impl<T> Cached<T> {
    /// An empty (unbuilt) cache.
    pub fn new() -> Self {
        Cached(OnceLock::new())
    }

    /// The cached value, building it with `build` on first access.
    pub fn get_or_build(&self, build: impl FnOnce() -> T) -> &T {
        self.0.get_or_init(build)
    }

    /// Drop the cached value; the next access rebuilds it.
    pub fn invalidate(&mut self) {
        self.0 = OnceLock::new();
    }

    /// Whether the cache currently holds a value.
    pub fn is_built(&self) -> bool {
        self.0.get().is_some()
    }
}

impl<T> Default for Cached<T> {
    fn default() -> Self {
        Cached::new()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Cached<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.get() {
            Some(_) => f.write_str("Cached(built)"),
            None => f.write_str("Cached(empty)"),
        }
    }
}

/// Clones start empty: the clone rebuilds from its own (identical) weights.
impl<T> Clone for Cached<T> {
    fn clone(&self) -> Self {
        Cached::new()
    }
}

/// Caches never participate in equality: two models are equal iff their
/// weights are, regardless of which has materialized its tables.
impl<T> PartialEq for Cached<T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

/// Serialized as `null`; deserializes to an empty cache (rebuild on use).
impl<T> Serialize for Cached<T> {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T> Deserialize for Cached<T> {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(Cached::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycles_capacity() {
        let mut ws = Workspace::default();
        let mut v = ws.take_f32(64);
        v[0] = 1.0;
        let cap = v.capacity();
        ws.give_f32(v);
        let v2 = ws.take_f32(32);
        assert!(v2.capacity() >= 32 && cap >= 64);
        assert!(v2.iter().all(|&x| x == 0.0), "recycled buffer not zeroed");
    }

    #[test]
    fn cached_builds_once_and_invalidates() {
        let mut c: Cached<u32> = Cached::new();
        assert!(!c.is_built());
        assert_eq!(*c.get_or_build(|| 7), 7);
        assert_eq!(*c.get_or_build(|| 9), 7, "second build must not run");
        c.invalidate();
        assert_eq!(*c.get_or_build(|| 9), 9);
    }

    #[test]
    fn cached_clone_is_empty() {
        let c: Cached<u32> = Cached::new();
        c.get_or_build(|| 3);
        assert!(!c.clone().is_built());
    }
}
