//! Element-wise activations with explicit backward passes.

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Gradient of sigmoid given its *output* `y = sigmoid(x)`.
pub fn sigmoid_backward(y: f32, grad_out: f32) -> f32 {
    grad_out * y * (1.0 - y)
}

/// Rectified linear unit applied element-wise, returning a new vector.
pub fn relu(x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| v.max(0.0)).collect()
}

/// Backward of [`relu`]: passes gradient where the input was positive.
pub fn relu_backward(x: &[f32], grad_out: &[f32]) -> Vec<f32> {
    x.iter().zip(grad_out).map(|(&xi, &g)| if xi > 0.0 { g } else { 0.0 }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_range_and_midpoint() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
        // Numerically stable at extremes.
        assert!(sigmoid(-100.0) >= 0.0);
        assert!(sigmoid(100.0) <= 1.0);
    }

    #[test]
    fn sigmoid_gradient_matches_finite_difference() {
        for &x in &[-2.0f32, -0.3, 0.0, 0.7, 3.0] {
            let eps = 1e-3;
            let num = (sigmoid(x + eps) - sigmoid(x - eps)) / (2.0 * eps);
            let ana = sigmoid_backward(sigmoid(x), 1.0);
            assert!((num - ana).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    fn relu_and_backward() {
        let x = vec![-1.0, 0.0, 2.0];
        assert_eq!(relu(&x), vec![0.0, 0.0, 2.0]);
        assert_eq!(relu_backward(&x, &[1.0, 1.0, 1.0]), vec![0.0, 0.0, 1.0]);
    }
}
