//! One-dimensional convolution over embedded byte sequences, with backprop
//! to weights *and inputs* (the input gradient is what the ensemble
//! transfer attack differentiates through).

use crate::param::ParamBuf;
use crate::simd;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A 1-D convolution `in_ch → out_ch` with kernel width `kernel` and hop
/// `stride`, over an input laid out `[position][in_ch]` (row-major flat).
///
/// Output layout is `[window][out_ch]` where
/// `window = (len - kernel) / stride + 1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv1d {
    /// Kernel weights, `[out_ch][kernel][in_ch]` flattened.
    pub weight: ParamBuf,
    /// Per-output-channel bias.
    pub bias: ParamBuf,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
}

impl Conv1d {
    /// New layer with He-style uniform init.
    pub fn new<R: Rng + ?Sized>(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        rng: &mut R,
    ) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        let scale = (2.0 / (in_ch * kernel) as f32).sqrt();
        Conv1d {
            weight: ParamBuf::uniform(out_ch * kernel * in_ch, scale, rng),
            bias: ParamBuf::new(vec![0.0; out_ch]),
            in_ch,
            out_ch,
            kernel,
            stride,
        }
    }

    /// Reconstruct a layer from serialized weights (e.g. a weight
    /// snapshot). Optimizer moments start fresh, which is exact for
    /// inference-only use.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent shapes or a zero kernel/stride.
    pub fn from_weights(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        weight: Vec<f32>,
        bias: Vec<f32>,
    ) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        assert_eq!(weight.len(), out_ch * kernel * in_ch, "conv weight shape mismatch");
        assert_eq!(bias.len(), out_ch, "conv bias shape mismatch");
        Conv1d {
            weight: ParamBuf::new(weight),
            bias: ParamBuf::new(bias),
            in_ch,
            out_ch,
            kernel,
            stride,
        }
    }

    /// Output channel count.
    pub fn out_ch(&self) -> usize {
        self.out_ch
    }

    /// Input channel count.
    pub fn in_ch(&self) -> usize {
        self.in_ch
    }

    /// Kernel width.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Window hop.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of output windows for an input of `positions` rows.
    pub fn windows(&self, positions: usize) -> usize {
        if positions < self.kernel {
            0
        } else {
            (positions - self.kernel) / self.stride + 1
        }
    }

    /// Recompute a single output window `w` of [`Conv1d::forward`] into
    /// `out_row` (`out_ch` wide), using bit-identical per-window
    /// arithmetic — patching window `w` of a cached forward output with
    /// this equals rerunning the full forward.
    ///
    /// # Panics
    ///
    /// Panics when the window or `out_row` shape is out of range.
    pub fn forward_window_into(&self, x: &[f32], w: usize, out_row: &mut [f32]) {
        assert_eq!(x.len() % self.in_ch, 0, "input not a whole number of positions");
        assert!(w < self.windows(x.len() / self.in_ch), "window {w} out of range");
        assert_eq!(out_row.len(), self.out_ch, "output row width mismatch");
        let k_in = self.kernel * self.in_ch;
        let start = w * self.stride * self.in_ch;
        let patch = &x[start..start + k_in];
        for (oc, o) in out_row.iter_mut().enumerate() {
            let kw = &self.weight.w[oc * k_in..(oc + 1) * k_in];
            let mut acc = self.bias.w[oc];
            for (a, b) in kw.iter().zip(patch) {
                acc += a * b;
            }
            *o = acc;
        }
    }

    /// The output windows whose receptive field overlaps input positions
    /// `[lo, hi)`, for an input of `positions` rows.
    pub fn dirty_windows(
        &self,
        positions: usize,
        lo: usize,
        hi: usize,
    ) -> std::ops::Range<usize> {
        crate::table::dirty_window_span(self.kernel, self.stride, self.windows(positions), lo, hi)
    }

    /// Component-major (transposed) copy of the kernel weights for the
    /// vectorized window kernel — see [`ConvXposed`]. Building the copy
    /// costs `kernel·in_ch·out_ch` writes, amortized over however many
    /// windows (or batch items) the caller pushes through it.
    pub fn transposed(&self) -> ConvXposed<'_> {
        let k_in = self.kernel * self.in_ch;
        let mut wt = vec![0.0f32; k_in * self.out_ch];
        for oc in 0..self.out_ch {
            let row = &self.weight.w[oc * k_in..(oc + 1) * k_in];
            for (i, &v) in row.iter().enumerate() {
                wt[i * self.out_ch + oc] = v;
            }
        }
        ConvXposed { conv: self, wt }
    }

    /// Forward pass. `x` is `[positions × in_ch]` flat; returns
    /// `[windows × out_ch]` flat.
    ///
    /// Runs through the transposed lane-chunked kernel ([`ConvXposed`]),
    /// which is bit-identical to [`Conv1d::forward_window_into`] per
    /// window — callers patching cached outputs with either kernel see
    /// the same numbers.
    ///
    /// # Panics
    ///
    /// Panics when `x.len()` is not a multiple of `in_ch`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len() % self.in_ch, 0, "input not a whole number of positions");
        let positions = x.len() / self.in_ch;
        let windows = self.windows(positions);
        let mut out = vec![0.0f32; windows * self.out_ch];
        let xp = self.transposed();
        for w in 0..windows {
            let (lo, hi) = (w * self.out_ch, (w + 1) * self.out_ch);
            xp.forward_window_into(x, w, &mut out[lo..hi]);
        }
        out
    }

    /// Backward pass: given `x` and the gradient w.r.t. the output,
    /// accumulate weight/bias gradients and return the gradient w.r.t. `x`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len()` is not a multiple of `in_ch` (a ragged input
    /// would silently truncate the trailing partial position).
    pub fn backward(&mut self, x: &[f32], grad_out: &[f32]) -> Vec<f32> {
        assert_eq!(x.len() % self.in_ch, 0, "input not a whole number of positions");
        let positions = x.len() / self.in_ch;
        let windows = self.windows(positions);
        debug_assert_eq!(grad_out.len(), windows * self.out_ch);
        let mut grad_x = vec![0.0f32; x.len()];
        let k_in = self.kernel * self.in_ch;
        for w in 0..windows {
            let start = w * self.stride * self.in_ch;
            let patch = &x[start..start + k_in];
            let g_row = &grad_out[w * self.out_ch..(w + 1) * self.out_ch];
            for (oc, &g) in g_row.iter().enumerate() {
                if g == 0.0 {
                    continue;
                }
                self.bias.g[oc] += g;
                let kw = &self.weight.w[oc * k_in..(oc + 1) * k_in];
                let kg = &mut self.weight.g[oc * k_in..(oc + 1) * k_in];
                let gx = &mut grad_x[start..start + k_in];
                simd::axpy(g, patch, kg);
                simd::axpy(g, kw, gx);
            }
        }
        grad_x
    }

    /// Input-gradient-only backward: accumulate `∂L/∂x` into `grad_x`
    /// without touching parameter gradients (and therefore without needing
    /// `&mut self` or the forward input `x` — the input gradient depends
    /// only on the weights). This is the attack-loop path: the optimizer
    /// differentiates through a *frozen* model, so cloning it for scratch
    /// parameter accumulators is pure waste.
    ///
    /// `grad_x` must be `[positions × in_ch]` and is accumulated into
    /// (callers zero it first, typically via a recycled workspace buffer).
    ///
    /// # Panics
    ///
    /// Panics when `grad_x` is ragged or `grad_out` does not match the
    /// window count implied by `grad_x`.
    pub fn backward_input(&self, grad_out: &[f32], grad_x: &mut [f32]) {
        assert_eq!(grad_x.len() % self.in_ch, 0, "input not a whole number of positions");
        let positions = grad_x.len() / self.in_ch;
        let windows = self.windows(positions);
        assert_eq!(grad_out.len(), windows * self.out_ch, "output gradient shape mismatch");
        let k_in = self.kernel * self.in_ch;
        for w in 0..windows {
            let start = w * self.stride * self.in_ch;
            let g_row = &grad_out[w * self.out_ch..(w + 1) * self.out_ch];
            let gx = &mut grad_x[start..start + k_in];
            for (oc, &g) in g_row.iter().enumerate() {
                if g == 0.0 {
                    continue;
                }
                let kw = &self.weight.w[oc * k_in..(oc + 1) * k_in];
                simd::axpy(g, kw, gx);
            }
        }
    }
}

/// Component-major view of a [`Conv1d`]: the weights copied into
/// `wt[i][oc]` order for flat patch index `i ∈ 0..kernel·in_ch`, so the
/// window kernel streams one input component against a contiguous row of
/// per-output-channel weights ([`simd::axpy`]).
///
/// Numerics: for each output channel the accumulation visits patch
/// components in the same ascending order as the scalar
/// [`Conv1d::forward_window_into`] loop — only the operand order of each
/// multiplication differs, and IEEE-754 multiplication is commutative —
/// so the result is **bit-identical** to the scalar kernel while the
/// inner loop runs across output channels and autovectorizes.
#[derive(Debug)]
pub struct ConvXposed<'a> {
    conv: &'a Conv1d,
    /// Transposed weights, `[kernel·in_ch][out_ch]` flattened.
    wt: Vec<f32>,
}

impl ConvXposed<'_> {
    /// Compute output window `w` into `out_row` (`out_ch` wide) —
    /// bit-identical to [`Conv1d::forward_window_into`].
    ///
    /// # Panics
    ///
    /// Panics when the window or `out_row` shape is out of range.
    pub fn forward_window_into(&self, x: &[f32], w: usize, out_row: &mut [f32]) {
        let c = self.conv;
        assert_eq!(x.len() % c.in_ch, 0, "input not a whole number of positions");
        assert!(w < c.windows(x.len() / c.in_ch), "window {w} out of range");
        assert_eq!(out_row.len(), c.out_ch, "output row width mismatch");
        let k_in = c.kernel * c.in_ch;
        let start = w * c.stride * c.in_ch;
        let patch = &x[start..start + k_in];
        out_row.copy_from_slice(&c.bias.w);
        // Four patch components per pass (bit-identical fusion — see
        // `simd::axpy4`), plain axpy for the ragged tail.
        let quads = k_in / 4 * 4;
        for i in (0..quads).step_by(4) {
            let a = [patch[i], patch[i + 1], patch[i + 2], patch[i + 3]];
            simd::axpy4(a, &self.wt[i * c.out_ch..(i + 4) * c.out_ch], out_row);
        }
        for (i, &xi) in patch.iter().enumerate().skip(quads) {
            simd::axpy(xi, &self.wt[i * c.out_ch..(i + 1) * c.out_ch], out_row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn conv(in_ch: usize, out_ch: usize, kernel: usize, stride: usize) -> Conv1d {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        Conv1d::new(in_ch, out_ch, kernel, stride, &mut rng)
    }

    #[test]
    fn window_count() {
        let c = conv(2, 3, 4, 2);
        assert_eq!(c.windows(4), 1);
        assert_eq!(c.windows(5), 1);
        assert_eq!(c.windows(6), 2);
        assert_eq!(c.windows(3), 0);
    }

    #[test]
    fn forward_shape() {
        let c = conv(2, 3, 4, 2);
        let x = vec![0.1f32; 10 * 2];
        let y = c.forward(&x);
        assert_eq!(y.len(), c.windows(10) * 3);
    }

    #[test]
    fn identity_like_kernel_detects_position() {
        // One input channel, one output channel, kernel 1, stride 1, weight 1.
        let mut c = conv(1, 1, 1, 1);
        c.weight.w[0] = 1.0;
        c.bias.w[0] = 0.0;
        let x = vec![3.0, -1.0, 2.5];
        assert_eq!(c.forward(&x), vec![3.0, -1.0, 2.5]);
    }

    /// Finite-difference gradient check against the analytic backward.
    #[test]
    fn gradient_check_weights_and_input() {
        let mut c = conv(3, 2, 2, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let x: Vec<f32> = (0..5 * 3).map(|_| rng.gen_range(-1.0..1.0)).collect();
        // Scalar objective: sum of outputs.
        let objective = |c: &Conv1d, x: &[f32]| -> f32 { c.forward(x).iter().sum() };
        let y = c.forward(&x);
        let grad_out = vec![1.0f32; y.len()];
        c.weight.zero_grad();
        c.bias.zero_grad();
        let grad_x = c.backward(&x, &grad_out);

        let eps = 1e-3;
        // Check a handful of weight entries.
        for idx in [0usize, 3, 7, 11] {
            let mut cp = c.clone();
            cp.weight.w[idx] += eps;
            let mut cm = c.clone();
            cm.weight.w[idx] -= eps;
            let num = (objective(&cp, &x) - objective(&cm, &x)) / (2.0 * eps);
            assert!(
                (num - c.weight.g[idx]).abs() < 1e-2,
                "weight {idx}: numeric {num} vs analytic {}",
                c.weight.g[idx]
            );
        }
        // Check input entries.
        for idx in [0usize, 4, 9, 14] {
            let mut xp = x.clone();
            xp[idx] += eps;
            let mut xm = x.clone();
            xm[idx] -= eps;
            let num = (objective(&c, &xp) - objective(&c, &xm)) / (2.0 * eps);
            assert!(
                (num - grad_x[idx]).abs() < 1e-2,
                "input {idx}: numeric {num} vs analytic {}",
                grad_x[idx]
            );
        }
        // Bias gradient of a sum objective is the window count.
        let windows = c.windows(5) as f32;
        assert!(c.bias.g.iter().all(|&g| (g - windows).abs() < 1e-4));
    }

    #[test]
    #[should_panic(expected = "whole number of positions")]
    fn ragged_input_panics() {
        let c = conv(3, 1, 1, 1);
        let _ = c.forward(&[0.0; 7]);
    }

    /// Regression: `backward` used to silently truncate ragged inputs via
    /// integer division instead of rejecting them like `forward` does.
    #[test]
    #[should_panic(expected = "whole number of positions")]
    fn ragged_backward_panics() {
        let mut c = conv(3, 1, 1, 1);
        let _ = c.backward(&[0.0; 7], &[1.0; 2]);
    }

    /// The transposed lane-chunked kernel must be bit-identical to the
    /// scalar reference across shapes that exercise lane tails (out_ch
    /// not a multiple of 8) and strides.
    #[test]
    fn transposed_kernel_is_bit_identical_to_scalar() {
        let mut rng = ChaCha8Rng::seed_from_u64(29);
        for (in_ch, out_ch, kernel, stride, positions) in
            [(1, 1, 1, 1, 4), (2, 3, 4, 2, 11), (4, 7, 3, 1, 9), (8, 16, 5, 3, 20), (3, 9, 2, 2, 8)]
        {
            let mut c = conv(in_ch, out_ch, kernel, stride);
            for w in c.weight.w.iter_mut() {
                *w = rng.gen_range(-1.0..1.0);
            }
            for b in c.bias.w.iter_mut() {
                *b = rng.gen_range(-0.5..0.5);
            }
            let x: Vec<f32> =
                (0..positions * in_ch).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let xp = c.transposed();
            let mut scalar = vec![0.0f32; out_ch];
            let mut lanes = vec![0.0f32; out_ch];
            for w in 0..c.windows(positions) {
                c.forward_window_into(&x, w, &mut scalar);
                xp.forward_window_into(&x, w, &mut lanes);
                for (s, l) in scalar.iter().zip(&lanes) {
                    assert_eq!(s.to_bits(), l.to_bits(), "shape {in_ch}x{out_ch}k{kernel}");
                }
            }
        }
    }

    #[test]
    fn backward_input_matches_full_backward() {
        let mut c = conv(3, 2, 2, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let x: Vec<f32> = (0..9 * 3).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y = c.forward(&x);
        // Sparse gradient, like a max-pool scatter.
        let mut grad_out = vec![0.0f32; y.len()];
        grad_out[1] = 2.0;
        grad_out[4] = -0.5;
        c.weight.zero_grad();
        c.bias.zero_grad();
        let full = c.backward(&x, &grad_out);
        let mut fast = vec![0.0f32; x.len()];
        c.backward_input(&grad_out, &mut fast);
        assert_eq!(full, fast);
    }
}
