//! Explicit lane-chunked f32/i8 kernels that autovectorize.
//!
//! The hot inference loops (conv windows, dense heads, token-table
//! accumulation, quantized dot products) all reduce to three primitive
//! shapes. Writing them once with `chunks_exact(LANES)` bodies over
//! fixed-size lane groups gives LLVM a trip count it can turn into
//! packed SSE/AVX arithmetic, with a scalar tail for ragged lengths —
//! no `std::simd` (unstable) and no unsafe.
//!
//! Numerics contract: [`axpy`] and [`add_assign`] are element-wise, so
//! they are **bit-identical** to the naive loops they replace — chunking
//! never re-associates a sum that lands in one output element. [`dot`]
//! *does* re-associate (eight interleaved partial sums); it is reserved
//! for paths with tolerance-based gates, never for the bit-exact score
//! paths. The integer kernels are exact by nature.

/// Lane-group width the chunked loops are written for. Eight f32 lanes
/// fill one AVX register (or two SSE registers, which LLVM still packs).
pub const LANES: usize = 8;

/// `y[i] += a * x[i]` — element-wise, bit-identical to the scalar loop.
///
/// This is the workhorse of the transposed conv/linear kernels: the
/// caller streams one input component `a` against a contiguous row of
/// per-output-channel weights `x`, accumulating into the output row `y`.
///
/// # Panics
///
/// Panics when `x` and `y` differ in length.
#[inline]
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    let split = x.len() - x.len() % LANES;
    let (x_main, x_tail) = x.split_at(split);
    let (y_main, y_tail) = y.split_at_mut(split);
    for (yc, xc) in y_main.chunks_exact_mut(LANES).zip(x_main.chunks_exact(LANES)) {
        for i in 0..LANES {
            yc[i] += a * xc[i];
        }
    }
    for (yi, &xi) in y_tail.iter_mut().zip(x_tail) {
        *yi += a * xi;
    }
}

/// Four fused axpy passes over four consecutive rows of `x`:
/// `y[i] += a[0]·x₀[i]; y[i] += a[1]·x₁[i]; y[i] += a[2]·x₂[i];
/// y[i] += a[3]·x₃[i]` where `xⱼ = x[j·y.len()..(j+1)·y.len()]`.
///
/// Each output element receives the same four additions in the same
/// order as four sequential [`axpy`] calls — **bit-identical** — but the
/// output chunk is loaded and stored once instead of four times. In the
/// transposed conv/linear kernels the output-row traffic dominates the
/// weight traffic 2:1, so this fusion is where most of the window-kernel
/// time goes.
///
/// # Panics
///
/// Panics when `x.len() != 4 * y.len()`.
#[inline]
pub fn axpy4(a: [f32; 4], x: &[f32], y: &mut [f32]) {
    let n = y.len();
    assert_eq!(x.len(), 4 * n, "axpy4 expects four rows of y.len()");
    let (x0, rest) = x.split_at(n);
    let (x1, rest) = rest.split_at(n);
    let (x2, x3) = rest.split_at(n);
    let split = n - n % LANES;
    for c in 0..split / LANES {
        let base = c * LANES;
        let yc = &mut y[base..base + LANES];
        let c0 = &x0[base..base + LANES];
        let c1 = &x1[base..base + LANES];
        let c2 = &x2[base..base + LANES];
        let c3 = &x3[base..base + LANES];
        for i in 0..LANES {
            let mut v = yc[i];
            v += a[0] * c0[i];
            v += a[1] * c1[i];
            v += a[2] * c2[i];
            v += a[3] * c3[i];
            yc[i] = v;
        }
    }
    for i in split..n {
        let mut v = y[i];
        v += a[0] * x0[i];
        v += a[1] * x1[i];
        v += a[2] * x2[i];
        v += a[3] * x3[i];
        y[i] = v;
    }
}

/// `y[i] += x[i]` — element-wise, bit-identical to the scalar loop.
///
/// # Panics
///
/// Panics when `x` and `y` differ in length.
#[inline]
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    assert_eq!(x.len(), y.len(), "add_assign length mismatch");
    let split = x.len() - x.len() % LANES;
    let (x_main, x_tail) = x.split_at(split);
    let (y_main, y_tail) = y.split_at_mut(split);
    for (yc, xc) in y_main.chunks_exact_mut(LANES).zip(x_main.chunks_exact(LANES)) {
        for i in 0..LANES {
            yc[i] += xc[i];
        }
    }
    for (yi, &xi) in y_tail.iter_mut().zip(x_tail) {
        *yi += xi;
    }
}

/// `Σ x[i] · y[i]` with eight interleaved partial sums and a scalar tail.
///
/// **Re-associates** the summation relative to a left-to-right loop, so
/// results differ from a naive dot in the last bits. Use only behind
/// tolerance-gated paths (quantization calibration, benchmarks) — the
/// bit-exact inference kernels use [`axpy`] instead.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    let mut acc = [0.0f32; LANES];
    let split = x.len() - x.len() % LANES;
    for (xc, yc) in x[..split].chunks_exact(LANES).zip(y[..split].chunks_exact(LANES)) {
        for i in 0..LANES {
            acc[i] += xc[i] * yc[i];
        }
    }
    let mut tail = 0.0f32;
    for (&xi, &yi) in x[split..].iter().zip(&y[split..]) {
        tail += xi * yi;
    }
    // Fixed-order horizontal reduction keeps the function deterministic.
    let mut total = tail;
    for a in acc {
        total += a;
    }
    total
}

/// `Σ x[i] · y[i]` over i8 operands with i32 lane accumulators — exact
/// (integer arithmetic never rounds), safe from overflow for lengths up
/// to `i32::MAX / (128·128)` ≈ 131 k elements, far past any kernel here.
#[inline]
pub fn dot_i8(x: &[i8], y: &[i8]) -> i32 {
    assert_eq!(x.len(), y.len(), "dot_i8 length mismatch");
    let mut acc = [0i32; LANES];
    let split = x.len() - x.len() % LANES;
    for (xc, yc) in x[..split].chunks_exact(LANES).zip(y[..split].chunks_exact(LANES)) {
        for i in 0..LANES {
            acc[i] += i32::from(xc[i]) * i32::from(yc[i]);
        }
    }
    let mut total = 0i32;
    for (&xi, &yi) in x[split..].iter().zip(&y[split..]) {
        total += i32::from(xi) * i32::from(yi);
    }
    for a in acc {
        total += a;
    }
    total
}

/// `acc[i] += row[i]` over an i8 row with i32 accumulators — the
/// quantized token-table accumulation kernel. Exact.
///
/// # Panics
///
/// Panics when `row` and `acc` differ in length.
#[inline]
pub fn add_assign_i8(acc: &mut [i32], row: &[i8]) {
    assert_eq!(row.len(), acc.len(), "add_assign_i8 length mismatch");
    let split = row.len() - row.len() % LANES;
    let (r_main, r_tail) = row.split_at(split);
    let (a_main, a_tail) = acc.split_at_mut(split);
    for (ac, rc) in a_main.chunks_exact_mut(LANES).zip(r_main.chunks_exact(LANES)) {
        for i in 0..LANES {
            ac[i] += i32::from(rc[i]);
        }
    }
    for (ai, &ri) in a_tail.iter_mut().zip(r_tail) {
        *ai += i32::from(ri);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn randvec(rng: &mut ChaCha8Rng, n: usize) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect()
    }

    /// axpy must be bit-identical to the scalar loop for every length
    /// around the lane boundary.
    #[test]
    fn axpy_is_bit_identical_to_scalar() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for n in [0usize, 1, 7, 8, 9, 16, 17, 63, 64, 100] {
            let x = randvec(&mut rng, n);
            let base = randvec(&mut rng, n);
            let a = rng.gen_range(-1.5..1.5f32);
            let mut fast = base.clone();
            axpy(a, &x, &mut fast);
            let mut slow = base.clone();
            for (yi, &xi) in slow.iter_mut().zip(&x) {
                *yi += a * xi;
            }
            for (f, s) in fast.iter().zip(&slow) {
                assert_eq!(f.to_bits(), s.to_bits(), "n={n}");
            }
        }
    }

    /// axpy4 must be bit-identical to four sequential axpy calls across
    /// lane-boundary lengths.
    #[test]
    fn axpy4_is_bit_identical_to_four_axpys() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for n in [1usize, 7, 8, 9, 16, 17, 63, 64, 100] {
            let rows = randvec(&mut rng, 4 * n);
            let base = randvec(&mut rng, n);
            let a = [
                rng.gen_range(-1.5..1.5f32),
                rng.gen_range(-1.5..1.5f32),
                rng.gen_range(-1.5..1.5f32),
                rng.gen_range(-1.5..1.5f32),
            ];
            let mut fused = base.clone();
            axpy4(a, &rows, &mut fused);
            let mut seq = base.clone();
            for (j, &aj) in a.iter().enumerate() {
                axpy(aj, &rows[j * n..(j + 1) * n], &mut seq);
            }
            for (f, s) in fused.iter().zip(&seq) {
                assert_eq!(f.to_bits(), s.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn add_assign_is_bit_identical_to_scalar() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for n in [0usize, 1, 8, 9, 31, 32, 65] {
            let x = randvec(&mut rng, n);
            let base = randvec(&mut rng, n);
            let mut fast = base.clone();
            add_assign(&mut fast, &x);
            let mut slow = base.clone();
            for (yi, &xi) in slow.iter_mut().zip(&x) {
                *yi += xi;
            }
            for (f, s) in fast.iter().zip(&slow) {
                assert_eq!(f.to_bits(), s.to_bits(), "n={n}");
            }
        }
    }

    /// dot re-associates, so it is gated against an f64 reference with a
    /// tolerance instead of bit equality.
    #[test]
    fn dot_matches_f64_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for n in [0usize, 1, 8, 100, 1000, 2048] {
            let x = randvec(&mut rng, n);
            let y = randvec(&mut rng, n);
            let reference: f64 =
                x.iter().zip(&y).map(|(&a, &b)| f64::from(a) * f64::from(b)).sum();
            let got = f64::from(dot(&x, &y));
            let bound = 1e-3 * (n.max(1) as f64).sqrt();
            assert!((got - reference).abs() < bound, "n={n}: {got} vs {reference}");
        }
    }

    #[test]
    fn integer_kernels_are_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for n in [0usize, 1, 7, 8, 9, 255, 2048] {
            let x: Vec<i8> = (0..n).map(|_| rng.gen_range(i8::MIN..=i8::MAX)).collect();
            let y: Vec<i8> = (0..n).map(|_| rng.gen_range(i8::MIN..=i8::MAX)).collect();
            let reference: i32 =
                x.iter().zip(&y).map(|(&a, &b)| i32::from(a) * i32::from(b)).sum();
            assert_eq!(dot_i8(&x, &y), reference, "n={n}");

            let mut acc = vec![0i32; n];
            add_assign_i8(&mut acc, &x);
            add_assign_i8(&mut acc, &y);
            for ((a, &xi), &yi) in acc.iter().zip(&x).zip(&y) {
                assert_eq!(*a, i32::from(xi) + i32::from(yi), "n={n}");
            }
        }
    }

    /// Worst-case extremes must not overflow the i32 accumulators.
    #[test]
    fn dot_i8_extremes_do_not_overflow() {
        let n = 4096;
        let x = vec![i8::MIN; n];
        let y = vec![i8::MIN; n];
        assert_eq!(dot_i8(&x, &y), 128 * 128 * n as i32);
    }
}
