//! # mpass-ml — the machine-learning substrate
//!
//! The MPass reproduction cannot rely on PyTorch or LightGBM; this crate
//! implements the minimum viable ML stack the paper's detectors and attack
//! need, from scratch:
//!
//! * [`ParamBuf`] / [`Adam`] — parameter buffers with gradient storage and
//!   the Adam optimizer (used both to *train* detectors and to *optimize
//!   adversarial perturbations*, §III-D of the paper),
//! * [`Embedding`] — the byte-embedding layer through which perturbations
//!   are lifted to continuous space and mapped back to discrete bytes
//!   ([`Embedding::nearest_token`]),
//! * [`Conv1d`] — MalConv-style convolutions over byte embeddings, with
//!   backprop to both weights and inputs,
//! * [`Linear`], [`global_max_pool`], sigmoid/relu activations and the
//!   binary cross-entropy loss,
//! * [`Mlp`] — small dense classifier used inside simulated commercial AVs,
//! * [`Gbdt`] — histogram-based gradient-boosted decision trees standing in
//!   for LightGBM/EMBER,
//! * [`metrics`] — accuracy/AUC helpers.
//!
//! Every differentiable layer exposes `forward` and a `backward` that
//! returns the gradient with respect to its input, so full input-gradient
//! chains (loss → logits → conv → embedding) are available to the
//! ensemble-transfer optimizer.

mod activation;
mod conv;
mod embedding;
mod gbdt;
mod linear;
mod loss;
pub mod metrics;
mod mlp;
mod param;
mod pool;
mod table;
mod workspace;

pub use activation::{relu, relu_backward, sigmoid, sigmoid_backward};
pub use conv::Conv1d;
pub use embedding::Embedding;
pub use gbdt::{Gbdt, GbdtParams, Tree};
pub use linear::Linear;
pub use loss::{bce_with_logits, bce_with_logits_backward};
pub use mlp::Mlp;
pub use param::{Adam, ParamBuf};
pub use pool::{global_max_pool, global_max_pool_backward};
pub use table::{dirty_window_span, TokenConv};
pub use workspace::{Cached, Workspace};
