//! # mpass-ml — the machine-learning substrate
//!
//! The MPass reproduction cannot rely on PyTorch or LightGBM; this crate
//! implements the minimum viable ML stack the paper's detectors and attack
//! need, from scratch:
//!
//! * [`ParamBuf`] / [`Adam`] — parameter buffers with gradient storage and
//!   the Adam optimizer (used both to *train* detectors and to *optimize
//!   adversarial perturbations*, §III-D of the paper),
//! * [`Embedding`] — the byte-embedding layer through which perturbations
//!   are lifted to continuous space and mapped back to discrete bytes
//!   ([`Embedding::nearest_token`]),
//! * [`Conv1d`] — MalConv-style convolutions over byte embeddings, with
//!   backprop to both weights and inputs,
//! * [`Linear`], [`global_max_pool`], sigmoid/relu activations and the
//!   binary cross-entropy loss,
//! * [`Mlp`] — small dense classifier used inside simulated commercial AVs,
//! * [`Gbdt`] — histogram-based gradient-boosted decision trees standing in
//!   for LightGBM/EMBER,
//! * [`metrics`] — accuracy/AUC helpers.
//!
//! Every differentiable layer exposes `forward` and a `backward` that
//! returns the gradient with respect to its input, so full input-gradient
//! chains (loss → logits → conv → embedding) are available to the
//! ensemble-transfer optimizer.
//!
//! The serving-oriented additions live in three modules: [`simd`]
//! (lane-chunked kernels the conv/linear/table forwards are built on),
//! [`quant`] (int8 inference layers behind bounded-error gates), and
//! [`snapshot`] (versioned, checksummed weight buffers for O(read) hot
//! reload).

// Inference kernels run inside the serving daemon; a stray panic there is
// an outage. Shape violations still use `assert!` (programmer error), but
// recoverable conditions must flow through typed errors.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

mod activation;
mod conv;
mod embedding;
mod gbdt;
mod linear;
mod loss;
pub mod metrics;
mod mlp;
mod param;
mod pool;
pub mod quant;
pub mod simd;
pub mod snapshot;
mod table;
mod workspace;

pub use activation::{relu, relu_backward, sigmoid, sigmoid_backward};
pub use conv::{Conv1d, ConvXposed};
pub use embedding::Embedding;
pub use gbdt::{FlatForest, Gbdt, GbdtParams, Tree};
pub use linear::Linear;
pub use loss::{bce_with_logits, bce_with_logits_backward};
pub use mlp::Mlp;
pub use param::{Adam, ParamBuf};
pub use pool::{global_max_pool, global_max_pool_backward};
pub use quant::{QuantizedConv1d, QuantizedLinear, QuantizedVec};
pub use snapshot::{Snapshot, SnapshotBuilder, SnapshotError};
pub use table::{dirty_window_span, TokenConv};
pub use workspace::{Cached, Workspace};
