//! Gradient-boosted decision trees with logistic loss — the stand-in for
//! the LightGBM/EMBER detector (the paper's fourth offline model) and the
//! tree component of the simulated commercial AVs.
//!
//! Second-order boosting (gradient + hessian, XGBoost/LightGBM style) with
//! quantile candidate splits.

use crate::activation::sigmoid;
use crate::workspace::Cached;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`Gbdt::train`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbdtParams {
    /// Number of boosting rounds.
    pub trees: usize,
    /// Maximum tree depth.
    pub depth: usize,
    /// Shrinkage applied to every leaf.
    pub learning_rate: f32,
    /// Minimum samples a node needs before splitting.
    pub min_samples_split: usize,
    /// Candidate thresholds examined per feature.
    pub candidate_splits: usize,
    /// L2 regularization on leaf values.
    pub lambda: f32,
    /// Fraction of features considered at each tree (column subsampling).
    pub colsample: f32,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            trees: 60,
            depth: 4,
            learning_rate: 0.2,
            min_samples_split: 8,
            candidate_splits: 16,
            lambda: 1.0,
            colsample: 0.8,
        }
    }
}

/// One node of a regression tree, stored in a flat arena.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum Node {
    Split { feature: usize, threshold: f32, left: usize, right: usize },
    Leaf { value: f32 },
}

/// A single regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// Evaluate the tree on one feature vector.
    pub fn predict(&self, x: &[f32]) -> f32 {
        let mut at = 0;
        loop {
            match self.nodes[at] {
                Node::Leaf { value } => return value,
                Node::Split { feature, threshold, left, right } => {
                    at = if x.get(feature).copied().unwrap_or(0.0) <= threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Number of nodes (diagnostic).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// A boosted ensemble for binary classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gbdt {
    base: f32,
    trees: Vec<Tree>,
    /// Lazily flattened node arena for the hot `logit` path — rebuilt on
    /// demand, never serialized, always equal under `PartialEq`.
    flat: Cached<FlatForest>,
}

/// Sentinel in [`FlatNode::feature`] marking a leaf node.
const LEAF: u32 = u32::MAX;

/// Columnar projection of a [`FlatForest`]:
/// `(roots, feature, value, left, right)` — the shape the snapshot
/// format stores.
pub type ForestColumns = (Vec<u32>, Vec<u32>, Vec<f32>, Vec<u32>, Vec<u32>);

/// The whole ensemble flattened into one contiguous node arena: all
/// trees' nodes packed depth-first into a single [`FlatNode`] buffer,
/// leaves inlined, traversed iteratively. Replaces the pointer-chasing
/// enum walk on the hot path — a node visit is one bounds-checked load
/// from one cache-line segment, and the arena order matches the
/// builder's depth-first layout so left descents stay cache-linear.
///
/// Numerics: per-node comparisons and the `base + Σ tree` accumulation
/// order are identical to [`Tree::predict`] / the tree-walk logit, so
/// flat predictions are **exactly** equal, not approximately.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatForest {
    base: f32,
    /// Arena index of each tree's root.
    roots: Vec<u32>,
    /// All trees' nodes in one contiguous arena, depth-first per tree.
    nodes: Vec<FlatNode>,
}

/// One packed arena node: 16 bytes, so a traversal step costs one
/// bounds-checked load from one cache-line segment (the 40-byte
/// [`Node`] enum costs 2.5× the bandwidth per visit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct FlatNode {
    /// Split feature, or [`LEAF`].
    feature: u32,
    /// Split threshold for split nodes, leaf value for leaves.
    value: f32,
    /// Left child arena index (splits only).
    left: u32,
    /// Right child arena index (splits only).
    right: u32,
}

impl FlatForest {
    /// Flatten `trees` (with their additive `base`) into one arena.
    pub fn from_trees(base: f32, trees: &[Tree]) -> FlatForest {
        let total: usize = trees.iter().map(Tree::node_count).sum();
        let mut flat = FlatForest {
            base,
            roots: Vec::with_capacity(trees.len()),
            nodes: Vec::with_capacity(total),
        };
        for tree in trees {
            let offset = flat.nodes.len() as u32;
            flat.roots.push(offset);
            for node in &tree.nodes {
                flat.nodes.push(match *node {
                    Node::Leaf { value } => {
                        FlatNode { feature: LEAF, value, left: 0, right: 0 }
                    }
                    Node::Split { feature, threshold, left, right } => FlatNode {
                        feature: feature as u32,
                        value: threshold,
                        left: offset + left as u32,
                        right: offset + right as u32,
                    },
                });
            }
        }
        flat
    }

    /// Raw additive logit — exactly equal to the tree-walk evaluation.
    pub fn logit(&self, x: &[f32]) -> f32 {
        let mut sum = 0.0f32;
        for &root in &self.roots {
            let mut at = root as usize;
            loop {
                let n = self.nodes[at];
                if n.feature == LEAF {
                    sum += n.value;
                    break;
                }
                let v = x.get(n.feature as usize).copied().unwrap_or(0.0);
                at = if v <= n.value { n.left } else { n.right } as usize;
            }
        }
        self.base + sum
    }

    /// Additive base term.
    pub fn base(&self) -> f32 {
        self.base
    }

    /// Number of trees.
    pub fn tree_count(&self) -> usize {
        self.roots.len()
    }

    /// Total nodes across all trees.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Column projections `(roots, feature, value, left, right)` for
    /// snapshot serialization (the on-disk format stays columnar even
    /// though traversal storage is packed).
    pub fn columns(&self) -> ForestColumns {
        (
            self.roots.clone(),
            self.nodes.iter().map(|n| n.feature).collect(),
            self.nodes.iter().map(|n| n.value).collect(),
            self.nodes.iter().map(|n| n.left).collect(),
            self.nodes.iter().map(|n| n.right).collect(),
        )
    }

    /// Rebuild from raw columns (the snapshot load path), validating the
    /// topology so corrupt input cannot make [`FlatForest::logit`] loop
    /// or index out of bounds.
    pub fn from_columns(
        base: f32,
        roots: Vec<u32>,
        feature: Vec<u32>,
        value: Vec<f32>,
        left: Vec<u32>,
        right: Vec<u32>,
    ) -> Result<FlatForest, String> {
        let n = feature.len();
        if value.len() != n || left.len() != n || right.len() != n {
            return Err(format!(
                "column length mismatch: feature {n}, value {}, left {}, right {}",
                value.len(),
                left.len(),
                right.len()
            ));
        }
        for (t, &root) in roots.iter().enumerate() {
            if root as usize >= n {
                return Err(format!("tree {t} root {root} out of {n} nodes"));
            }
        }
        for at in 0..n {
            if feature[at] == LEAF {
                continue;
            }
            // Children strictly after the parent: in-bounds and acyclic
            // (every descent makes progress), so traversal terminates.
            let (l, r) = (left[at] as usize, right[at] as usize);
            if l <= at || l >= n || r <= at || r >= n {
                return Err(format!("split node {at} has bad children ({l}, {r}) of {n}"));
            }
        }
        let nodes = (0..n)
            .map(|at| FlatNode {
                feature: feature[at],
                value: value[at],
                left: left[at],
                right: right[at],
            })
            .collect();
        Ok(FlatForest { base, roots, nodes })
    }

    /// Reconstruct the pointer-form ensemble (the exact inverse of
    /// [`Gbdt::flatten`], used by snapshot reload). Requires `roots` to be
    /// ascending with each tree's nodes contiguous — the layout
    /// [`FlatForest::from_trees`] produces.
    pub fn to_gbdt(&self) -> Result<Gbdt, String> {
        let n = self.nodes.len();
        let mut trees = Vec::with_capacity(self.roots.len());
        for (t, &root) in self.roots.iter().enumerate() {
            let start = root as usize;
            let end = self.roots.get(t + 1).map_or(n, |&r| r as usize);
            if start > end || end > n {
                return Err(format!("tree {t} spans [{start}, {end}) of {n} nodes"));
            }
            let mut nodes = Vec::with_capacity(end - start);
            for at in start..end {
                let node = self.nodes[at];
                if node.feature == LEAF {
                    nodes.push(Node::Leaf { value: node.value });
                } else {
                    let (l, r) = (node.left as usize, node.right as usize);
                    if l < start || l >= end || r < start || r >= end {
                        return Err(format!("tree {t} node {at} children escape its span"));
                    }
                    nodes.push(Node::Split {
                        feature: node.feature as usize,
                        threshold: node.value,
                        left: l - start,
                        right: r - start,
                    });
                }
            }
            trees.push(Tree { nodes });
        }
        Ok(Gbdt { base: self.base, trees, flat: Cached::new() })
    }
}

struct Builder<'a> {
    features: &'a [Vec<f32>],
    grad: &'a [f32],
    hess: &'a [f32],
    params: GbdtParams,
    active_features: Vec<usize>,
    nodes: Vec<Node>,
}

impl<'a> Builder<'a> {
    fn leaf_value(&self, idx: &[usize]) -> f32 {
        let g: f32 = idx.iter().map(|&i| self.grad[i]).sum();
        let h: f32 = idx.iter().map(|&i| self.hess[i]).sum();
        -self.params.learning_rate * g / (h + self.params.lambda)
    }

    fn best_split(&self, idx: &[usize]) -> Option<(usize, f32, f32)> {
        let g_total: f32 = idx.iter().map(|&i| self.grad[i]).sum();
        let h_total: f32 = idx.iter().map(|&i| self.hess[i]).sum();
        let lambda = self.params.lambda;
        let parent_score = g_total * g_total / (h_total + lambda);
        let mut best: Option<(usize, f32, f32)> = None;
        for &f in &self.active_features {
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for &i in idx {
                let v = self.features[i][f];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi <= lo {
                continue;
            }
            for k in 1..=self.params.candidate_splits {
                let thr = lo + (hi - lo) * k as f32 / (self.params.candidate_splits + 1) as f32;
                let mut gl = 0.0f32;
                let mut hl = 0.0f32;
                let mut nl = 0usize;
                for &i in idx {
                    if self.features[i][f] <= thr {
                        gl += self.grad[i];
                        hl += self.hess[i];
                        nl += 1;
                    }
                }
                if nl == 0 || nl == idx.len() {
                    continue;
                }
                let gr = g_total - gl;
                let hr = h_total - hl;
                let gain =
                    gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent_score;
                if gain > 1e-6 && best.map(|(_, _, g)| gain > g).unwrap_or(true) {
                    best = Some((f, thr, gain));
                }
            }
        }
        best
    }

    fn build(&mut self, idx: Vec<usize>, depth: usize) -> usize {
        if depth >= self.params.depth
            || idx.len() < self.params.min_samples_split
        {
            let v = self.leaf_value(&idx);
            self.nodes.push(Node::Leaf { value: v });
            return self.nodes.len() - 1;
        }
        match self.best_split(&idx) {
            None => {
                let v = self.leaf_value(&idx);
                self.nodes.push(Node::Leaf { value: v });
                self.nodes.len() - 1
            }
            Some((feature, threshold, _)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| self.features[i][feature] <= threshold);
                let here = self.nodes.len();
                self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
                let left = self.build(left_idx, depth + 1);
                let right = self.build(right_idx, depth + 1);
                self.nodes[here] = Node::Split { feature, threshold, left, right };
                here
            }
        }
    }
}

impl Gbdt {
    /// Train on `(features, labels)` where labels are 1.0 (malicious) or
    /// 0.0 (benign).
    ///
    /// # Panics
    ///
    /// Panics when `features` is empty or lengths mismatch.
    pub fn train<R: Rng + ?Sized>(
        features: &[Vec<f32>],
        labels: &[f32],
        params: GbdtParams,
        rng: &mut R,
    ) -> Gbdt {
        assert!(!features.is_empty(), "training set must be non-empty");
        assert_eq!(features.len(), labels.len(), "features/labels length mismatch");
        let n = features.len();
        let dim = features[0].len();
        let pos = labels.iter().sum::<f32>() / n as f32;
        let base = (pos.clamp(1e-4, 1.0 - 1e-4) / (1.0 - pos.clamp(1e-4, 1.0 - 1e-4))).ln();
        let mut logits = vec![base; n];
        let mut trees = Vec::with_capacity(params.trees);
        let n_cols = ((dim as f32 * params.colsample).ceil() as usize).clamp(1, dim);
        for _ in 0..params.trees {
            let grad: Vec<f32> =
                logits.iter().zip(labels).map(|(&z, &y)| sigmoid(z) - y).collect();
            let hess: Vec<f32> = logits
                .iter()
                .map(|&z| {
                    let p = sigmoid(z);
                    (p * (1.0 - p)).max(1e-6)
                })
                .collect();
            let mut cols: Vec<usize> = (0..dim).collect();
            // Column subsample: partial Fisher-Yates.
            for i in 0..n_cols {
                let j = rng.gen_range(i..dim);
                cols.swap(i, j);
            }
            cols.truncate(n_cols);
            let mut builder = Builder {
                features,
                grad: &grad,
                hess: &hess,
                params,
                active_features: cols,
                nodes: Vec::new(),
            };
            let root = builder.build((0..n).collect(), 0);
            debug_assert_eq!(root, 0);
            let tree = Tree { nodes: builder.nodes };
            for (i, z) in logits.iter_mut().enumerate() {
                *z += tree.predict(&features[i]);
            }
            trees.push(tree);
        }
        Gbdt { base, trees, flat: Cached::new() }
    }

    /// Raw additive logit, evaluated through the lazily built
    /// [`FlatForest`] — exactly equal to [`Gbdt::logit_treewalk`].
    pub fn logit(&self, x: &[f32]) -> f32 {
        self.flat.get_or_build(|| FlatForest::from_trees(self.base, &self.trees)).logit(x)
    }

    /// Pointer-chasing reference evaluation over the original tree
    /// arenas. Kept as the exact-equality oracle for the flattened path
    /// (and for the training loop, which predicts through trees as they
    /// are grown).
    pub fn logit_treewalk(&self, x: &[f32]) -> f32 {
        self.base + self.trees.iter().map(|t| t.predict(x)).sum::<f32>()
    }

    /// Flatten into SoA columns (snapshot serialization).
    pub fn flatten(&self) -> FlatForest {
        FlatForest::from_trees(self.base, &self.trees)
    }

    /// Rebuild from a flattened forest (snapshot reload). The
    /// reconstruction is exact: predictions are bit-identical to the
    /// model that was flattened.
    pub fn from_flat(flat: &FlatForest) -> Result<Gbdt, String> {
        flat.to_gbdt()
    }

    /// Malicious probability.
    pub fn score(&self, x: &[f32]) -> f32 {
        sigmoid(self.logit(x))
    }

    /// Number of trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn toy_dataset(rng: &mut ChaCha8Rng, n: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        // Label = 1 iff x0 > 0.3 AND x2 < 0.5 — a tree-friendly rule.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let x: Vec<f32> = (0..4).map(|_| rng.gen_range(0.0..1.0)).collect();
            let y = if x[0] > 0.3 && x[2] < 0.5 { 1.0 } else { 0.0 };
            xs.push(x);
            ys.push(y);
        }
        (xs, ys)
    }

    #[test]
    fn learns_axis_aligned_rule() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let (xs, ys) = toy_dataset(&mut rng, 400);
        let model = Gbdt::train(&xs, &ys, GbdtParams::default(), &mut rng);
        let (txs, tys) = toy_dataset(&mut rng, 200);
        let correct = txs
            .iter()
            .zip(&tys)
            .filter(|(x, y)| (model.score(x) > 0.5) == (**y > 0.5))
            .count();
        assert!(correct >= 190, "accuracy {correct}/200");
    }

    #[test]
    fn single_class_predicts_that_class() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let xs: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32]).collect();
        let ys = vec![1.0f32; 50];
        let model = Gbdt::train(&xs, &ys, GbdtParams::default(), &mut rng);
        assert!(model.score(&[25.0]) > 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = ChaCha8Rng::seed_from_u64(8);
        let (xs, ys) = toy_dataset(&mut r1, 100);
        let mut ra = ChaCha8Rng::seed_from_u64(42);
        let mut rb = ChaCha8Rng::seed_from_u64(42);
        let m1 = Gbdt::train(&xs, &ys, GbdtParams::default(), &mut ra);
        let m2 = Gbdt::train(&xs, &ys, GbdtParams::default(), &mut rb);
        assert_eq!(m1, m2);
    }

    #[test]
    fn missing_features_treated_as_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (xs, ys) = toy_dataset(&mut rng, 100);
        let model = Gbdt::train(&xs, &ys, GbdtParams::default(), &mut rng);
        // Shorter vector must not panic.
        let _ = model.score(&[0.5]);
    }

    #[test]
    fn tree_count_matches_params() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let (xs, ys) = toy_dataset(&mut rng, 60);
        let params = GbdtParams { trees: 13, ..GbdtParams::default() };
        let model = Gbdt::train(&xs, &ys, params, &mut rng);
        assert_eq!(model.tree_count(), 13);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_training_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _ = Gbdt::train(&[], &[], GbdtParams::default(), &mut rng);
    }

    /// The flattened SoA traversal must equal the pointer walk *exactly*,
    /// including short (missing-feature) and out-of-range inputs.
    #[test]
    fn flat_logit_is_bit_identical_to_treewalk() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let (xs, ys) = toy_dataset(&mut rng, 200);
        let model = Gbdt::train(&xs, &ys, GbdtParams::default(), &mut rng);
        for x in xs.iter().take(50) {
            assert_eq!(model.logit(x).to_bits(), model.logit_treewalk(x).to_bits());
        }
        for x in [vec![], vec![0.5], vec![9e9, -9e9, 0.0, 1.0, 7.0]] {
            assert_eq!(model.logit(&x).to_bits(), model.logit_treewalk(&x).to_bits());
        }
    }

    /// flatten → from_flat is the identity on the ensemble, and the
    /// round-tripped model predicts bit-identically.
    #[test]
    fn flatten_round_trip_is_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let (xs, ys) = toy_dataset(&mut rng, 150);
        let model = Gbdt::train(&xs, &ys, GbdtParams::default(), &mut rng);
        let flat = model.flatten();
        let back = Gbdt::from_flat(&flat).expect("valid forest reconstructs");
        assert_eq!(model, back);
        for x in xs.iter().take(20) {
            assert_eq!(model.logit(x).to_bits(), back.logit(x).to_bits());
        }
    }

    /// Column validation rejects topology that could hang or overrun the
    /// iterative traversal.
    #[test]
    fn from_columns_rejects_bad_topology() {
        // Root out of range.
        assert!(FlatForest::from_columns(0.0, vec![1], vec![LEAF], vec![0.5], vec![0], vec![0])
            .is_err());
        // Split whose child points backwards (would cycle).
        assert!(FlatForest::from_columns(
            0.0,
            vec![0],
            vec![0, 0, LEAF],
            vec![0.5, 0.5, 1.0],
            vec![1, 0, 0],
            vec![2, 2, 0],
        )
        .is_err());
        // Mismatched column lengths.
        assert!(
            FlatForest::from_columns(0.0, vec![0], vec![LEAF], vec![], vec![0], vec![0]).is_err()
        );
        // A well-formed single-leaf forest passes and evaluates.
        let ok = FlatForest::from_columns(0.25, vec![0], vec![LEAF], vec![0.5], vec![0], vec![0])
            .expect("valid columns");
        assert_eq!(ok.logit(&[]), 0.75);
    }
}
