//! Gradient-boosted decision trees with logistic loss — the stand-in for
//! the LightGBM/EMBER detector (the paper's fourth offline model) and the
//! tree component of the simulated commercial AVs.
//!
//! Second-order boosting (gradient + hessian, XGBoost/LightGBM style) with
//! quantile candidate splits.

use crate::activation::sigmoid;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`Gbdt::train`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbdtParams {
    /// Number of boosting rounds.
    pub trees: usize,
    /// Maximum tree depth.
    pub depth: usize,
    /// Shrinkage applied to every leaf.
    pub learning_rate: f32,
    /// Minimum samples a node needs before splitting.
    pub min_samples_split: usize,
    /// Candidate thresholds examined per feature.
    pub candidate_splits: usize,
    /// L2 regularization on leaf values.
    pub lambda: f32,
    /// Fraction of features considered at each tree (column subsampling).
    pub colsample: f32,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            trees: 60,
            depth: 4,
            learning_rate: 0.2,
            min_samples_split: 8,
            candidate_splits: 16,
            lambda: 1.0,
            colsample: 0.8,
        }
    }
}

/// One node of a regression tree, stored in a flat arena.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum Node {
    Split { feature: usize, threshold: f32, left: usize, right: usize },
    Leaf { value: f32 },
}

/// A single regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// Evaluate the tree on one feature vector.
    pub fn predict(&self, x: &[f32]) -> f32 {
        let mut at = 0;
        loop {
            match self.nodes[at] {
                Node::Leaf { value } => return value,
                Node::Split { feature, threshold, left, right } => {
                    at = if x.get(feature).copied().unwrap_or(0.0) <= threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Number of nodes (diagnostic).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// A boosted ensemble for binary classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gbdt {
    base: f32,
    trees: Vec<Tree>,
}

struct Builder<'a> {
    features: &'a [Vec<f32>],
    grad: &'a [f32],
    hess: &'a [f32],
    params: GbdtParams,
    active_features: Vec<usize>,
    nodes: Vec<Node>,
}

impl<'a> Builder<'a> {
    fn leaf_value(&self, idx: &[usize]) -> f32 {
        let g: f32 = idx.iter().map(|&i| self.grad[i]).sum();
        let h: f32 = idx.iter().map(|&i| self.hess[i]).sum();
        -self.params.learning_rate * g / (h + self.params.lambda)
    }

    fn best_split(&self, idx: &[usize]) -> Option<(usize, f32, f32)> {
        let g_total: f32 = idx.iter().map(|&i| self.grad[i]).sum();
        let h_total: f32 = idx.iter().map(|&i| self.hess[i]).sum();
        let lambda = self.params.lambda;
        let parent_score = g_total * g_total / (h_total + lambda);
        let mut best: Option<(usize, f32, f32)> = None;
        for &f in &self.active_features {
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for &i in idx {
                let v = self.features[i][f];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi <= lo {
                continue;
            }
            for k in 1..=self.params.candidate_splits {
                let thr = lo + (hi - lo) * k as f32 / (self.params.candidate_splits + 1) as f32;
                let mut gl = 0.0f32;
                let mut hl = 0.0f32;
                let mut nl = 0usize;
                for &i in idx {
                    if self.features[i][f] <= thr {
                        gl += self.grad[i];
                        hl += self.hess[i];
                        nl += 1;
                    }
                }
                if nl == 0 || nl == idx.len() {
                    continue;
                }
                let gr = g_total - gl;
                let hr = h_total - hl;
                let gain =
                    gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent_score;
                if gain > 1e-6 && best.map(|(_, _, g)| gain > g).unwrap_or(true) {
                    best = Some((f, thr, gain));
                }
            }
        }
        best
    }

    fn build(&mut self, idx: Vec<usize>, depth: usize) -> usize {
        if depth >= self.params.depth
            || idx.len() < self.params.min_samples_split
        {
            let v = self.leaf_value(&idx);
            self.nodes.push(Node::Leaf { value: v });
            return self.nodes.len() - 1;
        }
        match self.best_split(&idx) {
            None => {
                let v = self.leaf_value(&idx);
                self.nodes.push(Node::Leaf { value: v });
                self.nodes.len() - 1
            }
            Some((feature, threshold, _)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| self.features[i][feature] <= threshold);
                let here = self.nodes.len();
                self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
                let left = self.build(left_idx, depth + 1);
                let right = self.build(right_idx, depth + 1);
                self.nodes[here] = Node::Split { feature, threshold, left, right };
                here
            }
        }
    }
}

impl Gbdt {
    /// Train on `(features, labels)` where labels are 1.0 (malicious) or
    /// 0.0 (benign).
    ///
    /// # Panics
    ///
    /// Panics when `features` is empty or lengths mismatch.
    pub fn train<R: Rng + ?Sized>(
        features: &[Vec<f32>],
        labels: &[f32],
        params: GbdtParams,
        rng: &mut R,
    ) -> Gbdt {
        assert!(!features.is_empty(), "training set must be non-empty");
        assert_eq!(features.len(), labels.len(), "features/labels length mismatch");
        let n = features.len();
        let dim = features[0].len();
        let pos = labels.iter().sum::<f32>() / n as f32;
        let base = (pos.clamp(1e-4, 1.0 - 1e-4) / (1.0 - pos.clamp(1e-4, 1.0 - 1e-4))).ln();
        let mut logits = vec![base; n];
        let mut trees = Vec::with_capacity(params.trees);
        let n_cols = ((dim as f32 * params.colsample).ceil() as usize).clamp(1, dim);
        for _ in 0..params.trees {
            let grad: Vec<f32> =
                logits.iter().zip(labels).map(|(&z, &y)| sigmoid(z) - y).collect();
            let hess: Vec<f32> = logits
                .iter()
                .map(|&z| {
                    let p = sigmoid(z);
                    (p * (1.0 - p)).max(1e-6)
                })
                .collect();
            let mut cols: Vec<usize> = (0..dim).collect();
            // Column subsample: partial Fisher-Yates.
            for i in 0..n_cols {
                let j = rng.gen_range(i..dim);
                cols.swap(i, j);
            }
            cols.truncate(n_cols);
            let mut builder = Builder {
                features,
                grad: &grad,
                hess: &hess,
                params,
                active_features: cols,
                nodes: Vec::new(),
            };
            let root = builder.build((0..n).collect(), 0);
            debug_assert_eq!(root, 0);
            let tree = Tree { nodes: builder.nodes };
            for (i, z) in logits.iter_mut().enumerate() {
                *z += tree.predict(&features[i]);
            }
            trees.push(tree);
        }
        Gbdt { base, trees }
    }

    /// Raw additive logit.
    pub fn logit(&self, x: &[f32]) -> f32 {
        self.base + self.trees.iter().map(|t| t.predict(x)).sum::<f32>()
    }

    /// Malicious probability.
    pub fn score(&self, x: &[f32]) -> f32 {
        sigmoid(self.logit(x))
    }

    /// Number of trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn toy_dataset(rng: &mut ChaCha8Rng, n: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        // Label = 1 iff x0 > 0.3 AND x2 < 0.5 — a tree-friendly rule.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let x: Vec<f32> = (0..4).map(|_| rng.gen_range(0.0..1.0)).collect();
            let y = if x[0] > 0.3 && x[2] < 0.5 { 1.0 } else { 0.0 };
            xs.push(x);
            ys.push(y);
        }
        (xs, ys)
    }

    #[test]
    fn learns_axis_aligned_rule() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let (xs, ys) = toy_dataset(&mut rng, 400);
        let model = Gbdt::train(&xs, &ys, GbdtParams::default(), &mut rng);
        let (txs, tys) = toy_dataset(&mut rng, 200);
        let correct = txs
            .iter()
            .zip(&tys)
            .filter(|(x, y)| (model.score(x) > 0.5) == (**y > 0.5))
            .count();
        assert!(correct >= 190, "accuracy {correct}/200");
    }

    #[test]
    fn single_class_predicts_that_class() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let xs: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32]).collect();
        let ys = vec![1.0f32; 50];
        let model = Gbdt::train(&xs, &ys, GbdtParams::default(), &mut rng);
        assert!(model.score(&[25.0]) > 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = ChaCha8Rng::seed_from_u64(8);
        let (xs, ys) = toy_dataset(&mut r1, 100);
        let mut ra = ChaCha8Rng::seed_from_u64(42);
        let mut rb = ChaCha8Rng::seed_from_u64(42);
        let m1 = Gbdt::train(&xs, &ys, GbdtParams::default(), &mut ra);
        let m2 = Gbdt::train(&xs, &ys, GbdtParams::default(), &mut rb);
        assert_eq!(m1, m2);
    }

    #[test]
    fn missing_features_treated_as_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (xs, ys) = toy_dataset(&mut rng, 100);
        let model = Gbdt::train(&xs, &ys, GbdtParams::default(), &mut rng);
        // Shorter vector must not panic.
        let _ = model.score(&[0.5]);
    }

    #[test]
    fn tree_count_matches_params() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let (xs, ys) = toy_dataset(&mut rng, 60);
        let params = GbdtParams { trees: 13, ..GbdtParams::default() };
        let model = Gbdt::train(&xs, &ys, params, &mut rng);
        assert_eq!(model.tree_count(), 13);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_training_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _ = Gbdt::train(&[], &[], GbdtParams::default(), &mut rng);
    }
}
