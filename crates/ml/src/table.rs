//! Token-indexed convolution tables.
//!
//! A MalConv-style conv runs over *embedded* bytes, and both the embedding
//! and the conv weights are fixed at inference time. The response of output
//! channel `oc` at kernel position `k` to byte `b` is therefore a constant:
//!
//! ```text
//! T[k][b][oc] = Σ_c  W[oc][k][c] · e(b)[c]
//! ```
//!
//! Precomputing `T` once per trained model turns the conv forward into a
//! lookup-accumulate over raw byte tokens — no per-call embedding
//! materialization, no inner channel loop — and makes single-window
//! recomputation (the incremental dirty-span path) O(kernel · out_ch).

use crate::conv::Conv1d;
use crate::embedding::Embedding;

/// A conv layer folded with an embedding into a per-(kernel-position,
/// token) response table.
///
/// Layout is `[kernel][vocab][out_ch]` flattened, so accumulating one
/// window walks `kernel` contiguous `out_ch`-sized rows.
#[derive(Debug, Clone)]
pub struct TokenConv {
    table: Vec<f32>,
    bias: Vec<f32>,
    vocab: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
}

impl TokenConv {
    /// Fold `conv` (whose `in_ch` must equal `emb.dim()`) with `emb`.
    pub fn build(conv: &Conv1d, emb: &Embedding) -> Self {
        assert_eq!(conv.in_ch(), emb.dim(), "conv input width must match embedding dim");
        let (vocab, dim) = (emb.vocab(), emb.dim());
        let (out_ch, kernel) = (conv.out_ch(), conv.kernel());
        let k_in = kernel * dim;
        let mut table = vec![0.0f32; kernel * vocab * out_ch];
        for k in 0..kernel {
            for b in 0..vocab {
                let e = emb.vector(b);
                let row = &mut table[(k * vocab + b) * out_ch..(k * vocab + b + 1) * out_ch];
                for (oc, r) in row.iter_mut().enumerate() {
                    let w = &conv.weight.w[oc * k_in + k * dim..oc * k_in + (k + 1) * dim];
                    let mut acc = 0.0;
                    for (wi, ei) in w.iter().zip(e) {
                        acc += wi * ei;
                    }
                    *r = acc;
                }
            }
        }
        TokenConv {
            table,
            bias: conv.bias.w.clone(),
            vocab,
            out_ch,
            kernel,
            stride: conv.stride(),
        }
    }

    /// Output channel count.
    pub fn out_ch(&self) -> usize {
        self.out_ch
    }

    /// Kernel width.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Window hop.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of output windows for a token sequence of length `len`.
    pub fn windows(&self, len: usize) -> usize {
        if len < self.kernel {
            0
        } else {
            (len - self.kernel) / self.stride + 1
        }
    }

    /// Compute one output window `w` into `out_row` (`out_ch` long).
    ///
    /// # Panics
    ///
    /// Panics when the window is out of range, a token exceeds the vocab,
    /// or `out_row` has the wrong width.
    #[inline]
    pub fn window_into(&self, tokens: &[usize], w: usize, out_row: &mut [f32]) {
        assert!(w < self.windows(tokens.len()), "window {w} out of range");
        assert_eq!(out_row.len(), self.out_ch, "output row width mismatch");
        out_row.copy_from_slice(&self.bias);
        let start = w * self.stride;
        for (k, &t) in tokens[start..start + self.kernel].iter().enumerate() {
            assert!(t < self.vocab, "token {t} out of vocabulary {}", self.vocab);
            let row = &self.table[(k * self.vocab + t) * self.out_ch
                ..(k * self.vocab + t + 1) * self.out_ch];
            // Element-wise lane-chunked add: bit-identical to the naive
            // loop, vectorized across output channels.
            crate::simd::add_assign(out_row, row);
        }
    }

    /// Full forward over `tokens` into `out`, resized to
    /// `[windows × out_ch]`. Equivalent to embedding `tokens` and running
    /// the original conv (within float-summation reassociation error).
    pub fn forward_into(&self, tokens: &[usize], out: &mut Vec<f32>) {
        let windows = self.windows(tokens.len());
        out.clear();
        out.resize(windows * self.out_ch, 0.0);
        for w in 0..windows {
            let (lo, hi) = (w * self.out_ch, (w + 1) * self.out_ch);
            self.window_into(tokens, w, &mut out[lo..hi]);
        }
    }

    /// The windows whose receptive field overlaps byte offsets `[lo, hi)`,
    /// clamped to the valid window range for a `len`-token input. Returns
    /// an empty range when there is no overlap.
    pub fn dirty_windows(&self, len: usize, lo: usize, hi: usize) -> std::ops::Range<usize> {
        dirty_window_span(self.kernel, self.stride, self.windows(len), lo, hi)
    }
}

/// The window indices (out of `windows` total, each covering
/// `[w·stride, w·stride + kernel)` input positions) whose receptive field
/// overlaps positions `[lo, hi)`. Shared by [`TokenConv`] and
/// [`Conv1d::dirty_windows`] so every layer of a stacked conv propagates
/// dirty spans with identical math.
pub fn dirty_window_span(
    kernel: usize,
    stride: usize,
    windows: usize,
    lo: usize,
    hi: usize,
) -> std::ops::Range<usize> {
    if windows == 0 || lo >= hi {
        return 0..0;
    }
    // Window w covers [w·stride, w·stride + kernel). It overlaps iff
    // w·stride < hi and w·stride + kernel > lo.
    let w_min = (lo + 1).saturating_sub(kernel).div_ceil(stride).min(windows);
    let w_max = ((hi - 1) / stride + 1).min(windows); // last w with w·stride < hi
    if w_min >= w_max {
        0..0
    } else {
        w_min..w_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn fixture(kernel: usize, stride: usize) -> (Conv1d, Embedding) {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let emb = Embedding::new(257, 6, &mut rng);
        let conv = Conv1d::new(6, 5, kernel, stride, &mut rng);
        (conv, emb)
    }

    #[test]
    fn forward_matches_naive_conv() {
        for (kernel, stride) in [(4usize, 4usize), (8, 4), (3, 1)] {
            let (conv, emb) = fixture(kernel, stride);
            let tc = TokenConv::build(&conv, &emb);
            let mut rng = ChaCha8Rng::seed_from_u64(99);
            let tokens: Vec<usize> = (0..64).map(|_| rng.gen_range(0..257)).collect();
            let naive = conv.forward(&emb.forward(&tokens));
            let mut tabled = Vec::new();
            tc.forward_into(&tokens, &mut tabled);
            assert_eq!(naive.len(), tabled.len());
            for (i, (a, b)) in naive.iter().zip(&tabled).enumerate() {
                assert!((a - b).abs() < 1e-5, "window entry {i}: naive {a} vs tabled {b}");
            }
        }
    }

    #[test]
    fn dirty_windows_cover_receptive_fields() {
        let (conv, emb) = fixture(8, 4);
        let tc = TokenConv::build(&conv, &emb);
        let len = 64;
        // Brute-force reference: window w overlaps [lo,hi) iff intervals meet.
        for (lo, hi) in [(0usize, 1usize), (7, 8), (8, 9), (30, 41), (60, 64), (63, 64)] {
            let got = tc.dirty_windows(len, lo, hi);
            for w in 0..tc.windows(len) {
                let (ws, we) = (w * 4, w * 4 + 8);
                let overlaps = ws < hi && we > lo;
                assert_eq!(
                    got.contains(&w),
                    overlaps,
                    "span [{lo},{hi}) window {w}: got {got:?}"
                );
            }
        }
        assert_eq!(tc.dirty_windows(len, 5, 5), 0..0, "empty span");
        assert_eq!(tc.dirty_windows(4, 0, 4), 0..0, "input shorter than kernel");
    }

    #[test]
    fn window_into_matches_forward_slice() {
        let (conv, emb) = fixture(8, 4);
        let tc = TokenConv::build(&conv, &emb);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let tokens: Vec<usize> = (0..40).map(|_| rng.gen_range(0..257)).collect();
        let mut full = Vec::new();
        tc.forward_into(&tokens, &mut full);
        let mut row = vec![0.0; tc.out_ch()];
        for w in 0..tc.windows(tokens.len()) {
            tc.window_into(&tokens, w, &mut row);
            assert_eq!(&full[w * tc.out_ch()..(w + 1) * tc.out_ch()], &row[..]);
        }
    }
}
