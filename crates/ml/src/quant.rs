//! Int8-quantized inference layers.
//!
//! The quantized scoring path trades the last decimals of the f32 score
//! for integer arithmetic: weights are quantized per output channel to
//! symmetric i8 (`zero_point = 0`, scale = `amax/127`), activations are
//! quantized dynamically per tensor to affine i8 (scale + zero point over
//! the observed range, with 0.0 always exactly representable — padding
//! regions stay exact), and the dot products accumulate in i32 via
//! [`simd::dot_i8`]. Dequantization applies one fused multiplier per
//! output channel:
//!
//! ```text
//! y[o] = bias[o] + (Σ_i qw[o][i]·qx[i] − zx·Σ_i qw[o][i]) · sw[o] · sx
//! ```
//!
//! Unlike the f32 kernels this path is **not** bit-exact against the
//! float forward — it is gated by bounded-error property tests instead
//! (score divergence and classification agreement at the detector level,
//! round-trip bounds here). It *is* deterministic, and batch-vs-sequential
//! quantized scoring stays bit-identical because integer arithmetic has
//! no association error.

use crate::conv::Conv1d;
use crate::linear::Linear;
use crate::simd;

/// An affine-quantized activation vector: `x[i] ≈ (q[i] − zero) · scale`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuantizedVec {
    /// Quantized values.
    pub q: Vec<i8>,
    /// Dequantization scale (bit pattern compared in `Eq` via containers).
    scale_bits: u32,
    /// Zero point: the i8 code representing exactly 0.0.
    pub zero: i32,
}

impl QuantizedVec {
    /// The dequantization scale.
    pub fn scale(&self) -> f32 {
        f32::from_bits(self.scale_bits)
    }

    /// Quantize `x` into this buffer (reusing its allocation): per-tensor
    /// dynamic affine quantization over `[min(0, min x), max(0, max x)]`.
    /// Including 0.0 in the range pins an exact zero code, so all-padding
    /// spans quantize without error.
    pub fn quantize(&mut self, x: &[f32]) {
        let mut lo = 0.0f32;
        let mut hi = 0.0f32;
        for &v in x {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let mut scale = (hi - lo) / 255.0;
        if scale <= 0.0 {
            // All-zero (or empty) input: any positive scale maps 0.0 → code 0.
            scale = 1.0;
        }
        let zero = (-128.0 - lo / scale).round().clamp(-128.0, 127.0) as i32;
        self.q.clear();
        self.q.extend(x.iter().map(|&v| {
            ((v / scale).round() as i32 + zero).clamp(-128, 127) as i8
        }));
        self.scale_bits = scale.to_bits();
        self.zero = zero;
    }

    /// Quantize `x` into a fresh buffer.
    pub fn from_f32(x: &[f32]) -> Self {
        let mut qv = QuantizedVec::default();
        qv.quantize(x);
        qv
    }

    /// Dequantized value at `i`.
    pub fn dequantize(&self, i: usize) -> f32 {
        (i32::from(self.q[i]) - self.zero) as f32 * self.scale()
    }
}

/// Per-output-channel symmetric i8 quantization of a weight matrix
/// `[rows][cols]`: returns `(q, scale, row_sum)` where
/// `w[r][c] ≈ q[r][c] · scale[r]` and `row_sum[r] = Σ_c q[r][c]` (the
/// activation-zero-point correction term).
fn quantize_rows(w: &[f32], rows: usize, cols: usize) -> (Vec<i8>, Vec<f32>, Vec<i32>) {
    assert_eq!(w.len(), rows * cols, "weight shape mismatch");
    let mut q = vec![0i8; rows * cols];
    let mut scale = vec![1.0f32; rows];
    let mut row_sum = vec![0i32; rows];
    for r in 0..rows {
        let row = &w[r * cols..(r + 1) * cols];
        let amax = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        // Symmetric over [-127, 127]: keeps zero_point at 0 and avoids
        // the asymmetric -128 code.
        let s = if amax > 0.0 { amax / 127.0 } else { 1.0 };
        scale[r] = s;
        let mut sum = 0i32;
        for (qc, &v) in q[r * cols..(r + 1) * cols].iter_mut().zip(row) {
            let code = (v / s).round().clamp(-127.0, 127.0) as i32;
            sum += code;
            *qc = code as i8;
        }
        row_sum[r] = sum;
    }
    (q, scale, row_sum)
}

/// Int8 dense layer: per-output-channel symmetric weights (zero point 0),
/// i32 accumulation, fused per-channel dequantization.
#[derive(Debug, Clone)]
pub struct QuantizedLinear {
    q: Vec<i8>,
    scale: Vec<f32>,
    row_sum: Vec<i32>,
    bias: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
}

impl QuantizedLinear {
    /// Quantize a trained [`Linear`].
    pub fn from_f32(l: &Linear) -> Self {
        let (in_dim, out_dim) = (l.in_dim(), l.out_dim());
        let (q, scale, row_sum) = quantize_rows(&l.weight.w, out_dim, in_dim);
        QuantizedLinear { q, scale, row_sum, bias: l.bias.w.clone(), in_dim, out_dim }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// `y ≈ W x + b` over a quantized input.
    ///
    /// # Panics
    ///
    /// Panics when `x.q` or `y` shapes mismatch the layer.
    pub fn forward_into(&self, x: &QuantizedVec, y: &mut [f32]) {
        assert_eq!(x.q.len(), self.in_dim, "quantized linear input dimension mismatch");
        assert_eq!(y.len(), self.out_dim, "quantized linear output dimension mismatch");
        let sx = x.scale();
        for (o, yo) in y.iter_mut().enumerate() {
            let row = &self.q[o * self.in_dim..(o + 1) * self.in_dim];
            let acc = simd::dot_i8(row, &x.q) - x.zero * self.row_sum[o];
            *yo = self.bias[o] + acc as f32 * (self.scale[o] * sx);
        }
    }
}

/// Int8 1-D convolution: the quantized counterpart of [`Conv1d`], run over
/// one quantized activation buffer laid out `[position][in_ch]` like the
/// f32 layer.
#[derive(Debug, Clone)]
pub struct QuantizedConv1d {
    q: Vec<i8>,
    scale: Vec<f32>,
    row_sum: Vec<i32>,
    bias: Vec<f32>,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
}

impl QuantizedConv1d {
    /// Quantize a trained [`Conv1d`].
    pub fn from_f32(c: &Conv1d) -> Self {
        let k_in = c.kernel() * c.in_ch();
        let (q, scale, row_sum) = quantize_rows(&c.weight.w, c.out_ch(), k_in);
        QuantizedConv1d {
            q,
            scale,
            row_sum,
            bias: c.bias.w.clone(),
            in_ch: c.in_ch(),
            out_ch: c.out_ch(),
            kernel: c.kernel(),
            stride: c.stride(),
        }
    }

    /// Output channel count.
    pub fn out_ch(&self) -> usize {
        self.out_ch
    }

    /// Number of output windows for an input of `positions` rows.
    pub fn windows(&self, positions: usize) -> usize {
        if positions < self.kernel {
            0
        } else {
            (positions - self.kernel) / self.stride + 1
        }
    }

    /// Compute output window `w` into `out_row` (`out_ch` wide) over the
    /// quantized input buffer `x`.
    ///
    /// # Panics
    ///
    /// Panics when the window or `out_row` shape is out of range.
    pub fn forward_window_into(&self, x: &QuantizedVec, w: usize, out_row: &mut [f32]) {
        assert_eq!(x.q.len() % self.in_ch, 0, "input not a whole number of positions");
        assert!(w < self.windows(x.q.len() / self.in_ch), "window {w} out of range");
        assert_eq!(out_row.len(), self.out_ch, "output row width mismatch");
        let k_in = self.kernel * self.in_ch;
        let start = w * self.stride * self.in_ch;
        let patch = &x.q[start..start + k_in];
        let sx = x.scale();
        for (oc, o) in out_row.iter_mut().enumerate() {
            let row = &self.q[oc * k_in..(oc + 1) * k_in];
            let acc = simd::dot_i8(row, patch) - x.zero * self.row_sum[oc];
            *o = self.bias[oc] + acc as f32 * (self.scale[oc] * sx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Dequantizing an affine-quantized value recovers it to within half
    /// a quantization step, and 0.0 is always exact.
    #[test]
    fn activation_round_trip_is_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for n in [1usize, 8, 100, 1000] {
            let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-3.0..5.0)).collect();
            let qv = QuantizedVec::from_f32(&x);
            let bound = qv.scale() * 0.5 + 1e-6;
            for (i, &v) in x.iter().enumerate() {
                let err = (v - qv.dequantize(i)).abs();
                assert!(err <= bound, "n={n} i={i}: err {err} > {bound}");
            }
        }
        let zeros = vec![0.0f32; 16];
        let qv = QuantizedVec::from_f32(&zeros);
        for i in 0..16 {
            assert_eq!(qv.dequantize(i), 0.0, "zero must be exactly representable");
        }
    }

    /// Weight rows round-trip within half a step of their per-row scale.
    #[test]
    fn weight_round_trip_is_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let l = Linear::new(32, 5, &mut rng);
        let ql = QuantizedLinear::from_f32(&l);
        for o in 0..5 {
            let s = ql.scale[o];
            for i in 0..32 {
                let w = l.weight.w[o * 32 + i];
                let back = f32::from(ql.q[o * 32 + i]) * s;
                assert!((w - back).abs() <= s * 0.5 + 1e-7, "({o},{i})");
            }
        }
    }

    /// Quantized forward tracks the f32 forward within an error budget
    /// proportional to the quantization steps (the detector-level gates
    /// bound the end-to-end score; this pins the layer in isolation).
    #[test]
    fn quantized_linear_tracks_f32_forward() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for (in_dim, out_dim) in [(16usize, 8usize), (64, 16), (100, 3)] {
            let l = Linear::new(in_dim, out_dim, &mut rng);
            let ql = QuantizedLinear::from_f32(&l);
            let x: Vec<f32> = (0..in_dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let qx = QuantizedVec::from_f32(&x);
            let exact = l.forward(&x);
            let mut approx = vec![0.0f32; out_dim];
            ql.forward_into(&qx, &mut approx);
            // Worst-case error per output: each product carries at most
            // (|w| sx/2 + |x| sw/2 + sw sx/4); bound loosely via norms.
            for (o, (e, a)) in exact.iter().zip(&approx).enumerate() {
                let row = &l.weight.w[o * in_dim..(o + 1) * in_dim];
                let budget: f32 = row
                    .iter()
                    .zip(&x)
                    .map(|(&w, &xi)| {
                        w.abs() * qx.scale() * 0.5
                            + xi.abs() * ql.scale[o] * 0.5
                            + ql.scale[o] * qx.scale() * 0.75
                    })
                    .sum::<f32>()
                    + 1e-5;
                assert!((e - a).abs() <= budget, "{in_dim}x{out_dim} out {o}: {e} vs {a}");
            }
        }
    }

    /// Conv and linear quantized kernels agree when expressing the same
    /// operation (kernel-1 stride-1 conv == per-position linear).
    #[test]
    fn quantized_conv_matches_quantized_linear_on_kernel1() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let conv = Conv1d::new(6, 4, 1, 1, &mut rng);
        let mut linear = Linear::new(6, 4, &mut rng);
        linear.weight.w.copy_from_slice(&conv.weight.w);
        linear.bias.w.copy_from_slice(&conv.bias.w);
        let qc = QuantizedConv1d::from_f32(&conv);
        let ql = QuantizedLinear::from_f32(&linear);
        let x: Vec<f32> = (0..5 * 6).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let qx = QuantizedVec::from_f32(&x);
        let mut conv_row = vec![0.0f32; 4];
        let mut lin_row = vec![0.0f32; 4];
        for p in 0..5 {
            qc.forward_window_into(&qx, p, &mut conv_row);
            let pos = QuantizedVec {
                q: qx.q[p * 6..(p + 1) * 6].to_vec(),
                scale_bits: qx.scale().to_bits(),
                zero: qx.zero,
            };
            ql.forward_into(&pos, &mut lin_row);
            for (c, l) in conv_row.iter().zip(&lin_row) {
                assert_eq!(c.to_bits(), l.to_bits(), "position {p}");
            }
        }
    }

    /// Quantization is deterministic: the same input always produces the
    /// same codes (no association error in integer arithmetic).
    #[test]
    fn quantization_is_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let x: Vec<f32> = (0..333).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let a = QuantizedVec::from_f32(&x);
        let b = QuantizedVec::from_f32(&x);
        assert_eq!(a, b);
    }
}
