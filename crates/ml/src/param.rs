//! Parameter buffers and the Adam optimizer.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A flat parameter buffer with its gradient accumulator and Adam moment
/// estimates.
///
/// Layers own one `ParamBuf` per weight tensor; training code zeroes
/// gradients, runs forward/backward, then calls [`Adam::step`] over every
/// buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamBuf {
    /// The parameters.
    pub w: Vec<f32>,
    /// Accumulated gradient, same length as `w`.
    pub g: Vec<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl ParamBuf {
    /// Wrap an initial parameter vector.
    pub fn new(init: Vec<f32>) -> Self {
        let n = init.len();
        ParamBuf { w: init, g: vec![0.0; n], m: vec![0.0; n], v: vec![0.0; n], t: 0 }
    }

    /// Uniform initialization in `[-scale, scale]`.
    pub fn uniform<R: Rng + ?Sized>(n: usize, scale: f32, rng: &mut R) -> Self {
        ParamBuf::new((0..n).map(|_| rng.gen_range(-scale..=scale)).collect())
    }

    /// Zero the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.g.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Clamp every parameter to at least `min` (used by the NonNeg
    /// detector, which constrains weights to be non-negative).
    pub fn clamp_min(&mut self, min: f32) {
        self.w.iter_mut().for_each(|w| *w = w.max(min));
    }

    /// Reflect every parameter into the non-negative half-space. Unlike
    /// [`ParamBuf::clamp_min`], this keeps the initialization magnitude:
    /// clamping a fresh symmetric init would zero half the capacity
    /// before training starts.
    pub fn reflect_abs(&mut self) {
        self.w.iter_mut().for_each(|w| *w = w.abs());
    }
}

/// Adam optimizer hyper-parameters; stateless across buffers (per-buffer
/// moments live in [`ParamBuf`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate η.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical fuzz.
    pub eps: f32,
}

impl Default for Adam {
    fn default() -> Self {
        Adam { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }
}

impl Adam {
    /// Adam with a custom learning rate (the paper's attack uses η = 0.01).
    pub fn with_lr(lr: f32) -> Self {
        Adam { lr, ..Adam::default() }
    }

    /// Apply one update to `buf` from its accumulated gradient, then clear
    /// the gradient.
    pub fn step(&self, buf: &mut ParamBuf) {
        buf.t += 1;
        let t = buf.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for i in 0..buf.w.len() {
            let g = buf.g[i];
            buf.m[i] = self.beta1 * buf.m[i] + (1.0 - self.beta1) * g;
            buf.v[i] = self.beta2 * buf.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = buf.m[i] / bc1;
            let vhat = buf.v[i] / bc2;
            buf.w[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
        buf.zero_grad();
    }

    /// Step a batch of buffers.
    pub fn step_all(&self, bufs: &mut [&mut ParamBuf]) {
        for b in bufs.iter_mut() {
            self.step(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn adam_minimizes_quadratic() {
        // f(w) = (w - 3)^2, gradient 2(w-3): Adam should reach ~3.
        let mut buf = ParamBuf::new(vec![0.0]);
        let adam = Adam::with_lr(0.1);
        for _ in 0..500 {
            buf.g[0] = 2.0 * (buf.w[0] - 3.0);
            adam.step(&mut buf);
        }
        assert!((buf.w[0] - 3.0).abs() < 1e-2, "w = {}", buf.w[0]);
    }

    #[test]
    fn step_clears_gradient() {
        let mut buf = ParamBuf::new(vec![1.0, 2.0]);
        buf.g = vec![0.5, -0.5];
        Adam::default().step(&mut buf);
        assert_eq!(buf.g, vec![0.0, 0.0]);
    }

    #[test]
    fn uniform_init_within_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let buf = ParamBuf::uniform(1000, 0.05, &mut rng);
        assert!(buf.w.iter().all(|&w| (-0.05..=0.05).contains(&w)));
        assert!(buf.w.iter().any(|&w| w != 0.0));
    }

    #[test]
    fn clamp_min_enforces_nonneg() {
        let mut buf = ParamBuf::new(vec![-1.0, 0.5, -0.2]);
        buf.clamp_min(0.0);
        assert_eq!(buf.w, vec![0.0, 0.5, 0.0]);
    }

    #[test]
    fn multi_dim_minimization() {
        let target = [1.0f32, -2.0, 0.5, 4.0];
        let mut buf = ParamBuf::new(vec![0.0; 4]);
        let adam = Adam::with_lr(0.05);
        for _ in 0..2000 {
            for (i, t) in target.iter().enumerate() {
                buf.g[i] = 2.0 * (buf.w[i] - t);
            }
            adam.step(&mut buf);
        }
        for (i, t) in target.iter().enumerate() {
            assert!((buf.w[i] - t).abs() < 1e-2);
        }
    }
}
