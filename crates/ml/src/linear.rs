//! Fully-connected layer.

use crate::param::ParamBuf;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense layer `in_dim → out_dim` operating on single vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    /// Weights, `[out_dim][in_dim]` flattened.
    pub weight: ParamBuf,
    /// Per-output bias.
    pub bias: ParamBuf,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// New layer with Xavier-style uniform init.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        let scale = (1.0 / in_dim as f32).sqrt();
        Linear {
            weight: ParamBuf::uniform(out_dim * in_dim, scale, rng),
            bias: ParamBuf::new(vec![0.0; out_dim]),
            in_dim,
            out_dim,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// `y = W x + b`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != in_dim`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.in_dim, "linear input dimension mismatch");
        let mut y = self.bias.w.clone();
        for (o, yo) in y.iter_mut().enumerate() {
            let row = &self.weight.w[o * self.in_dim..(o + 1) * self.in_dim];
            for (w, xi) in row.iter().zip(x) {
                *yo += w * xi;
            }
        }
        y
    }

    /// Accumulate weight/bias gradients and return the input gradient.
    pub fn backward(&mut self, x: &[f32], grad_out: &[f32]) -> Vec<f32> {
        debug_assert_eq!(grad_out.len(), self.out_dim);
        let mut grad_x = vec![0.0f32; self.in_dim];
        for (o, &g) in grad_out.iter().enumerate() {
            self.bias.g[o] += g;
            let row = &self.weight.w[o * self.in_dim..(o + 1) * self.in_dim];
            let grow = &mut self.weight.g[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                grow[i] += g * x[i];
                grad_x[i] += g * row[i];
            }
        }
        grad_x
    }

    /// Input-gradient-only backward: accumulate `Wᵀ · grad_out` into
    /// `grad_x` without touching parameter gradients (the input gradient
    /// needs only the weights, so the layer stays immutable — no scratch
    /// clone for frozen-model differentiation).
    pub fn backward_input(&self, grad_out: &[f32], grad_x: &mut [f32]) {
        assert_eq!(grad_out.len(), self.out_dim, "output gradient dimension mismatch");
        assert_eq!(grad_x.len(), self.in_dim, "input gradient dimension mismatch");
        for (o, &g) in grad_out.iter().enumerate() {
            let row = &self.weight.w[o * self.in_dim..(o + 1) * self.in_dim];
            for (x_i, &w_i) in grad_x.iter_mut().zip(row) {
                *x_i += g * w_i;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forward_matches_manual() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut l = Linear::new(2, 2, &mut rng);
        l.weight.w = vec![1.0, 2.0, 3.0, 4.0];
        l.bias.w = vec![0.5, -0.5];
        let y = l.forward(&[1.0, 1.0]);
        assert_eq!(y, vec![3.5, 6.5]);
    }

    #[test]
    fn gradient_check() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut l = Linear::new(4, 3, &mut rng);
        let x: Vec<f32> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y = l.forward(&x);
        let grad_out = vec![1.0f32; y.len()];
        l.weight.zero_grad();
        l.bias.zero_grad();
        let grad_x = l.backward(&x, &grad_out);
        let objective = |l: &Linear, x: &[f32]| -> f32 { l.forward(x).iter().sum() };
        let eps = 1e-3;
        for idx in 0..l.weight.len() {
            let mut lp = l.clone();
            lp.weight.w[idx] += eps;
            let mut lm = l.clone();
            lm.weight.w[idx] -= eps;
            let num = (objective(&lp, &x) - objective(&lm, &x)) / (2.0 * eps);
            assert!((num - l.weight.g[idx]).abs() < 1e-2);
        }
        for idx in 0..4 {
            let mut xp = x.clone();
            xp[idx] += eps;
            let mut xm = x.clone();
            xm[idx] -= eps;
            let num = (objective(&l, &xp) - objective(&l, &xm)) / (2.0 * eps);
            assert!((num - grad_x[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn backward_input_matches_full_backward() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut l = Linear::new(5, 3, &mut rng);
        let x: Vec<f32> = (0..5).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let grad_out = vec![0.3f32, -1.2, 0.0];
        l.weight.zero_grad();
        l.bias.zero_grad();
        let full = l.backward(&x, &grad_out);
        let mut fast = vec![0.0f32; 5];
        l.backward_input(&grad_out, &mut fast);
        assert_eq!(full, fast);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_input_size_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let l = Linear::new(3, 1, &mut rng);
        let _ = l.forward(&[0.0; 5]);
    }
}
