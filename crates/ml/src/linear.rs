//! Fully-connected layer.

use crate::param::ParamBuf;
use crate::simd;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense layer `in_dim → out_dim` operating on single vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    /// Weights, `[out_dim][in_dim]` flattened.
    pub weight: ParamBuf,
    /// Per-output bias.
    pub bias: ParamBuf,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// New layer with Xavier-style uniform init.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        let scale = (1.0 / in_dim as f32).sqrt();
        Linear {
            weight: ParamBuf::uniform(out_dim * in_dim, scale, rng),
            bias: ParamBuf::new(vec![0.0; out_dim]),
            in_dim,
            out_dim,
        }
    }

    /// Reconstruct a layer from serialized weights (e.g. a weight
    /// snapshot). Optimizer moments start fresh, which is exact for
    /// inference-only use.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent shapes.
    pub fn from_weights(in_dim: usize, out_dim: usize, weight: Vec<f32>, bias: Vec<f32>) -> Self {
        assert_eq!(weight.len(), out_dim * in_dim, "linear weight shape mismatch");
        assert_eq!(bias.len(), out_dim, "linear bias shape mismatch");
        Linear { weight: ParamBuf::new(weight), bias: ParamBuf::new(bias), in_dim, out_dim }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Component-major (transposed) copy of the weights, `wt[i][o]`
    /// flattened — the layout [`Linear::forward`] streams through
    /// [`simd::axpy`]. Exposed so batch paths can hoist the transpose out
    /// of per-item loops.
    pub fn weight_xposed(&self) -> Vec<f32> {
        let mut wt = vec![0.0f32; self.in_dim * self.out_dim];
        for o in 0..self.out_dim {
            let row = &self.weight.w[o * self.in_dim..(o + 1) * self.in_dim];
            for (i, &v) in row.iter().enumerate() {
                wt[i * self.out_dim + o] = v;
            }
        }
        wt
    }

    /// `y = W x + b` through a prebuilt transposed weight copy
    /// ([`Linear::weight_xposed`]). Per-output accumulation visits input
    /// components in the same ascending order as a row-major loop, so the
    /// result is bit-identical to it while the inner loop runs across
    /// outputs and autovectorizes.
    ///
    /// # Panics
    ///
    /// Panics when `x`, `y`, or `wt` shapes mismatch the layer.
    pub fn forward_xposed_into(&self, wt: &[f32], x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.in_dim, "linear input dimension mismatch");
        assert_eq!(y.len(), self.out_dim, "linear output dimension mismatch");
        assert_eq!(wt.len(), self.in_dim * self.out_dim, "transposed weight shape mismatch");
        y.copy_from_slice(&self.bias.w);
        // Four input components per pass (bit-identical fusion — see
        // `simd::axpy4`), plain axpy for the ragged tail.
        let quads = self.in_dim / 4 * 4;
        for i in (0..quads).step_by(4) {
            let a = [x[i], x[i + 1], x[i + 2], x[i + 3]];
            simd::axpy4(a, &wt[i * self.out_dim..(i + 4) * self.out_dim], y);
        }
        for i in quads..self.in_dim {
            simd::axpy(x[i], &wt[i * self.out_dim..(i + 1) * self.out_dim], y);
        }
    }

    /// `y = W x + b`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != in_dim`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let wt = self.weight_xposed();
        let mut y = vec![0.0f32; self.out_dim];
        self.forward_xposed_into(&wt, x, &mut y);
        y
    }

    /// Accumulate weight/bias gradients and return the input gradient.
    pub fn backward(&mut self, x: &[f32], grad_out: &[f32]) -> Vec<f32> {
        debug_assert_eq!(grad_out.len(), self.out_dim);
        let mut grad_x = vec![0.0f32; self.in_dim];
        for (o, &g) in grad_out.iter().enumerate() {
            self.bias.g[o] += g;
            let row = &self.weight.w[o * self.in_dim..(o + 1) * self.in_dim];
            let grow = &mut self.weight.g[o * self.in_dim..(o + 1) * self.in_dim];
            simd::axpy(g, x, grow);
            simd::axpy(g, row, &mut grad_x);
        }
        grad_x
    }

    /// Input-gradient-only backward: accumulate `Wᵀ · grad_out` into
    /// `grad_x` without touching parameter gradients (the input gradient
    /// needs only the weights, so the layer stays immutable — no scratch
    /// clone for frozen-model differentiation).
    pub fn backward_input(&self, grad_out: &[f32], grad_x: &mut [f32]) {
        assert_eq!(grad_out.len(), self.out_dim, "output gradient dimension mismatch");
        assert_eq!(grad_x.len(), self.in_dim, "input gradient dimension mismatch");
        for (o, &g) in grad_out.iter().enumerate() {
            let row = &self.weight.w[o * self.in_dim..(o + 1) * self.in_dim];
            simd::axpy(g, row, grad_x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forward_matches_manual() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut l = Linear::new(2, 2, &mut rng);
        l.weight.w = vec![1.0, 2.0, 3.0, 4.0];
        l.bias.w = vec![0.5, -0.5];
        let y = l.forward(&[1.0, 1.0]);
        assert_eq!(y, vec![3.5, 6.5]);
    }

    #[test]
    fn gradient_check() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut l = Linear::new(4, 3, &mut rng);
        let x: Vec<f32> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y = l.forward(&x);
        let grad_out = vec![1.0f32; y.len()];
        l.weight.zero_grad();
        l.bias.zero_grad();
        let grad_x = l.backward(&x, &grad_out);
        let objective = |l: &Linear, x: &[f32]| -> f32 { l.forward(x).iter().sum() };
        let eps = 1e-3;
        for idx in 0..l.weight.len() {
            let mut lp = l.clone();
            lp.weight.w[idx] += eps;
            let mut lm = l.clone();
            lm.weight.w[idx] -= eps;
            let num = (objective(&lp, &x) - objective(&lm, &x)) / (2.0 * eps);
            assert!((num - l.weight.g[idx]).abs() < 1e-2);
        }
        for idx in 0..4 {
            let mut xp = x.clone();
            xp[idx] += eps;
            let mut xm = x.clone();
            xm[idx] -= eps;
            let num = (objective(&l, &xp) - objective(&l, &xm)) / (2.0 * eps);
            assert!((num - grad_x[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn backward_input_matches_full_backward() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut l = Linear::new(5, 3, &mut rng);
        let x: Vec<f32> = (0..5).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let grad_out = vec![0.3f32, -1.2, 0.0];
        l.weight.zero_grad();
        l.bias.zero_grad();
        let full = l.backward(&x, &grad_out);
        let mut fast = vec![0.0f32; 5];
        l.backward_input(&grad_out, &mut fast);
        assert_eq!(full, fast);
    }

    /// The transposed kernel must be bit-identical to the row-major
    /// reference across shapes that exercise lane tails.
    #[test]
    fn transposed_forward_is_bit_identical_to_row_major() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        for (in_dim, out_dim) in [(1usize, 1usize), (4, 3), (16, 16), (32, 7), (7, 33)] {
            let l = Linear::new(in_dim, out_dim, &mut rng);
            let x: Vec<f32> = (0..in_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let got = l.forward(&x);
            let mut reference = l.bias.w.clone();
            for (o, yo) in reference.iter_mut().enumerate() {
                let row = &l.weight.w[o * in_dim..(o + 1) * in_dim];
                for (w, xi) in row.iter().zip(&x) {
                    *yo += w * xi;
                }
            }
            for (g, r) in got.iter().zip(&reference) {
                assert_eq!(g.to_bits(), r.to_bits(), "{in_dim}x{out_dim}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_input_size_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let l = Linear::new(3, 1, &mut rng);
        let _ = l.forward(&[0.0; 5]);
    }
}
