//! Versioned, checksummed weight snapshots for O(read) hot reload.
//!
//! A [`Snapshot`] packs every tensor of a trained model into **one**
//! contiguous `f32` payload plus a small header (magic, format version,
//! FNV-1a-64 checksum, string metadata, and a name → span index). The
//! payload lives behind an `Arc<[f32]>`, so N daemon workers sharing a
//! reloaded model share one copy of the weights (the vendored-shim build
//! has no mmap; `Arc` sharing gives the same one-copy property), tensor
//! reads are zero-copy slices into it, and rebuilding a detector from a
//! snapshot costs one file read plus one pass over the payload instead of
//! a retrain.
//!
//! Integer index tensors (e.g. flattened GBDT child links) are stored as
//! `f32` **bit patterns** via `f32::from_bits`/`to_bits` — the payload is
//! only ever moved, never used in arithmetic, so the round trip is exact.
//!
//! Everything here is reachable from the serving daemon's reload path, so
//! the module is panic-free on untrusted input: corrupt bytes surface as
//! [`SnapshotError`], never as a panic.

use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"MPSS";
/// Current format version; bumped on layout changes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Typed failure surface for snapshot encode/decode/reload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Filesystem failure (message carries the underlying error).
    Io(String),
    /// The buffer does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// Format version newer than this build understands.
    UnsupportedVersion(u32),
    /// Stored checksum does not match the decoded bytes.
    ChecksumMismatch { stored: u64, computed: u64 },
    /// Buffer ended inside the named section.
    Truncated(&'static str),
    /// A string field was not valid UTF-8.
    BadUtf8(&'static str),
    /// A tensor span points outside the payload.
    BadSpan(String),
    /// Requested tensor is absent.
    MissingTensor(String),
    /// Requested metadata key is absent.
    MissingMeta(String),
    /// Metadata value failed to parse for its key.
    BadMeta { key: String, value: String },
    /// A tensor has the wrong element count for its declared shape.
    TensorShape { name: String, expected: usize, got: usize },
    /// The `detector` metadata names no known architecture.
    UnknownDetector(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (max {SNAPSHOT_VERSION})")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => {
                write!(f, "snapshot checksum mismatch: stored {stored:#x}, computed {computed:#x}")
            }
            SnapshotError::Truncated(section) => write!(f, "snapshot truncated in {section}"),
            SnapshotError::BadUtf8(section) => write!(f, "snapshot has invalid utf-8 in {section}"),
            SnapshotError::BadSpan(name) => write!(f, "tensor {name} span exceeds payload"),
            SnapshotError::MissingTensor(name) => write!(f, "snapshot has no tensor {name:?}"),
            SnapshotError::MissingMeta(key) => write!(f, "snapshot has no meta key {key:?}"),
            SnapshotError::BadMeta { key, value } => {
                write!(f, "snapshot meta {key:?} has unparseable value {value:?}")
            }
            SnapshotError::TensorShape { name, expected, got } => {
                write!(f, "tensor {name} has {got} elements, expected {expected}")
            }
            SnapshotError::UnknownDetector(name) => {
                write!(f, "snapshot names unknown detector architecture {name:?}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit over `bytes` — small, dependency-free, and plenty to
/// catch torn writes and bit rot on the reload path.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Accumulates metadata and tensors, then freezes into a [`Snapshot`].
#[derive(Debug, Default)]
pub struct SnapshotBuilder {
    meta: Vec<(String, String)>,
    index: Vec<(String, usize, usize)>,
    payload: Vec<f32>,
}

impl SnapshotBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        SnapshotBuilder::default()
    }

    /// Record a string metadata pair (config dims, architecture name, …).
    pub fn meta(&mut self, key: &str, value: impl fmt::Display) -> &mut Self {
        self.meta.push((key.to_owned(), value.to_string()));
        self
    }

    /// Append an f32 tensor to the payload under `name`.
    pub fn tensor(&mut self, name: &str, data: &[f32]) -> &mut Self {
        let offset = self.payload.len();
        self.payload.extend_from_slice(data);
        self.index.push((name.to_owned(), offset, data.len()));
        self
    }

    /// Append a u32 tensor stored as f32 bit patterns (exact round trip;
    /// the payload is never used in arithmetic).
    pub fn tensor_u32(&mut self, name: &str, data: &[u32]) -> &mut Self {
        let offset = self.payload.len();
        self.payload.extend(data.iter().map(|&u| f32::from_bits(u)));
        self.index.push((name.to_owned(), offset, data.len()));
        self
    }

    /// Freeze into an immutable, shareable [`Snapshot`].
    pub fn finish(self) -> Snapshot {
        Snapshot {
            version: SNAPSHOT_VERSION,
            meta: self.meta,
            index: self.index,
            payload: Arc::from(self.payload),
        }
    }
}

/// An immutable snapshot of trained weights: one shared payload, a tensor
/// index, and string metadata. Cloning is O(1) (the payload is `Arc`ed).
#[derive(Debug, Clone)]
pub struct Snapshot {
    version: u32,
    meta: Vec<(String, String)>,
    index: Vec<(String, usize, usize)>,
    payload: Arc<[f32]>,
}

impl Snapshot {
    /// Format version this snapshot was decoded from (or built at).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Metadata value for `key`, if present.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Metadata value for `key`, parsed as `T`.
    pub fn meta_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, SnapshotError> {
        let value = self.meta(key).ok_or_else(|| SnapshotError::MissingMeta(key.to_owned()))?;
        value.parse().map_err(|_| SnapshotError::BadMeta {
            key: key.to_owned(),
            value: value.to_owned(),
        })
    }

    /// Zero-copy view of tensor `name`.
    pub fn tensor(&self, name: &str) -> Result<&[f32], SnapshotError> {
        let (_, offset, len) = self
            .index
            .iter()
            .find(|(n, _, _)| n == name)
            .ok_or_else(|| SnapshotError::MissingTensor(name.to_owned()))?;
        self.payload
            .get(*offset..offset + len)
            .ok_or_else(|| SnapshotError::BadSpan(name.to_owned()))
    }

    /// Tensor `name` with a required element count.
    pub fn tensor_sized(&self, name: &str, expected: usize) -> Result<&[f32], SnapshotError> {
        let t = self.tensor(name)?;
        if t.len() != expected {
            return Err(SnapshotError::TensorShape {
                name: name.to_owned(),
                expected,
                got: t.len(),
            });
        }
        Ok(t)
    }

    /// Tensor `name` decoded back to the u32s it was stored from.
    pub fn tensor_u32(&self, name: &str) -> Result<Vec<u32>, SnapshotError> {
        Ok(self.tensor(name)?.iter().map(|v| v.to_bits()).collect())
    }

    /// Single-element tensor `name` as a scalar.
    pub fn tensor_scalar(&self, name: &str) -> Result<f32, SnapshotError> {
        let t = self.tensor_sized(name, 1)?;
        t.first().copied().ok_or_else(|| SnapshotError::MissingTensor(name.to_owned()))
    }

    /// The shared payload; clones are O(1) handle copies onto one buffer.
    pub fn payload(&self) -> Arc<[f32]> {
        Arc::clone(&self.payload)
    }

    /// Serialize: header (magic, version, checksum of everything after
    /// the header), meta section, index section, payload words (LE).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::new();
        push_u32(&mut body, self.meta.len() as u32);
        for (k, v) in &self.meta {
            push_str(&mut body, k);
            push_str(&mut body, v);
        }
        push_u32(&mut body, self.index.len() as u32);
        for (name, offset, len) in &self.index {
            push_str(&mut body, name);
            push_u32(&mut body, *offset as u32);
            push_u32(&mut body, *len as u32);
        }
        push_u32(&mut body, self.payload.len() as u32);
        for v in self.payload.iter() {
            body.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let mut out = Vec::with_capacity(16 + body.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&fnv1a64(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decode a snapshot, verifying magic, version, and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < 16 {
            return Err(SnapshotError::Truncated("header"));
        }
        if bytes[..4] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = read_u32_at(bytes, 4).ok_or(SnapshotError::Truncated("header"))?;
        if version == 0 || version > SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let stored = read_u64_at(bytes, 8).ok_or(SnapshotError::Truncated("header"))?;
        let body = &bytes[16..];
        let computed = fnv1a64(body);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        let mut cursor = Cursor { bytes: body, at: 0 };
        let meta_count = cursor.u32("meta count")? as usize;
        let mut meta = Vec::with_capacity(meta_count.min(1024));
        for _ in 0..meta_count {
            let k = cursor.string("meta key")?;
            let v = cursor.string("meta value")?;
            meta.push((k, v));
        }
        let tensor_count = cursor.u32("tensor count")? as usize;
        let mut index = Vec::with_capacity(tensor_count.min(1024));
        for _ in 0..tensor_count {
            let name = cursor.string("tensor name")?;
            let offset = cursor.u32("tensor offset")? as usize;
            let len = cursor.u32("tensor length")? as usize;
            index.push((name, offset, len));
        }
        let words = cursor.u32("payload length")? as usize;
        let mut payload = Vec::new();
        payload.try_reserve_exact(words).map_err(|_| SnapshotError::Truncated("payload"))?;
        for _ in 0..words {
            payload.push(f32::from_bits(cursor.u32("payload")?));
        }
        for (name, offset, len) in &index {
            match offset.checked_add(*len) {
                Some(end) if end <= payload.len() => {}
                _ => return Err(SnapshotError::BadSpan(name.clone())),
            }
        }
        Ok(Snapshot { version, meta, index, payload: Arc::from(payload) })
    }

    /// Write the serialized snapshot to `path` (atomic enough for the
    /// reload path: a torn write fails the checksum, never half-loads).
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_bytes()).map_err(|e| SnapshotError::Io(e.to_string()))
    }

    /// Read and decode a snapshot from `path`.
    pub fn load_file(path: impl AsRef<Path>) -> Result<Snapshot, SnapshotError> {
        let bytes = std::fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Snapshot::from_bytes(&bytes)
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn read_u32_at(bytes: &[u8], at: usize) -> Option<u32> {
    let span = bytes.get(at..at + 4)?;
    Some(u32::from_le_bytes([span[0], span[1], span[2], span[3]]))
}

fn read_u64_at(bytes: &[u8], at: usize) -> Option<u64> {
    let span = bytes.get(at..at + 8)?;
    let mut b = [0u8; 8];
    b.copy_from_slice(span);
    Some(u64::from_le_bytes(b))
}

/// Bounds-checked little-endian reader over the post-header body.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn u32(&mut self, section: &'static str) -> Result<u32, SnapshotError> {
        let v = read_u32_at(self.bytes, self.at).ok_or(SnapshotError::Truncated(section))?;
        self.at += 4;
        Ok(v)
    }

    fn string(&mut self, section: &'static str) -> Result<String, SnapshotError> {
        let len = self.u32(section)? as usize;
        let span = self
            .bytes
            .get(self.at..self.at.checked_add(len).ok_or(SnapshotError::Truncated(section))?)
            .ok_or(SnapshotError::Truncated(section))?;
        self.at += len;
        std::str::from_utf8(span)
            .map(str::to_owned)
            .map_err(|_| SnapshotError::BadUtf8(section))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut b = SnapshotBuilder::new();
        b.meta("detector", "MalConv")
            .meta("window", 16384)
            .tensor("conv.weight", &[1.5, -2.25, 0.0, f32::MIN_POSITIVE])
            .tensor("threshold", &[0.5])
            .tensor_u32("tree.left", &[0, 7, u32::MAX, 42]);
        b.finish()
    }

    #[test]
    fn round_trip_is_exact() {
        let snap = sample();
        let back = Snapshot::from_bytes(&snap.to_bytes()).expect("round trip decodes");
        assert_eq!(back.version(), SNAPSHOT_VERSION);
        assert_eq!(back.meta("detector"), Some("MalConv"));
        assert_eq!(back.meta_parsed::<usize>("window").expect("parses"), 16384);
        let w = back.tensor("conv.weight").expect("tensor present");
        for (a, b) in w.iter().zip(&[1.5f32, -2.25, 0.0, f32::MIN_POSITIVE]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.tensor_scalar("threshold").expect("scalar"), 0.5);
        // u32 bit patterns survive, including the NaN-patterned MAX.
        assert_eq!(back.tensor_u32("tree.left").expect("u32s"), vec![0, 7, u32::MAX, 42]);
    }

    #[test]
    fn corruption_fails_the_checksum() {
        let mut bytes = sample().to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_and_bad_magic_are_typed() {
        let bytes = sample().to_bytes();
        assert!(matches!(
            Snapshot::from_bytes(&bytes[..8]),
            Err(SnapshotError::Truncated("header"))
        ));
        let mut magic = bytes.clone();
        magic[0] = b'X';
        assert!(matches!(Snapshot::from_bytes(&magic), Err(SnapshotError::BadMagic)));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[4..8].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        // Version bump invalidates nothing else, so recompute the checksum
        // to isolate the version check.
        let body_hash = fnv1a64(&bytes[16..]);
        bytes[8..16].copy_from_slice(&body_hash.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion(v)) if v == SNAPSHOT_VERSION + 1
        ));
    }

    #[test]
    fn missing_names_are_typed() {
        let snap = sample();
        assert_eq!(
            snap.tensor("nope"),
            Err(SnapshotError::MissingTensor("nope".to_owned()))
        );
        assert_eq!(
            snap.meta_parsed::<usize>("absent"),
            Err(SnapshotError::MissingMeta("absent".to_owned()))
        );
        assert!(matches!(
            snap.meta_parsed::<usize>("detector"),
            Err(SnapshotError::BadMeta { .. })
        ));
    }

    #[test]
    fn clones_share_one_payload() {
        let snap = sample();
        let other = snap.clone();
        assert!(Arc::ptr_eq(&snap.payload(), &other.payload()));
    }

    #[test]
    fn file_round_trip() {
        let snap = sample();
        let path = std::env::temp_dir().join(format!("mpass-snap-test-{}.bin", std::process::id()));
        snap.write_file(&path).expect("writes");
        let back = Snapshot::load_file(&path).expect("loads");
        let _ = std::fs::remove_file(&path);
        assert_eq!(back.meta("detector"), Some("MalConv"));
        assert_eq!(back.tensor_u32("tree.left").expect("u32s"), vec![0, 7, u32::MAX, 42]);
    }
}
