//! Global max pooling over convolution windows (MalConv's temporal-max
//! aggregation).

/// Max over windows per channel. Input is `[windows × channels]` flat;
/// returns `(pooled, argmax)` where both have length `channels` and
/// `argmax[c]` is the winning window index, needed for backprop.
///
/// # Panics
///
/// Panics when the input is empty or ragged.
pub fn global_max_pool(x: &[f32], channels: usize) -> (Vec<f32>, Vec<usize>) {
    assert!(channels > 0 && !x.is_empty(), "empty pooling input");
    assert_eq!(x.len() % channels, 0, "ragged pooling input");
    let windows = x.len() / channels;
    let mut pooled = vec![f32::NEG_INFINITY; channels];
    let mut argmax = vec![0usize; channels];
    for w in 0..windows {
        for c in 0..channels {
            let v = x[w * channels + c];
            if v > pooled[c] {
                pooled[c] = v;
                argmax[c] = w;
            }
        }
    }
    (pooled, argmax)
}

/// Scatter the pooled gradient back to the winning windows.
pub fn global_max_pool_backward(
    grad_pooled: &[f32],
    argmax: &[usize],
    windows: usize,
    channels: usize,
) -> Vec<f32> {
    debug_assert_eq!(grad_pooled.len(), channels);
    let mut grad_x = vec![0.0f32; windows * channels];
    for c in 0..channels {
        grad_x[argmax[c] * channels + c] = grad_pooled[c];
    }
    grad_x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_max_per_channel() {
        // 3 windows × 2 channels.
        let x = vec![1.0, 9.0, 5.0, 2.0, 3.0, 4.0];
        let (pooled, argmax) = global_max_pool(&x, 2);
        assert_eq!(pooled, vec![5.0, 9.0]);
        assert_eq!(argmax, vec![1, 0]);
    }

    #[test]
    fn backward_scatters_to_winner() {
        let x = vec![1.0, 9.0, 5.0, 2.0, 3.0, 4.0];
        let (_, argmax) = global_max_pool(&x, 2);
        let g = global_max_pool_backward(&[10.0, 20.0], &argmax, 3, 2);
        assert_eq!(g, vec![0.0, 20.0, 10.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn single_window_identity() {
        let x = vec![3.0, -1.0];
        let (pooled, argmax) = global_max_pool(&x, 2);
        assert_eq!(pooled, x);
        assert_eq!(argmax, vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "empty pooling input")]
    fn empty_panics() {
        let _ = global_max_pool(&[], 4);
    }
}
