//! Regression replay of the checked-in malformed-binary corpus.
//!
//! Every fixture under `tests/fixtures/malformed/` is a hostile input
//! that maps to a distinct historical failure mode of the ingestion
//! layer (regenerate with `cargo run -p mpass-fuzz --bin gen_fixtures`).
//! PE fixtures are plain `*.bin`, Mach-O fixtures `macho_*.bin`; each
//! must keep satisfying its format's full fuzz harness: parsing never
//! panics, accepted images round-trip, and execution terminates
//! gracefully under resource limits.

use mpass_fuzz::harness::{check_auto_bytes, check_bytes, check_macho_bytes};
use mpass_macho::MachoFile;
use mpass_pe::PeFile;
use mpass_sandbox::Sandbox;

fn corpus() -> Vec<(String, Vec<u8>)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/malformed");
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("fixture directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "bin"))
        .map(|p| {
            let name = p.file_name().expect("file name").to_string_lossy().into_owned();
            (name, std::fs::read(&p).expect("readable fixture"))
        })
        .collect();
    out.sort();
    out
}

#[test]
fn every_fixture_satisfies_the_ingestion_contracts() {
    let corpus = corpus();
    let n_macho = corpus.iter().filter(|(n, _)| n.starts_with("macho_")).count();
    assert!(corpus.len() >= 16, "expected the checked-in corpus, found {}", corpus.len());
    assert!(n_macho >= 8, "expected the Mach-O half of the corpus, found {n_macho}");
    for (name, bytes) in &corpus {
        let result = if name.starts_with("macho_") {
            check_macho_bytes(bytes)
        } else {
            check_bytes(bytes)
        };
        if let Err(why) = result {
            panic!("{name}: {why}");
        }
    }
}

#[test]
fn format_dispatch_satisfies_the_contracts_on_the_corpus() {
    // The auto-detect layer must route every fixture to a backend that
    // honors its contracts (or reject it gracefully), regardless of the
    // fixture's nominal format.
    for (name, bytes) in corpus() {
        if let Err(why) = check_auto_bytes(&bytes) {
            panic!("{name}: {why}");
        }
    }
}

#[test]
fn strict_parsing_never_panics_on_the_corpus() {
    for (name, bytes) in corpus() {
        // Outcome is irrelevant — graceful acceptance or typed rejection
        // both pass; only a panic (caught by the test harness as an
        // abort of this test) would fail.
        let _ = std::panic::catch_unwind(|| PeFile::parse_strict(&bytes))
            .unwrap_or_else(|_| panic!("{name}: parse_strict panicked"));
        let _ = std::panic::catch_unwind(|| MachoFile::parse_strict(&bytes))
            .unwrap_or_else(|_| panic!("{name}: Mach-O parse_strict panicked"));
    }
}

#[test]
fn sandbox_runs_of_the_corpus_terminate() {
    let sandbox = Sandbox::with_step_limit(100_000);
    for (name, bytes) in corpus() {
        // run() returns None for unparseable fixtures; parseable ones
        // must come back with *some* outcome rather than hanging or
        // panicking.
        let _ = std::panic::catch_unwind(|| sandbox.execute(&bytes))
            .unwrap_or_else(|_| panic!("{name}: sandbox run panicked"));
    }
}
