//! End-to-end attack contract: in a freshly trained world, MPass must
//! evade a hard-label target with few queries, preserve functionality on
//! every successful AE, and clearly beat the random-data control — the
//! repository-level statement of the paper's headline claims.

use mpass::baselines::RandomData;
use mpass::core::attack::metrics::summarize;
use mpass::core::{Attack, HardLabelTarget, MPassAttack, MPassConfig};
use mpass::sandbox::Sandbox;
use mpass_experiments::{World, WorldConfig};

fn quick_world() -> World {
    let mut cfg = WorldConfig::quick();
    cfg.attack_samples = 6;
    World::build(cfg)
}

#[test]
fn mpass_beats_random_data_on_malconv() {
    let world = quick_world();
    let sandbox = Sandbox::new();

    let mut mpass = MPassAttack::new(
        world.known_models_excluding("MalConv"),
        &world.pool,
        MPassConfig::builder().build().expect("default MPass config is valid"),
    );
    let mut control = RandomData::new(15, 1);

    let mut mpass_outcomes = Vec::new();
    let mut control_outcomes = Vec::new();
    for s in world.attack_set(&world.malconv) {
        let mut oracle = HardLabelTarget::new(&world.malconv, world.config.max_queries);
        let outcome = mpass.attack(s, &mut oracle);
        if let Some(ae) = &outcome.adversarial {
            let v = sandbox.verify_functionality(&s.bytes, ae);
            assert!(v.is_preserved(), "{}: {v}", s.name);
            // The AE must genuinely differ from the original.
            assert_ne!(ae, &s.bytes);
        }
        mpass_outcomes.push(outcome);

        let mut oracle = HardLabelTarget::new(&world.malconv, world.config.max_queries);
        control_outcomes.push(control.attack(s, &mut oracle));
    }
    let mpass_stats = summarize(&mpass_outcomes);
    let control_stats = summarize(&control_outcomes);
    assert!(
        mpass_stats.asr >= control_stats.asr,
        "MPass {} vs random-data {}",
        mpass_stats.asr,
        control_stats.asr
    );
    assert!(mpass_stats.asr >= 50.0, "MPass ASR {}", mpass_stats.asr);
    if mpass_stats.asr > 0.0 {
        assert!(mpass_stats.avq <= 30.0, "AVQ {}", mpass_stats.avq);
    }
}

#[test]
fn hard_label_oracle_counts_and_caps_queries() {
    let world = quick_world();
    let sample = world.dataset.malware()[0];
    let mut oracle = HardLabelTarget::new(&world.lightgbm, 5);
    for _ in 0..5 {
        assert!(oracle.query(&sample.bytes).is_ok());
    }
    assert!(oracle.query(&sample.bytes).is_err());
    assert_eq!(oracle.queries(), 5);
}

#[test]
fn attack_set_only_contains_detected_malware() {
    let world = quick_world();
    for (name, det) in world.offline_targets() {
        for s in world.attack_set(det) {
            assert_eq!(
                det.classify(&s.bytes),
                mpass::detectors::Verdict::Malicious,
                "{name} attack set contains undetected {}",
                s.name
            );
        }
    }
}

#[test]
fn detectors_generalize_to_held_out_samples() {
    let world = quick_world();
    let (_, test) = world.dataset.split(5);
    for (name, det) in world.offline_targets() {
        let pairs: Vec<(f32, f32)> =
            test.iter().map(|s| (det.score(&s.bytes), s.label.target())).collect();
        let auc = mpass::ml::metrics::auc(&pairs);
        // The non-negativity constraint costs accuracy (Fleshman et al.
        // report the same trade-off), and the quick config trains tiny
        // models on a tiny corpus — hold NonNeg to a looser bound.
        // With only 8 held-out samples AUC moves in 1/16 steps; these are
        // sanity floors, not benchmarks.
        let floor = if name == "NonNeg" { 0.6 } else { 0.7 };
        assert!(auc >= floor, "{name} test AUC {auc}");
    }
}
