//! Resilience suite for the scoring daemon: the four robustness
//! properties under real sockets and real concurrency.
//!
//! * **Overload shedding** — a slow model behind a tiny queue refuses
//!   surplus load with typed `Overloaded`/`DeadlineExceeded` responses,
//!   every refusal is accounted, and the latency of *admitted* requests
//!   stays bounded instead of collapsing.
//! * **Hot reload** — concurrent streaming clients plus reloads: every
//!   request is answered, epochs span the swap, nothing drops.
//! * **Kill-and-restart soak** — a seeded `UnreliableOracle` behind the
//!   daemon, graceful drain, then a restart on the same socket path
//!   (past a stale socket file) serving again.
//! * **Typed admission refusals** — budget, breaker, and rate-limit
//!   refusals arrive as their protocol variants, not prose.

use mpass_detectors::{Detector, FaultProfile, Oracle, UnreliableOracle};
use mpass_engine::OracleFault;
use mpass_serve::{
    ReloadableModel, Response, ScoredVerdict, ServeClient, ServeError, ServeSummary, ServeTarget,
    Server, ServerConfig, TenantPolicy,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct Fixed(f32);

impl Detector for Fixed {
    fn name(&self) -> &str {
        "fixed"
    }
    fn score(&self, _: &[u8]) -> f32 {
        self.0
    }
}

/// A model that takes real wall-clock time per item — the load
/// generator for overload tests.
struct Slow {
    score: f32,
    delay: Duration,
}

impl Detector for Slow {
    fn name(&self) -> &str {
        "slow"
    }
    fn score(&self, _: &[u8]) -> f32 {
        std::thread::sleep(self.delay);
        self.score
    }
}

fn temp_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mpass-resilience-{tag}-{}.sock", std::process::id()))
}

/// Admission limits loose enough to never interfere with a test that is
/// probing a *different* property.
fn permissive_tenants() -> TenantPolicy {
    TenantPolicy {
        rate_per_sec: 1_000_000.0,
        burst: 10_000,
        budget: None,
        breaker_threshold: 0,
        ..TenantPolicy::default()
    }
}

/// What one client thread saw, by response type.
#[derive(Debug, Default)]
struct Tally {
    scored: u64,
    overloaded: u64,
    deadline: u64,
    upstream: u64,
    epochs: Vec<u64>,
    unexpected: Vec<String>,
}

impl Tally {
    fn absorb(&mut self, response: Result<Response, String>) {
        match response {
            Ok(Response::Score(resp)) => {
                self.scored += 1;
                self.epochs.push(resp.epoch);
            }
            Ok(Response::Error(e)) => match e.error {
                ServeError::Overloaded { .. } => self.overloaded += 1,
                ServeError::DeadlineExceeded => self.deadline += 1,
                ServeError::Upstream { .. } => self.upstream += 1,
                other => self.unexpected.push(format!("{other:?}")),
            },
            Ok(other) => self.unexpected.push(format!("{other:?}")),
            Err(e) => self.unexpected.push(e),
        }
    }
}

/// Boot a daemon over a static `Fixed(0.9)` model, drive it from the
/// main thread, shut it down, and return what the driver produced plus
/// the drain summary.
fn with_daemon<T>(
    tag: &str,
    configure: impl FnOnce(&mut ServerConfig),
    drive: impl FnOnce(&mut ServeClient) -> T,
) -> (T, ServeSummary) {
    let model = ReloadableModel::new(Arc::new(Fixed(0.9)), |_| Err("static".to_owned()));
    let socket = temp_socket(tag);
    let mut config = ServerConfig { socket: socket.clone(), ..ServerConfig::default() };
    configure(&mut config);
    let server = Server::new(&model, config);
    std::thread::scope(|scope| {
        let server = &server;
        let daemon = scope.spawn(move || server.run());
        let mut client = ServeClient::connect_retry(&socket, Duration::from_secs(30)).unwrap();
        let out = drive(&mut client);
        client.shutdown(9_999_999).unwrap();
        let summary = daemon.join().expect("daemon panicked").expect("daemon errored");
        (out, summary)
    })
}

#[test]
fn overload_sheds_with_typed_refusals_and_bounded_admitted_latency() {
    let model = ReloadableModel::new(
        Arc::new(Slow { score: 0.9, delay: Duration::from_millis(15) }),
        |_| Err("static".to_owned()),
    );
    let socket = temp_socket("overload");
    let server = Server::new(
        &model,
        ServerConfig {
            socket: socket.clone(),
            max_batch: 4,
            linger: Duration::from_millis(1),
            queue_capacity: 2,
            default_deadline: Duration::from_millis(150),
            tenant: permissive_tenants(),
            ..ServerConfig::default()
        },
    );
    let (tallies, summary) = std::thread::scope(|scope| {
        let server = &server;
        let daemon = scope.spawn(move || server.run());
        // 12 concurrent clients × 3 requests against a queue of 2 and a
        // model that needs 15 ms per item: far past capacity.
        let clients: Vec<_> = (0..12)
            .map(|c| {
                let socket = socket.clone();
                scope.spawn(move || {
                    let mut client =
                        ServeClient::connect_retry(&socket, Duration::from_secs(30)).unwrap();
                    let mut tally = Tally::default();
                    for r in 0..3u64 {
                        let response =
                            client.score(r, &format!("tenant-{c}"), b"MZ overload", Some(150));
                        tally.absorb(response);
                    }
                    tally
                })
            })
            .collect();
        let tallies: Vec<Tally> =
            clients.into_iter().map(|h| h.join().expect("client panicked")).collect();
        let mut control = ServeClient::connect_retry(&socket, Duration::from_secs(30)).unwrap();
        control.shutdown(99).unwrap();
        let summary = daemon.join().expect("daemon panicked").expect("daemon errored");
        (tallies, summary)
    });

    let scored: u64 = tallies.iter().map(|t| t.scored).sum();
    let refused: u64 = tallies.iter().map(|t| t.overloaded + t.deadline).sum();
    let unexpected: Vec<_> = tallies.iter().flat_map(|t| &t.unexpected).collect();
    assert!(unexpected.is_empty(), "only Score/Overloaded/DeadlineExceeded allowed: {unexpected:?}");
    assert!(scored >= 1, "some requests must get through");
    assert!(refused >= 1, "a 2-deep queue under 12 clients must shed");
    assert_eq!(scored + refused, 36, "every request got exactly one answer");

    // Accounting: everything admitted either completed or was shed.
    assert_eq!(summary.rejected, 0);
    assert_eq!(summary.admitted, 36);
    assert_eq!(summary.completed, scored);
    assert_eq!(summary.shed, refused);
    assert_eq!(summary.admitted, summary.completed + summary.shed);

    // The point of shedding: admitted latency is bounded by the deadline
    // plus one batch's scoring time, not by the 36-deep backlog.
    assert!(
        summary.p99_ms < 1_000.0,
        "admitted p99 {} ms must stay bounded under overload",
        summary.p99_ms
    );
}

#[test]
fn hot_reload_never_drops_in_flight_requests() {
    let model = ReloadableModel::new(Arc::new(Fixed(0.9)), |epoch| {
        Ok(Arc::new(Fixed(if epoch.is_multiple_of(2) { 0.2 } else { 0.9 })) as Arc<dyn Detector>)
    });
    let socket = temp_socket("reload");
    let server = Server::new(
        &model,
        ServerConfig {
            socket: socket.clone(),
            max_batch: 8,
            linger: Duration::from_millis(1),
            queue_capacity: 1_024,
            default_deadline: Duration::from_secs(10),
            tenant: permissive_tenants(),
            ..ServerConfig::default()
        },
    );
    let (tallies, summary) = std::thread::scope(|scope| {
        let server = &server;
        let daemon = scope.spawn(move || server.run());
        // Four streaming writers...
        let writers: Vec<_> = (0..4)
            .map(|c| {
                let socket = socket.clone();
                scope.spawn(move || {
                    let mut client =
                        ServeClient::connect_retry(&socket, Duration::from_secs(30)).unwrap();
                    let mut tally = Tally::default();
                    for r in 0..30u64 {
                        tally.absorb(client.score(r, &format!("writer-{c}"), b"MZ stream", None));
                    }
                    tally
                })
            })
            .collect();
        // ...while the control connection swaps the model three times,
        // scoring across each swap to pin the epoch sequence.
        let mut control = ServeClient::connect_retry(&socket, Duration::from_secs(30)).unwrap();
        match control.score(1_000, "control", b"MZ control", None).unwrap() {
            Response::Score(resp) => assert_eq!(resp.epoch, 1),
            other => panic!("expected a score, got {other:?}"),
        }
        for round in 0..3u64 {
            let expected = round + 2;
            match control.reload(2_000 + round).unwrap() {
                Response::Reloaded { epoch, .. } => assert_eq!(epoch, expected),
                other => panic!("expected reload ack, got {other:?}"),
            }
            match control.score(3_000 + round, "control", b"MZ control", None).unwrap() {
                Response::Score(resp) => assert_eq!(resp.epoch, expected),
                other => panic!("expected a score, got {other:?}"),
            }
        }
        let tallies: Vec<Tally> =
            writers.into_iter().map(|h| h.join().expect("writer panicked")).collect();
        control.shutdown(9_999).unwrap();
        let summary = daemon.join().expect("daemon panicked").expect("daemon errored");
        (tallies, summary)
    });

    // Zero drops: all 120 streamed requests answered with verdicts.
    let scored: u64 = tallies.iter().map(|t| t.scored).sum();
    let unexpected: Vec<_> = tallies.iter().flat_map(|t| &t.unexpected).collect();
    assert!(unexpected.is_empty(), "reload must not surface errors: {unexpected:?}");
    assert_eq!(scored, 120);
    // Every verdict names a real epoch from the swap sequence.
    assert!(tallies.iter().flat_map(|t| &t.epochs).all(|&e| (1..=4).contains(&e)));

    assert_eq!(summary.reloads, 3);
    assert_eq!(summary.admitted, 124, "120 streamed + 4 control scores");
    assert_eq!(summary.completed, 124, "reload dropped an in-flight request");
    assert_eq!(summary.shed, 0);
    assert_eq!(summary.client_gone, 0);
}

/// A fault-injecting channel *around* a hot-reloadable slot: what a
/// daemon fronting a flaky remote scoring service looks like. The
/// oracle keeps one seeded fault schedule across batches; the epoch is
/// read alongside each batch (hard-label channels have no snapshot to
/// carry, so this is the honest epoch for test purposes).
struct FlakyTarget<'a> {
    model: &'a ReloadableModel,
    oracle: UnreliableOracle<'a>,
}

impl ServeTarget for FlakyTarget<'_> {
    fn epoch(&self) -> u64 {
        self.model.epoch()
    }

    fn reload(&self) -> Result<u64, String> {
        self.model.reload()
    }

    fn score_batch(&self, items: &[&[u8]]) -> (u64, Vec<Result<ScoredVerdict, OracleFault>>) {
        let epoch = self.model.epoch();
        let mut out = Vec::with_capacity(items.len());
        self.oracle.submit_batch(items, &mut out);
        let results = out
            .into_iter()
            .map(|r| r.map(|verdict| ScoredVerdict { verdict, score: None }))
            .collect();
        (epoch, results)
    }
}

#[test]
fn soak_with_flaky_oracle_then_restart_on_the_same_socket() {
    let model = ReloadableModel::new(Arc::new(Fixed(0.9)), |_| {
        Ok(Arc::new(Fixed(0.2)) as Arc<dyn Detector>)
    });
    let target = FlakyTarget {
        model: &model,
        oracle: UnreliableOracle::new(model.slot(), FaultProfile::seeded(0x50AC)),
    };
    let socket = temp_socket("soak");
    let config = ServerConfig {
        socket: socket.clone(),
        max_batch: 8,
        linger: Duration::from_millis(1),
        queue_capacity: 1_024,
        default_deadline: Duration::from_secs(10),
        tenant: permissive_tenants(),
        ..ServerConfig::default()
    };

    // Phase A: sustained load with injected upstream faults and one
    // mid-stream reload, then a graceful drain.
    let server = Server::new(&target, config.clone());
    let (tallies, summary) = std::thread::scope(|scope| {
        let server = &server;
        let daemon = scope.spawn(move || server.run());
        let clients: Vec<_> = (0..6)
            .map(|c| {
                let socket = socket.clone();
                scope.spawn(move || {
                    let mut client =
                        ServeClient::connect_retry(&socket, Duration::from_secs(30)).unwrap();
                    let mut tally = Tally::default();
                    for r in 0..10u64 {
                        tally.absorb(client.score(r, &format!("soak-{c}"), b"MZ soak", None));
                    }
                    tally
                })
            })
            .collect();
        let mut control = ServeClient::connect_retry(&socket, Duration::from_secs(30)).unwrap();
        match control.reload(500).unwrap() {
            Response::Reloaded { epoch, .. } => assert_eq!(epoch, 2),
            other => panic!("expected reload ack, got {other:?}"),
        }
        let tallies: Vec<Tally> =
            clients.into_iter().map(|h| h.join().expect("client panicked")).collect();
        control.shutdown(999).unwrap();
        let summary = daemon.join().expect("daemon panicked").expect("daemon errored");
        (tallies, summary)
    });

    let scored: u64 = tallies.iter().map(|t| t.scored).sum();
    let upstream: u64 = tallies.iter().map(|t| t.upstream).sum();
    let unexpected: Vec<_> = tallies.iter().flat_map(|t| &t.unexpected).collect();
    assert!(unexpected.is_empty(), "only Score/Upstream allowed here: {unexpected:?}");
    assert_eq!(scored + upstream, 60, "every request answered exactly once");
    assert!(upstream > 0, "the seeded profile must inject faults across 60 submissions");
    assert!(scored > 0, "most submissions still deliver");
    // Upstream faults are admitted but neither completed nor shed — the
    // full admission ledger.
    assert_eq!(summary.admitted, 60);
    assert_eq!(summary.completed, scored);
    assert_eq!(summary.admitted, summary.completed + summary.shed + upstream);
    assert_eq!(summary.reloads, 1);
    assert!(!socket.exists(), "drain must remove the socket file");

    // Phase B: a crashed daemon leaves a stale socket file behind; a
    // restart on the same path must replace it and serve again.
    let stale = std::os::unix::net::UnixListener::bind(&socket).expect("create stale socket");
    drop(stale); // dropping the listener does not unlink the path
    assert!(socket.exists(), "stale socket file is in place");

    let server = Server::new(&target, config);
    let summary = std::thread::scope(|scope| {
        let server = &server;
        let daemon = scope.spawn(move || server.run());
        let mut client = ServeClient::connect_retry(&socket, Duration::from_secs(30)).unwrap();
        match client.ping(1).unwrap() {
            Response::Pong { epoch, .. } => assert_eq!(epoch, 2, "model survives the restart"),
            other => panic!("expected pong, got {other:?}"),
        }
        let mut tally = Tally::default();
        for r in 0..5u64 {
            tally.absorb(client.score(r, "phoenix", b"MZ reborn", None));
        }
        assert!(tally.unexpected.is_empty(), "restart serves cleanly: {:?}", tally.unexpected);
        assert_eq!(tally.scored + tally.upstream, 5);
        client.shutdown(6).unwrap();
        daemon.join().expect("daemon panicked").expect("daemon errored")
    });
    assert_eq!(summary.admitted, 5);
    assert!(!socket.exists(), "second drain removes the socket again");
}

#[test]
fn tenant_budget_exhaustion_is_a_typed_refusal() {
    let (responses, summary) = with_daemon(
        "budget",
        |config| {
            config.tenant = TenantPolicy { budget: Some(2), ..permissive_tenants() };
        },
        |client| {
            (0..3u64)
                .map(|r| client.score(r, "metered", b"MZ budget", None).unwrap())
                .collect::<Vec<_>>()
        },
    );
    assert!(matches!(responses[0], Response::Score(_)));
    assert!(matches!(responses[1], Response::Score(_)));
    match &responses[2] {
        Response::Error(e) => {
            assert_eq!(e.error, ServeError::BudgetExhausted { limit: 2 });
        }
        other => panic!("expected budget refusal, got {other:?}"),
    }
    assert_eq!(summary.admitted, 2);
    assert_eq!(summary.rejected, 1);
}

#[test]
fn tenant_rate_limit_is_a_typed_refusal_with_a_retry_hint() {
    let (responses, summary) = with_daemon(
        "rate",
        |config| {
            config.tenant =
                TenantPolicy { rate_per_sec: 0.5, burst: 1, ..permissive_tenants() };
        },
        |client| {
            (0..2u64)
                .map(|r| client.score(r, "bursty", b"MZ rate", None).unwrap())
                .collect::<Vec<_>>()
        },
    );
    assert!(matches!(responses[0], Response::Score(_)));
    match &responses[1] {
        Response::Error(e) => match e.error {
            ServeError::RateLimited { retry_after_ms } => {
                assert!(
                    (1..=2_000).contains(&retry_after_ms),
                    "0.5 tokens/s refills within 2 s, hint was {retry_after_ms}"
                );
            }
            ref other => panic!("expected rate-limit refusal, got {other:?}"),
        },
        other => panic!("expected rate-limit refusal, got {other:?}"),
    }
    assert_eq!(summary.admitted, 1);
    assert_eq!(summary.rejected, 1);
}

#[test]
fn repeated_sheds_trip_the_tenant_breaker() {
    // A zero-capacity queue makes every admitted request shed, which
    // counts as a failed outcome; two failures trip the breaker, so the
    // third request is refused breaker-fast without touching the queue.
    let (responses, summary) = with_daemon(
        "breaker",
        |config| {
            config.queue_capacity = 0;
            config.tenant = TenantPolicy {
                breaker_threshold: 2,
                breaker_cooldown: 100,
                ..permissive_tenants()
            };
        },
        |client| {
            (0..3u64)
                .map(|r| client.score(r, "doomed", b"MZ breaker", None).unwrap())
                .collect::<Vec<_>>()
        },
    );
    for response in &responses[..2] {
        match response {
            Response::Error(e) => {
                assert!(matches!(e.error, ServeError::Overloaded { .. }), "got {e:?}");
            }
            other => panic!("expected overload refusal, got {other:?}"),
        }
    }
    match &responses[2] {
        Response::Error(e) => assert_eq!(e.error, ServeError::CircuitOpen),
        other => panic!("expected breaker refusal, got {other:?}"),
    }
    assert_eq!(summary.admitted, 2);
    assert_eq!(summary.shed, 2);
    assert_eq!(summary.rejected, 1);
    assert_eq!(summary.completed, 0);
}
