//! Equivalence gates for the optimized inference kernels.
//!
//! The SIMD-shaped f32 paths promise bit-exactness (they reassociate
//! nothing), the int8 paths promise bounded error, and the flattened
//! GBDT and weight snapshots promise exact reconstruction. These tests
//! pin all three contracts at the integration level, on the same
//! trained world the experiment binaries use:
//!
//! * quantized scores diverge from f32 scores by at most `1e-2`, and
//!   verdicts agree on at least 99% of a 160+-sample corpus,
//! * `score_quantized_batch` is bit-identical to N sequential
//!   `score_quantized` calls,
//! * the flattened SoA forest scores exactly like the pointer-form
//!   tree walk, and survives a flatten → rebuild round trip,
//! * every roster detector reloaded from its weight snapshot scores
//!   bit-identically to the model that wrote it.

use mpass_corpus::{CorpusConfig, Dataset};
use mpass_detectors::features::FeatureExtractor;
use mpass_detectors::{detector_from_snapshot, Detector};
use mpass_experiments::world::{World, WorldConfig};
use mpass_ml::{Gbdt, GbdtParams, Snapshot};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::OnceLock;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::build(WorldConfig::quick()))
}

/// Corpus bytes plus degenerate inputs (empty, truncated garbage).
fn probe_items(w: &World) -> Vec<&[u8]> {
    let mut items: Vec<&[u8]> = w.dataset.samples.iter().map(|s| s.bytes.as_slice()).collect();
    items.push(b"");
    items.push(b"MZ\x90");
    items
}

/// The world corpus plus an independently seeded one: enough samples
/// that a single verdict flip still clears the 99% agreement floor.
fn agreement_corpus(w: &World) -> (Dataset, Vec<Vec<u8>>) {
    let extra = Dataset::generate(&CorpusConfig {
        n_malware: 60,
        n_benign: 60,
        seed: 0xA9EE,
        no_slack_fraction: 0.1,
    });
    let mut items: Vec<Vec<u8>> = w.dataset.samples.iter().map(|s| s.bytes.clone()).collect();
    items.extend(extra.samples.iter().map(|s| s.bytes.clone()));
    (extra, items)
}

fn quantized_roster(w: &World) -> Vec<(&'static str, &dyn Detector)> {
    vec![("MalConv", &w.malconv), ("NonNeg", &w.nonneg), ("MalGCG", &w.malgcg)]
}

#[test]
fn quantized_scores_stay_within_bounds_and_agree() {
    let w = world();
    let (_extra, items) = agreement_corpus(w);
    assert!(items.len() >= 160, "agreement corpus too small: {}", items.len());
    for (name, det) in quantized_roster(w) {
        assert!(det.has_quantized_path(), "{name} lost its quantized path");
        let threshold = det.threshold();
        let mut agree = 0usize;
        for bytes in &items {
            let f = det.score(bytes);
            let q = det.score_quantized(bytes);
            assert!(
                (f - q).abs() <= 1e-2,
                "{name}: int8 score {q} drifted from f32 {f} beyond 1e-2"
            );
            if (f > threshold) == (q > threshold) {
                agree += 1;
            }
        }
        let rate = agree as f64 / items.len() as f64;
        assert!(rate >= 0.99, "{name}: verdict agreement {rate:.4} below 99%");
    }
}

#[test]
fn quantized_batch_is_bit_identical_to_sequential() {
    let w = world();
    let items = probe_items(w);
    for (name, det) in quantized_roster(w) {
        let mut batch = Vec::new();
        det.score_quantized_batch(&items, &mut batch);
        assert_eq!(batch.len(), items.len(), "{name}: quantized batch length");
        for (i, bytes) in items.iter().enumerate() {
            assert_eq!(
                batch[i].to_bits(),
                det.score_quantized(bytes).to_bits(),
                "{name}: quantized batch diverged from sequential at item {i}"
            );
        }
    }
}

#[test]
fn flattened_gbdt_equals_treewalk_exactly() {
    let w = world();
    // A forest over the real EMBER-style features of the real corpus.
    let extractor = FeatureExtractor::new();
    let features: Vec<Vec<f32>> =
        w.dataset.samples.iter().map(|s| extractor.extract(&s.bytes)).collect();
    let labels: Vec<f32> = w.dataset.samples.iter().map(|s| s.label.target()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let gbdt = Gbdt::train(&features, &labels, GbdtParams::default(), &mut rng);

    let rebuilt = Gbdt::from_flat(&gbdt.flatten()).expect("flatten round-trips");
    for f in &features {
        let tree = gbdt.logit_treewalk(f);
        assert_eq!(
            gbdt.logit(f).to_bits(),
            tree.to_bits(),
            "flattened traversal diverged from the tree walk"
        );
        assert_eq!(
            rebuilt.logit(f).to_bits(),
            tree.to_bits(),
            "flatten -> rebuild changed a prediction"
        );
    }
}

#[test]
fn snapshot_reload_is_bit_identical_for_every_roster_detector() {
    let w = world();
    let items = probe_items(w);
    let snapshots = [
        ("MalConv", w.malconv.to_snapshot()),
        ("NonNeg", w.nonneg.to_snapshot()),
        ("MalGCG", w.malgcg.to_snapshot()),
        ("LightGBM", w.lightgbm.to_snapshot()),
    ];
    let originals: [&dyn Detector; 4] = [&w.malconv, &w.nonneg, &w.malgcg, &w.lightgbm];
    for ((name, snap), original) in snapshots.iter().zip(originals) {
        // Through the full byte-level encode/decode, as a reload would.
        let decoded = Snapshot::from_bytes(&snap.to_bytes()).expect("snapshot decodes");
        let reloaded = detector_from_snapshot(&decoded).expect("registry rebuilds");
        assert_eq!(original.threshold().to_bits(), reloaded.threshold().to_bits());
        for (i, bytes) in items.iter().enumerate() {
            assert_eq!(
                original.score(bytes).to_bits(),
                reloaded.score(bytes).to_bits(),
                "{name}: reloaded score diverged at item {i}"
            );
        }
    }
}
