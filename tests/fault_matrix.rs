//! Fault-transparency contract: an end-to-end attack campaign over an
//! unreliable oracle must reach exactly the same verdicts (same ASR,
//! same per-sample outcomes) as over a reliable one, for every fault
//! schedule seed — the retry layer absorbs the faults, and only the
//! `oracle/*` counters betray that anything went wrong on the wire.
//!
//! This is the deterministic fault matrix CI runs: three schedule seeds,
//! identical results, non-zero retries.

use mpass::detectors::FaultProfile;
use mpass::engine::metrics::{self, Collector, ShardMetrics};
use mpass_experiments::offline::{attack_target_with, make_attack, OfflineCell};
use mpass_experiments::{CampaignOptions, World, WorldConfig};

/// Fault schedule seeds of the matrix. Fixed, not sampled: the point is
/// a reproducible CI job, and determinism means passing once is passing
/// forever.
const SCHEDULE_SEEDS: [u64; 3] = [11, 47, 2023];

fn run_cell(world: &World, opts: &CampaignOptions) -> (OfflineCell, ShardMetrics) {
    let mut attack = make_attack(world, "MalConv", "MPass");
    let previous = metrics::install(Collector::default());
    let cell = attack_target_with(
        world,
        attack.as_mut(),
        &world.malconv,
        "MPass vs MalConv",
        opts,
        None,
        0xFA17_5EED,
    );
    let collected = metrics::take().unwrap_or_default().finish("MPass vs MalConv", 0.0);
    if let Some(previous) = previous {
        metrics::install(previous);
    }
    (cell, collected)
}

#[test]
fn faulted_campaigns_match_the_reliable_run_for_every_seed() {
    let mut cfg = WorldConfig::quick();
    cfg.attack_samples = 4;
    let world = World::build(cfg);

    let (reference, reference_metrics) = run_cell(&world, &CampaignOptions::default());
    assert!(!reference_metrics.counters.contains_key("oracle/retry"));

    let mut total_faulted_submissions = 0u64;
    let mut total_retries = 0u64;
    for seed in SCHEDULE_SEEDS {
        // An aggressive mix — roughly one submission in three faults —
        // but bursts stay under the retry policy's max_attempts, so
        // every verdict is still delivered.
        let profile = FaultProfile {
            transient: 0.25,
            rate_limited: 0.10,
            ..FaultProfile::seeded(seed)
        };
        let opts = CampaignOptions { faults: Some(profile), ..CampaignOptions::default() };
        let (cell, cell_metrics) = run_cell(&world, &opts);

        assert_eq!(
            format!("{:?}", cell.stats),
            format!("{:?}", reference.stats),
            "schedule seed {seed} changed the attack statistics"
        );
        assert_eq!((cell.broken, cell.checked), (reference.broken, reference.checked));
        assert_eq!(
            cell_metrics.counters.get("queries"),
            reference_metrics.counters.get("queries"),
            "schedule seed {seed} changed the delivered-verdict count"
        );
        let faults: u64 = cell_metrics
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("oracle/fault_"))
            .map(|(_, v)| v)
            .sum();
        total_faulted_submissions += faults;
        total_retries += cell_metrics.counters.get("oracle/retry").copied().unwrap_or(0);
    }
    assert!(
        total_faulted_submissions > 0,
        "the fault matrix must actually inject faults to prove anything"
    );
    assert!(total_retries > 0, "absorbed faults must show up as retries");
}
