//! Property-style integration tests of the full recovery pipeline:
//! randomized modification configurations against arbitrary corpus
//! samples must preserve behaviour exactly. Cases come from a seeded
//! ChaCha8 stream so every run explores the same space.

use mpass::core::modify::{modify, ModificationConfig};
use mpass::core::optimize::{EnsembleOptimizer, OptimizerConfig};
use mpass::corpus::{BenignPool, CorpusConfig, Dataset};
use mpass::sandbox::Sandbox;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn fixture() -> (Dataset, BenignPool) {
    let ds = Dataset::generate(&CorpusConfig {
        n_malware: 8,
        n_benign: 4,
        seed: 0xF1B,
        no_slack_fraction: 0.25,
    });
    let pool = BenignPool::generate(4, 0xF1B);
    (ds, pool)
}

/// Any combination of modification switches and seeds preserves the
/// sample's API behaviour.
#[test]
fn modification_always_preserves_behavior() {
    let (ds, pool) = fixture();
    let sandbox = Sandbox::new();
    let mut gen = ChaCha8Rng::seed_from_u64(0xA11);
    for _ in 0..24 {
        let sample_idx = gen.gen_range(0..8);
        let seed = gen.gen_range(0..1000u64);
        let cfg = ModificationConfig {
            encode_code: gen.gen::<bool>(),
            encode_data: gen.gen::<bool>(),
            shuffle: gen.gen::<bool>(),
            max_gap_units: gen.gen_range(0..4),
            perturb_space: gen.gen_range(64..2048),
            ..ModificationConfig::default()
        };
        let sample = ds.malware()[sample_idx];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ms = modify(sample, &pool, &cfg, &mut rng).unwrap();
        let verdict = sandbox.verify_functionality(&sample.bytes, &ms.bytes);
        assert!(verdict.is_preserved(), "{}: {verdict}", sample.name);
    }
}

/// Arbitrary writes at every advertised optimizable position keep the
/// behaviour intact (the positions really are free).
#[test]
fn arbitrary_position_writes_preserve_behavior() {
    let (ds, pool) = fixture();
    let sandbox = Sandbox::new();
    let mut gen = ChaCha8Rng::seed_from_u64(0xA22);
    for _ in 0..24 {
        let sample_idx = gen.gen_range(0..8);
        let seed = gen.gen_range(0..500u64);
        let fill = gen.gen::<u8>();
        let stride = gen.gen_range(1..9);
        let sample = ds.malware()[sample_idx];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ms =
            modify(sample, &pool, &ModificationConfig::default(), &mut rng).unwrap();
        for idx in (0..ms.position_count()).step_by(stride) {
            ms.set_position(idx, fill.wrapping_add(idx as u8));
        }
        let verdict = sandbox.verify_functionality(&sample.bytes, &ms.bytes);
        assert!(verdict.is_preserved(), "{}: {verdict}", sample.name);
    }
}

#[test]
fn optimizer_rounds_never_break_behavior() {
    let (ds, pool) = fixture();
    let sandbox = Sandbox::new();
    // A tiny surrogate trained on the fixture corpus.
    let samples: Vec<_> = ds.samples.iter().collect();
    let pairs = mpass::detectors::train::training_pairs(&samples);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut surrogate = mpass::detectors::MalGcg::new(
        mpass::detectors::MalGcgConfig::tiny(),
        &mut rng,
    );
    surrogate.train(&pairs, 4, 5e-3, &mut rng);

    for (i, sample) in ds.malware().into_iter().take(4).enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(i as u64);
        let mut ms =
            modify(sample, &pool, &ModificationConfig::default(), &mut rng).unwrap();
        let models: Vec<&dyn mpass::detectors::WhiteBoxModel> = vec![&surrogate];
        let mut opt = EnsembleOptimizer::new(
            models,
            &ms,
            OptimizerConfig { lr: 0.05, iterations: 3 },
        );
        for _round in 0..3 {
            opt.run(&mut ms);
            let verdict = sandbox.verify_functionality(&sample.bytes, &ms.bytes);
            assert!(verdict.is_preserved(), "{}: {verdict}", sample.name);
        }
    }
}
