//! Trait-generic contract harness for every [`BinaryFormat`] backend.
//!
//! One set of property checks, written once against `&dyn BinaryFormat`,
//! replayed over both backends (PE and Mach-O) in both parse modes
//! (loader-tolerant and strict). Any future backend gets the same
//! treatment by adding its images to `subjects()`.
//!
//! The properties are the trait's documented invariants:
//!
//! * round trip — `parse(to_bytes(x)) == x`, in both modes;
//! * address honesty — section metadata, `va_to_file_offset` and
//!   `read_virtual` agree about where bytes live;
//! * edit coherence — added sections land at `next_free_va`, entry
//!   retargeting survives serialization, overlay append/truncate and
//!   virtual writes round-trip;
//! * inventory sanity — `modifiable_positions` spans lie inside the
//!   serialized file and never overlap each other.

use mpass::binary::{
    BinaryFormat, BinaryImage, Format, ParseMode, SectionKind,
};
use mpass::corpus::{CorpusConfig, Dataset};

/// Every image the harness replays: a mixed corpus (PE and Mach-O
/// malware/benign in one world) plus each backend's no-slack variants.
fn subjects() -> Vec<(String, BinaryImage)> {
    let mut out = Vec::new();
    for (tag, fraction) in [("pe", 0.0f64), ("mixed", 0.5), ("macho", 1.0)] {
        let ds = Dataset::generate_mixed(
            &CorpusConfig {
                n_malware: 4,
                n_benign: 4,
                seed: 0xB1F0 ^ fraction.to_bits(),
                no_slack_fraction: 0.25,
            },
            fraction,
        );
        for s in ds.samples {
            out.push((format!("{tag}/{}", s.name), s.image));
        }
    }
    out
}

fn reparse(image: &BinaryImage, mode: ParseMode) -> BinaryImage {
    BinaryImage::parse_auto_with(&image.to_bytes(), mode).expect("serialized image parses")
}

#[test]
fn round_trip_holds_in_both_modes() {
    for (name, image) in subjects() {
        for mode in [ParseMode::LoaderTolerant, ParseMode::Strict] {
            let again = reparse(&image, mode);
            assert_eq!(again, image, "{name}: round trip diverged under {mode:?}");
        }
    }
}

#[test]
fn detection_matches_the_stored_format() {
    for (name, image) in subjects() {
        let detected = mpass::binary::detect_format(&image.to_bytes())
            .unwrap_or_else(|e| panic!("{name}: magic not detected: {e}"));
        assert_eq!(detected, image.format(), "{name}");
    }
}

#[test]
fn section_metadata_is_address_honest() {
    for (name, image) in subjects() {
        let file = image.to_bytes();
        for i in 0..image.section_count() {
            let meta = image.section_meta(i).unwrap_or_else(|| panic!("{name}: meta {i}"));
            let data = image.section_data(i).unwrap_or_else(|| panic!("{name}: data {i}"));

            // The declared file span holds exactly the section's bytes.
            let span = &file[meta.file_offset..meta.file_offset + meta.file_size];
            assert_eq!(span, &data[..meta.file_size], "{name}/{}: file span", meta.name);

            if meta.virtual_size == 0 {
                continue;
            }
            // The section's VA maps back to its own index and file offset.
            assert_eq!(
                image.section_index_containing_va(meta.virtual_address),
                Some(i),
                "{name}/{}: containing-va",
                meta.name
            );
            if meta.file_size > 0 {
                assert_eq!(
                    image.va_to_file_offset(meta.virtual_address),
                    Some(meta.file_offset),
                    "{name}/{}: va->file",
                    meta.name
                );
                // read_virtual agrees with the raw data.
                let probe = meta.file_size.min(64);
                assert_eq!(
                    image.read_virtual(meta.virtual_address, probe),
                    data[..probe].to_vec(),
                    "{name}/{}: read_virtual",
                    meta.name
                );
            }
        }
    }
}

#[test]
fn entry_point_maps_into_an_executable_section() {
    for (name, image) in subjects() {
        let entry = image.entry_point();
        let idx = image
            .section_index_containing_va(entry)
            .unwrap_or_else(|| panic!("{name}: entry {entry:#x} unmapped"));
        let meta = image.section_meta(idx).expect("mapped index has metadata");
        assert!(meta.executable, "{name}: entry section {} not executable", meta.name);
    }
}

#[test]
fn added_sections_land_at_next_free_va_and_survive_round_trip() {
    for (name, image) in subjects() {
        if !image.can_add_sections(1) {
            continue; // no-slack variants exercise the refusal path
        }
        let mut edited = image.clone();
        let promised = edited.next_free_va();
        let payload = vec![0xC3u8; 192];
        let secname = match edited.format() {
            Format::Pe => ".harn",
            Format::MachO => "__harn",
        };
        let va = edited
            .add_section(secname, payload.clone(), SectionKind::Data)
            .unwrap_or_else(|e| panic!("{name}: add_section: {e}"));
        assert_eq!(va, promised, "{name}: add_section broke the next_free_va promise");
        assert_eq!(edited.section_count(), image.section_count() + 1, "{name}");
        edited.finalize();

        let again = reparse(&edited, ParseMode::LoaderTolerant);
        let idx = again
            .section_index_containing_va(va)
            .unwrap_or_else(|| panic!("{name}: new section unmapped after round trip"));
        assert_eq!(
            again.section_data(idx).map(|d| &d[..payload.len()]),
            Some(payload.as_slice()),
            "{name}: new section data after round trip"
        );
    }
}

#[test]
fn entry_retargeting_survives_serialization() {
    for (name, image) in subjects() {
        if !image.can_add_sections(1) {
            continue;
        }
        let mut edited = image.clone();
        let secname = match edited.format() {
            Format::Pe => ".stub",
            Format::MachO => "__stub",
        };
        let va = edited
            .add_section(secname, vec![0x90u8; 64], SectionKind::Code)
            .unwrap_or_else(|e| panic!("{name}: add_section: {e}"));
        edited.set_entry_point(va).unwrap_or_else(|e| panic!("{name}: set_entry_point: {e}"));
        edited.finalize();
        let again = reparse(&edited, ParseMode::LoaderTolerant);
        assert_eq!(again.entry_point(), va, "{name}: retargeted entry lost in serialization");
    }
}

#[test]
fn unmapped_entry_is_refused() {
    for (name, image) in subjects() {
        let mut edited = image.clone();
        assert!(
            edited.set_entry_point(u64::MAX - 0xFFF).is_err(),
            "{name}: set_entry_point accepted an unmapped address"
        );
    }
}

#[test]
fn overlay_and_virtual_writes_round_trip() {
    for (name, image) in subjects() {
        let mut edited = image.clone();

        edited.append_overlay(b"HARNESS-OVERLAY");
        let again = reparse(&edited, ParseMode::LoaderTolerant);
        assert!(again.overlay().ends_with(b"HARNESS-OVERLAY"), "{name}: overlay lost");
        let kept = edited.overlay().len() - b"HARNESS-OVERLAY".len();
        edited.truncate_overlay(kept);
        assert_eq!(edited.overlay().len(), kept, "{name}: truncate_overlay");
        assert_eq!(
            reparse(&edited, ParseMode::LoaderTolerant),
            edited,
            "{name}: round trip after overlay truncate"
        );

        // A virtual write into the first writable, file-backed section is
        // visible to read_virtual and survives serialization.
        let target = (0..edited.section_count()).find_map(|i| {
            let m = edited.section_meta(i)?;
            (m.writable && m.file_size >= 8 && m.virtual_size >= 8).then_some(m)
        });
        if let Some(m) = target {
            edited.write_virtual(m.virtual_address, b"WRITTEN!").unwrap_or_else(|e| {
                panic!("{name}: write_virtual into {}: {e}", m.name);
            });
            assert_eq!(edited.read_virtual(m.virtual_address, 8), b"WRITTEN!".to_vec(), "{name}");
            let again = reparse(&edited, ParseMode::LoaderTolerant);
            assert_eq!(
                again.read_virtual(m.virtual_address, 8),
                b"WRITTEN!".to_vec(),
                "{name}: virtual write lost in serialization"
            );
        }
    }
}

#[test]
fn modifiable_positions_lie_within_the_file_and_do_not_overlap() {
    for (name, image) in subjects() {
        let len = image.file_len();
        let mut regions = image.modifiable_positions();
        assert!(!regions.is_empty(), "{name}: no modifiable positions at all");
        regions.sort_by_key(|r| r.file_offset);
        let mut prev_end = 0usize;
        for r in &regions {
            let range = r.file_range();
            assert!(range.end <= len, "{name}: {:?} spills past the file ({len})", r);
            assert!(
                range.start >= prev_end,
                "{name}: {:?} overlaps the previous region (prev end {prev_end})",
                r
            );
            prev_end = range.end;
        }
    }
}

#[test]
fn randomize_free_headers_is_deterministic_and_preserves_structure() {
    use rand::SeedableRng;
    for (name, image) in subjects() {
        let mut a = image.clone();
        let mut b = image.clone();
        let mut rng_a = rand_chacha::ChaCha8Rng::seed_from_u64(0xF4EE);
        let mut rng_b = rand_chacha::ChaCha8Rng::seed_from_u64(0xF4EE);
        a.randomize_free_headers(&mut rng_a);
        b.randomize_free_headers(&mut rng_b);
        assert_eq!(a, b, "{name}: header randomization not seed-deterministic");

        // Structure is untouched: same sections, same entry, same data.
        assert_eq!(a.section_count(), image.section_count(), "{name}");
        assert_eq!(a.entry_point(), image.entry_point(), "{name}");
        for i in 0..image.section_count() {
            assert_eq!(a.section_data(i), image.section_data(i), "{name}: section {i} data");
        }
        assert_eq!(reparse(&a, ParseMode::LoaderTolerant), a, "{name}: round trip after");
    }
}

#[test]
fn map_image_bounded_refuses_oversized_images_and_maps_sections() {
    for (name, image) in subjects() {
        assert!(
            image.map_image_bounded(16).is_err(),
            "{name}: a 16-byte budget cannot hold any real image"
        );
        let mapped = image
            .map_image_bounded(64 << 20)
            .unwrap_or_else(|e| panic!("{name}: map_image_bounded: {e}"));
        // Every file-backed section's bytes appear at its VA-relative slot.
        for i in 0..image.section_count() {
            let m = image.section_meta(i).expect("meta");
            if m.file_size == 0 || m.virtual_size == 0 {
                continue;
            }
            let base = image.read_virtual(m.virtual_address, m.file_size.min(32));
            let data = image.section_data(i).expect("data");
            assert_eq!(base, data[..m.file_size.min(32)].to_vec(), "{name}/{}", m.name);
        }
        assert!(!mapped.is_empty(), "{name}: empty mapping");
    }
}
