//! Crash-safe resume contract: a campaign killed mid-shard (here: a
//! shard that journals part of its work and then panics) must leave a
//! recoverable journal, and a resumed run must reproduce the reference
//! results bit-identically — replayed samples and shards included.

use mpass::engine::metrics::{self, Collector};
use mpass::engine::{Engine, EngineConfig, Shard};
use mpass_experiments::offline::{attack_target_with, make_attack, OfflineCell};
use mpass_experiments::{CampaignJournal, CampaignOptions, World, WorldConfig};
use std::path::PathBuf;

const CRASH_SHARD: &str = "MPass vs MalConv";
const CLEAN_SHARD: &str = "GAMMA vs MalConv";

fn quick_world() -> World {
    let mut cfg = WorldConfig::quick();
    cfg.attack_samples = 3;
    World::build(cfg)
}

fn journal_path() -> PathBuf {
    std::env::temp_dir().join(format!("mpass-kill-resume-{}.jsonl", std::process::id()))
}

fn run_shard(
    world: &World,
    label: &str,
    opts: &CampaignOptions,
    journal: Option<&CampaignJournal>,
) -> (OfflineCell, std::collections::BTreeMap<String, u64>) {
    let attack_name = label.split(' ').next().expect("label is `<attack> vs <target>`");
    let mut attack = make_attack(world, "MalConv", attack_name);
    let previous = metrics::install(Collector::default());
    let cell = attack_target_with(world, attack.as_mut(), &world.malconv, label, opts, journal, 7);
    let collected = metrics::take().unwrap_or_default().finish(label, 0.0);
    if let Some(previous) = previous {
        metrics::install(previous);
    }
    (cell, collected.counters)
}

#[test]
fn killed_campaign_resumes_bit_identically() {
    let world = quick_world();
    let path = journal_path();
    let _ = std::fs::remove_file(&path);

    // Reference: both shards, no journal, no crash.
    let opts = CampaignOptions::default();
    let (reference_crash, _) = run_shard(&world, CRASH_SHARD, &opts, None);
    let (reference_clean, _) = run_shard(&world, CLEAN_SHARD, &opts, None);

    // "Kill" run: the engine executes both shards against a journal;
    // the clean shard finishes, the other journals its first sample and
    // then dies. catch_unwind isolation means the run itself completes.
    let fresh = CampaignOptions { journal: Some(path.clone()), ..CampaignOptions::default() };
    let journal = fresh.open_journal().expect("journal opens").expect("journal configured");
    {
        let journal = &journal;
        let world = &world;
        let engine = Engine::new(EngineConfig { workers: 2, seed: 1 });
        let shards =
            vec![Shard::new(CLEAN_SHARD, CLEAN_SHARD), Shard::new(CRASH_SHARD, CRASH_SHARD)];
        let run = engine.run(shards, |_ctx, label| {
            if label == CRASH_SHARD {
                let mut attack = make_attack(world, "MalConv", "MPass");
                let sample = world.attack_set(&world.malconv)[0];
                let mut target = mpass::core::HardLabelTarget::new(
                    &world.malconv,
                    world.config.max_queries,
                );
                let outcome = attack.attack(sample, &mut target);
                journal.record_sample(CRASH_SHARD, &outcome).expect("journal append");
                panic!("simulated crash after one journalled sample");
            }
            let mut attack = make_attack(world, "MalConv", "GAMMA");
            attack_target_with(world, attack.as_mut(), &world.malconv, label, &fresh, Some(journal), 7)
        });
        assert_eq!(run.failures.len(), 1, "exactly the crash shard fails");
        assert_eq!(run.failures[0].label, CRASH_SHARD);
        assert_eq!(run.results.len(), 1, "the clean shard still completes");
    }
    drop(journal);

    // Resume: the journal recovered from the "killed" process replays
    // the clean shard wholesale and the crash shard's finished sample.
    let resume = CampaignOptions {
        journal: Some(path.clone()),
        resume: true,
        ..CampaignOptions::default()
    };
    let journal = resume.open_journal().expect("journal opens").expect("journal configured");
    let clean_samples = world.attack_set(&world.malconv).len();
    assert_eq!(
        journal.recovered_samples(),
        1 + clean_samples,
        "crash shard's one sample plus every clean-shard sample"
    );

    let (resumed_crash, crash_counters) = run_shard(&world, CRASH_SHARD, &resume, Some(&journal));
    let (resumed_clean, clean_counters) = run_shard(&world, CLEAN_SHARD, &resume, Some(&journal));

    assert_eq!(
        format!("{reference_crash:?}"),
        format!("{resumed_crash:?}"),
        "resumed crash-shard cell must be bit-identical to the reference"
    );
    assert_eq!(format!("{reference_clean:?}"), format!("{resumed_clean:?}"));
    assert_eq!(
        crash_counters.get("campaign/sample_resumed"),
        Some(&1),
        "the journalled sample is replayed, not re-attacked"
    );
    assert_eq!(clean_counters.get("campaign/shard_resumed"), Some(&1));
    assert!(!clean_counters.contains_key("queries"), "a resumed shard never queries");

    std::fs::remove_file(&path).unwrap();
}

/// A kill can also land mid-write. The journal must shrug off a torn
/// trailing record and resume from the last intact line.
#[test]
fn torn_journal_tail_still_resumes() {
    let world = quick_world();
    let path =
        std::env::temp_dir().join(format!("mpass-torn-resume-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let opts = CampaignOptions::default();
    let (reference, _) = run_shard(&world, CRASH_SHARD, &opts, None);

    // Journal the full shard, then simulate a kill mid-append.
    let fresh = CampaignOptions { journal: Some(path.clone()), ..CampaignOptions::default() };
    let journal = fresh.open_journal().unwrap().unwrap();
    let (first, _) = run_shard(&world, CRASH_SHARD, &fresh, Some(&journal));
    assert_eq!(format!("{reference:?}"), format!("{first:?}"));
    drop(journal);
    {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"kind\":\"sample\",\"shard\":\"MPass vs Mal").unwrap();
    }

    let resume = CampaignOptions {
        journal: Some(path.clone()),
        resume: true,
        ..CampaignOptions::default()
    };
    let journal = resume.open_journal().unwrap().unwrap();
    let (resumed, counters) = run_shard(&world, CRASH_SHARD, &resume, Some(&journal));
    assert_eq!(format!("{reference:?}"), format!("{resumed:?}"));
    assert_eq!(counters.get("campaign/shard_resumed"), Some(&1));

    std::fs::remove_file(&path).unwrap();
}
