//! The Figure-4 mechanism as a cross-crate contract: AV continual
//! learning must catch fixed-pattern perturbations and must *not* be able
//! to mine MPass's shuffled, per-sample-randomized perturbations.

use mpass::core::modify::{modify, ModificationConfig};
use mpass::detectors::Detector;
use mpass_experiments::{World, WorldConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn fixed_patterns_are_learned_shuffled_recovery_is_not() {
    let world = World::build(WorldConfig::quick());
    let malware = world.dataset.malware();

    // Fixed-pattern "AEs": identical appended blob on every sample (the
    // structure baselines share — a packer stub's bytes are varied but
    // identical across outputs).
    let stub: Vec<u8> = (0..256u32).map(|i| (i.wrapping_mul(167) >> 3) as u8).collect();
    let fixed: Vec<Vec<u8>> = malware
        .iter()
        .take(8)
        .map(|s| {
            let mut pe = s.pe().unwrap().clone();
            pe.append_overlay(&stub);
            pe.to_bytes()
        })
        .collect();

    // MPass-style modifications: fresh benign cover + fresh shuffle per
    // sample (no optimization needed to test the learning dynamic). The
    // quick world's 6-program pool keeps attack runs fast, but mining
    // immunity is a claim about cover *diversity* — the paper's attacker
    // draws covers from an abundant benign corpus — so the AEs here use a
    // full-scale pool (40 programs, as in `WorldConfig::full`).
    let pool = mpass::corpus::BenignPool::generate(40, 0x4D50_4153 ^ 0xB00);
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let shuffled: Vec<Vec<u8>> = malware
        .iter()
        .take(8)
        .filter_map(|s| {
            modify(s, &pool, &ModificationConfig::default(), &mut rng)
                .ok()
                .filter(|m| m.mode == mpass::core::ModificationMode::NewSection)
                .map(|m| m.bytes)
        })
        .collect();
    assert!(shuffled.len() >= 5, "not enough full-pipeline modifications");

    let av = &world.avs[0];

    // Learning on the fixed pattern: signatures appear, resubmissions die.
    let mut av_fixed = av.clone();
    let subs: Vec<&[u8]> = fixed.iter().map(|v| v.as_slice()).collect();
    let added_fixed = av_fixed.weekly_update(&subs);
    assert!(added_fixed > 0, "fixed pattern must be mined");
    let caught = fixed.iter().filter(|ae| av_fixed.signature_matches(ae)).count();
    assert!(caught == fixed.len(), "only {caught}/{} fixed AEs signatured", fixed.len());

    // Learning on shuffled-recovery AEs: whatever grams are mined must not
    // signature-match future, unseen MPass modifications.
    let mut av_shuffled = av.clone();
    let subs: Vec<&[u8]> = shuffled.iter().map(|v| v.as_slice()).collect();
    av_shuffled.weekly_update(&subs);
    // Fresh modifications of *other* samples with new randomness.
    let mut rng = ChaCha8Rng::seed_from_u64(12345);
    let fresh: Vec<Vec<u8>> = malware
        .iter()
        .skip(8)
        .take(4)
        .filter_map(|s| {
            modify(s, &pool, &ModificationConfig::default(), &mut rng).ok().map(|m| m.bytes)
        })
        .collect();
    let sig_hits = fresh.iter().filter(|ae| av_shuffled.signature_matches(ae)).count();
    assert_eq!(
        sig_hits, 0,
        "signatures mined from shuffled AEs must not transfer to fresh ones"
    );
}

#[test]
fn benign_false_positive_rate_survives_updates() {
    let world = World::build(WorldConfig::quick());
    let mut av = world.avs[1].clone();
    // Adversary submits malware-with-overlay junk for three weeks.
    let subs_owned: Vec<Vec<u8>> = world
        .dataset
        .malware()
        .iter()
        .take(6)
        .map(|s| {
            let mut pe = s.pe().unwrap().clone();
            pe.append_overlay(b"SUBMITTED-JUNK-PATTERN-SUBMITTED-JUNK");
            pe.to_bytes()
        })
        .collect();
    let subs: Vec<&[u8]> = subs_owned.iter().map(|v| v.as_slice()).collect();
    for _ in 0..3 {
        av.weekly_update(&subs);
    }
    let fp = world
        .dataset
        .benign()
        .iter()
        .filter(|s| av.classify(&s.bytes).is_malicious())
        .count();
    let total = world.dataset.benign().len();
    assert!(
        fp * 10 <= total,
        "update poisoned the AV: {fp}/{total} benign flagged"
    );
}
