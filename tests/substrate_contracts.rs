//! Cross-crate substrate contracts: every corpus sample must be a valid,
//! executable PE; structural edits and packers must preserve behaviour.

use mpass::baselines::{benign_packer_profile, packer_profiles, Packer};
use mpass::corpus::{CorpusConfig, Dataset};
use mpass::pe::PeFile;
use mpass::sandbox::Sandbox;

fn dataset() -> Dataset {
    Dataset::generate(&CorpusConfig {
        n_malware: 10,
        n_benign: 10,
        seed: 0x17E5,
        no_slack_fraction: 0.2,
    })
}

#[test]
fn every_sample_parses_round_trips_and_halts() {
    let ds = dataset();
    let sandbox = Sandbox::new();
    for s in &ds.samples {
        let pe = PeFile::parse(&s.bytes).expect("sample parses");
        assert_eq!(pe.to_bytes(), s.bytes, "{} round-trip", s.name);
        let exec = sandbox.run_pe(&pe);
        assert!(exec.completed(), "{}: {:?}", s.name, exec.outcome);
        assert!(!exec.trace.is_empty(), "{} has no behaviour", s.name);
    }
}

#[test]
fn malware_and_benign_differ_behaviourally() {
    let ds = dataset();
    let sandbox = Sandbox::new();
    for s in ds.malware() {
        let exec = sandbox.run_pe(s.pe().unwrap());
        assert!(exec.suspicious_calls().count() >= 3, "{}", s.name);
    }
    for s in ds.benign() {
        let exec = sandbox.run_pe(s.pe().unwrap());
        assert!(exec.suspicious_calls().count() <= 1, "{}", s.name);
    }
}

#[test]
fn all_packers_preserve_functionality_on_all_samples() {
    let ds = dataset();
    let sandbox = Sandbox::new();
    let mut profiles = packer_profiles().to_vec();
    profiles.push(benign_packer_profile());
    for profile in profiles {
        let packer = Packer::new(profile);
        for s in &ds.samples {
            match packer.pack(s.pe().unwrap()) {
                Ok(packed) => {
                    let v = sandbox.verify_functionality(&s.bytes, &packed);
                    assert!(v.is_preserved(), "{} on {}: {v}", profile.name, s.name);
                }
                Err(e) => {
                    // Only acceptable failure: a full section table.
                    assert!(
                        !s.pe().unwrap().can_add_section(),
                        "{} failed on {} with slack available: {e}",
                        profile.name,
                        s.name
                    );
                }
            }
        }
    }
}

#[test]
fn packed_samples_hide_static_api_opcodes() {
    let ds = dataset();
    let packer = Packer::new(packer_profiles()[0]);
    for s in ds.malware() {
        if let Ok(packed) = packer.pack(s.pe().unwrap()) {
            let before = mpass::detectors::features::suspicious_api_count(&s.bytes);
            let after = mpass::detectors::features::suspicious_api_count(&packed);
            assert!(before >= 3, "{}", s.name);
            assert!(after < before, "{}: {after} !< {before}", s.name);
        }
    }
}
