//! Batch-vs-sequential equivalence over the real detector roster.
//!
//! The batch-first API redesign promises that batching is a throughput
//! optimization, never a semantics change. These tests pin that contract
//! at the integration level, on the same trained world the experiment
//! binaries use:
//!
//! * `Detector::score_batch` / `raw_score_batch` / `classify_batch` are
//!   bit-identical to N sequential calls for every roster detector,
//!   including the caching AV wrapper,
//! * `Oracle::submit_batch` consumes the same fault schedule as N
//!   sequential submissions on an `UnreliableOracle`,
//! * `HardLabelTarget::query_batch` meters budget exactly like N
//!   sequential `query` calls — per delivered verdict, with AE-invalid
//!   candidates free — including at the exhaustion boundary and under
//!   injected faults.

use mpass_core::{HardLabelTarget, QueryError, RetryPolicy};
use mpass_detectors::{CachedAv, Detector, FaultProfile, Oracle, UnreliableOracle, Verdict};
use mpass_engine::{OracleFault, QueryBudget};
use mpass_experiments::world::{World, WorldConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::build(WorldConfig::quick()))
}

/// Corpus bytes plus degenerate inputs (empty, truncated garbage).
fn probe_items(w: &World) -> Vec<&[u8]> {
    let mut items: Vec<&[u8]> = w.dataset.samples.iter().map(|s| s.bytes.as_slice()).collect();
    items.push(b"");
    items.push(b"MZ\x90");
    items
}

fn assert_batch_matches_sequential(name: &str, det: &dyn Detector, items: &[&[u8]]) {
    let mut scores = Vec::new();
    det.score_batch(items, &mut scores);
    let mut raw = Vec::new();
    det.raw_score_batch(items, &mut raw);
    let mut verdicts = Vec::new();
    det.classify_batch(items, &mut verdicts);
    assert_eq!(scores.len(), items.len(), "{name}: score_batch length");
    assert_eq!(raw.len(), items.len(), "{name}: raw_score_batch length");
    assert_eq!(verdicts.len(), items.len(), "{name}: classify_batch length");
    for (i, bytes) in items.iter().enumerate() {
        assert_eq!(
            scores[i].to_bits(),
            det.score(bytes).to_bits(),
            "{name}: score_batch[{i}] diverged"
        );
        assert_eq!(
            raw[i].to_bits(),
            det.raw_score(bytes).to_bits(),
            "{name}: raw_score_batch[{i}] diverged"
        );
        assert_eq!(verdicts[i], det.classify(bytes), "{name}: classify_batch[{i}] diverged");
    }
}

#[test]
fn score_batch_is_bit_identical_for_every_roster_detector() {
    let w = world();
    let items = probe_items(w);
    for (name, det) in w.offline_targets() {
        assert_batch_matches_sequential(name, det, &items);
    }
    for av in &w.avs {
        assert_batch_matches_sequential(Detector::name(av), av, &items);
    }
}

/// The caching wrapper answers batched queries with the same scores and
/// the same cache-counter totals as a sequential loop — compared across
/// two fresh wrappers of the same AV so cache state starts equal.
#[test]
fn cached_av_batches_match_a_fresh_sequential_wrapper() {
    let w = world();
    // Repeat a slice so the batch contains duplicates (the wrapper
    // resolves those against the batch itself, not just the cache).
    let mut items = probe_items(w);
    items.push(items[0]);
    items.push(items[0]);

    let batched = CachedAv::new(w.avs[0].clone());
    let mut scores = Vec::new();
    batched.score_batch(&items, &mut scores);
    let mut verdicts = Vec::new();
    batched.classify_batch(&items, &mut verdicts);

    let sequential = CachedAv::new(w.avs[0].clone());
    for (i, bytes) in items.iter().enumerate() {
        assert_eq!(
            scores[i].to_bits(),
            sequential.score(bytes).to_bits(),
            "CachedAv: score_batch[{i}] diverged from a sequential wrapper"
        );
    }
    // A second batched pass is all cache hits and still bit-identical.
    let mut again = Vec::new();
    batched.score_batch(&items, &mut again);
    for (i, (a, b)) in again.iter().zip(&scores).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "CachedAv: cached re-score[{i}] diverged");
    }
    let seq_verdicts: Vec<Verdict> = items.iter().map(|b| sequential.classify(b)).collect();
    assert_eq!(verdicts, seq_verdicts, "CachedAv: classify_batch diverged");
}

/// Batched submission through a fault-injecting oracle consumes exactly
/// the per-submission schedule a sequential loop would: same verdicts,
/// same faults, same positions.
#[test]
fn unreliable_oracle_submit_batch_consumes_the_sequential_schedule() {
    let w = world();
    let items = probe_items(w);
    let profile = FaultProfile::seeded(0xFA17);

    let batched = UnreliableOracle::new(&w.malconv, profile);
    let mut batch_results = Vec::new();
    batched.submit_batch(&items, &mut batch_results);

    let sequential = UnreliableOracle::new(&w.malconv, profile);
    let seq_results: Vec<Result<Verdict, OracleFault>> =
        items.iter().map(|b| sequential.submit(b)).collect();

    assert_eq!(batch_results, seq_results);
    assert_eq!(batched.submissions(), sequential.submissions());
    assert_eq!(batched.faults_injected(), sequential.faults_injected());
}

#[test]
fn query_batch_matches_sequential_queries_on_a_reliable_channel() {
    let w = world();
    let items = probe_items(w);
    // Budget below the item count so the exhaustion boundary is crossed
    // mid-batch.
    let limit = items.len() - 3;

    let mut batched = HardLabelTarget::new(&w.malconv, limit);
    let mut batch_results = Vec::new();
    batched.query_batch(&items, &mut batch_results);

    let mut sequential = HardLabelTarget::new(&w.malconv, limit);
    let seq_results: Vec<Result<Verdict, QueryError>> =
        items.iter().map(|b| sequential.query(b)).collect();

    assert_eq!(batch_results, seq_results);
    assert_eq!(batched.queries(), sequential.queries());
    assert_eq!(batched.remaining(), sequential.remaining());
    assert_eq!(batched.queries(), limit, "every delivered verdict costs one unit");
    let delivered = batch_results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(delivered, limit);
    assert!(batch_results[limit..]
        .iter()
        .all(|r| matches!(r, Err(e) if e.is_budget_exhausted())));
}

/// AE validation is per candidate in both paths: invalid candidates fail
/// with `InvalidCandidate`, are never submitted, and consume no budget.
#[test]
fn query_batch_validates_each_candidate_without_spending_budget() {
    let w = world();
    let valid = w.dataset.samples[0].bytes.as_slice();
    let items: Vec<&[u8]> = vec![valid, b"not a PE at all", valid, b"", valid];

    let mut batched = HardLabelTarget::new(&w.malconv, 100).with_ae_validation();
    let mut batch_results = Vec::new();
    batched.query_batch(&items, &mut batch_results);

    let mut sequential = HardLabelTarget::new(&w.malconv, 100).with_ae_validation();
    let seq_results: Vec<Result<Verdict, QueryError>> =
        items.iter().map(|b| sequential.query(b)).collect();

    assert_eq!(batch_results, seq_results);
    assert_eq!(batched.queries(), sequential.queries());
    assert_eq!(batched.queries(), 3, "only the three valid candidates consume budget");
    assert_eq!(batch_results[1], Err(QueryError::InvalidCandidate));
    assert_eq!(batch_results[3], Err(QueryError::InvalidCandidate));
}

/// A channel that fails its first `k` submissions with transient faults
/// and delivers ever after — a fault schedule whose retries resolve
/// identically whether queries arrive one at a time or as a batch.
struct FlakyFirstK<'a> {
    inner: &'a dyn Detector,
    remaining_faults: AtomicU64,
}

impl Oracle for FlakyFirstK<'_> {
    fn name(&self) -> &str {
        "flaky"
    }

    fn submit(&self, bytes: &[u8]) -> Result<Verdict, OracleFault> {
        let left = self
            .remaining_faults
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok();
        if left {
            Err(OracleFault::Transient)
        } else {
            Ok(self.inner.classify(bytes))
        }
    }
}

#[test]
fn query_batch_budget_accounting_matches_sequential_under_injected_faults() {
    let w = world();
    let items = probe_items(w);
    let policy = RetryPolicy { sleep: false, ..RetryPolicy::default() };
    let run = |limit: usize| {
        let channel = FlakyFirstK { inner: &w.malconv, remaining_faults: AtomicU64::new(3) };
        let mut batched =
            HardLabelTarget::unreliable(&channel, QueryBudget::new(limit), policy.clone());
        let mut batch_results = Vec::new();
        batched.query_batch(&items, &mut batch_results);

        let channel = FlakyFirstK { inner: &w.malconv, remaining_faults: AtomicU64::new(3) };
        let mut sequential =
            HardLabelTarget::unreliable(&channel, QueryBudget::new(limit), policy.clone());
        let seq_results: Vec<Result<Verdict, QueryError>> =
            items.iter().map(|b| sequential.query(b)).collect();

        assert_eq!(batch_results, seq_results, "limit {limit}");
        assert_eq!(batched.queries(), sequential.queries(), "limit {limit}");
        assert_eq!(batched.remaining(), sequential.remaining(), "limit {limit}");
        // The invariant behind "budget meters delivered verdicts":
        // consumed budget equals the number of Ok results, faults and
        // retries are free.
        let delivered = batch_results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(batched.queries(), delivered, "limit {limit}");
    };
    // Ample budget: every item delivers despite the three leading faults.
    run(items.len() + 10);
    // Tight budget: exhaustion landing after the faulted-and-retried
    // prefix exercises deferred first attempts behind retries.
    run(items.len() - 4);
}

/// Wraps an oracle and records which item every submission carried (by
/// pointer identity into the probe set) and whether it delivered.
struct Recorded<'a> {
    inner: &'a dyn Oracle,
    log: Mutex<Vec<(usize, bool)>>,
}

impl Oracle for Recorded<'_> {
    fn name(&self) -> &str {
        "recorded"
    }

    fn submit(&self, bytes: &[u8]) -> Result<Verdict, OracleFault> {
        let res = self.inner.submit(bytes);
        self.log.lock().unwrap().push((bytes.as_ptr() as usize, res.is_ok()));
        res
    }
}

impl Recorded<'_> {
    /// The recorded submissions as `(item index, delivered)` pairs.
    fn placements(&self, items: &[&[u8]]) -> Vec<(usize, bool)> {
        self.log
            .lock()
            .unwrap()
            .iter()
            .map(|&(ptr, ok)| {
                let idx = items
                    .iter()
                    .position(|b| b.as_ptr() as usize == ptr)
                    .expect("submission carried a probe item");
                (idx, ok)
            })
            .collect()
    }
}

/// Pins the documented `query_batch` caveat. The `UnreliableOracle`
/// consumes its fault schedule per *submission*, and a batch advances
/// the submission index across every item before any retry — so faults
/// land on different items than under a sequential interleaving. The
/// transparency contract that survives is budget accounting: consumed
/// budget equals delivered verdicts in both paths, independently of
/// where the faults landed.
#[test]
fn fault_placement_diverges_while_budget_accounting_stays_exact() {
    let w = world();
    let items = probe_items(w);
    let profile = FaultProfile::seeded(0xD1FF);
    let policy = RetryPolicy { sleep: false, ..RetryPolicy::default() };
    let limit = items.len() + 16;

    let oracle = UnreliableOracle::new(&w.malconv, profile);
    let channel = Recorded { inner: &oracle, log: Mutex::new(Vec::new()) };
    let mut batched =
        HardLabelTarget::unreliable(&channel, QueryBudget::new(limit), policy.clone());
    let mut batch_results = Vec::new();
    batched.query_batch(&items, &mut batch_results);
    let batch_placements = channel.placements(&items);

    let oracle = UnreliableOracle::new(&w.malconv, profile);
    let channel = Recorded { inner: &oracle, log: Mutex::new(Vec::new()) };
    let mut sequential =
        HardLabelTarget::unreliable(&channel, QueryBudget::new(limit), policy.clone());
    let seq_results: Vec<Result<Verdict, QueryError>> =
        items.iter().map(|b| sequential.query(b)).collect();
    let seq_placements = channel.placements(&items);

    // The caveat itself: the same fault schedule hits different items.
    let batch_faulted: Vec<usize> =
        batch_placements.iter().filter(|&&(_, ok)| !ok).map(|&(i, _)| i).collect();
    let seq_faulted: Vec<usize> =
        seq_placements.iter().filter(|&&(_, ok)| !ok).map(|&(i, _)| i).collect();
    assert_ne!(
        batch_faulted, seq_faulted,
        "seed 0xD1FF was chosen to demonstrate divergent fault placement; \
         if the schedule changed, pick a seed where the paths diverge"
    );

    // What *is* guaranteed either way: budget meters delivered verdicts.
    let batch_delivered = batch_results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(batched.queries(), batch_delivered);
    let seq_delivered = seq_results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(sequential.queries(), seq_delivered);
    // And with retry patience beyond the profile's burst cap, every item
    // still delivers in both paths — divergence is confined to placement.
    assert_eq!(batch_delivered, items.len());
    assert_eq!(seq_delivered, items.len());
}

/// A scripted channel for pinning wave ordering: the item tagged `0`
/// faults transiently on its first submission only, the item tagged `1`
/// is fatally rejected, everything else delivers. The submission log is
/// the observable.
struct ScriptedOracle {
    log: Mutex<Vec<u8>>,
    faulted_once: AtomicBool,
}

impl Oracle for ScriptedOracle {
    fn name(&self) -> &str {
        "scripted"
    }

    fn submit(&self, bytes: &[u8]) -> Result<Verdict, OracleFault> {
        let tag = bytes[0];
        self.log.lock().unwrap().push(tag);
        match tag {
            0 if !self.faulted_once.swap(true, Ordering::SeqCst) => Err(OracleFault::Transient),
            1 => Err(OracleFault::Fatal),
            _ => Ok(Verdict::Benign),
        }
    }
}

/// Pins the retry-wave ordering inside `query_batch`: items a wave
/// could not deliver re-enter the next wave *ahead of* first attempts
/// the budget deferred — the order a sequential loop would reach them
/// in. Eight items under a budget of six: the first wave submits items
/// 0–5 (deferring 6 and 7), item 0 faults transiently and item 1
/// fatally, so the second wave has room for two submissions and must
/// send item 0's retry before deferred item 6.
#[test]
fn retries_resubmit_ahead_of_budget_deferred_first_attempts() {
    let storage: Vec<[u8; 1]> = (0u8..8).map(|b| [b]).collect();
    let items: Vec<&[u8]> = storage.iter().map(|a| a.as_slice()).collect();
    let policy = RetryPolicy { sleep: false, ..RetryPolicy::default() };

    let channel = ScriptedOracle { log: Mutex::new(Vec::new()), faulted_once: AtomicBool::new(false) };
    let mut batched =
        HardLabelTarget::unreliable(&channel, QueryBudget::new(6), policy.clone());
    let mut batch_results = Vec::new();
    batched.query_batch(&items, &mut batch_results);

    let log = channel.log.lock().unwrap().clone();
    assert_eq!(&log[..6], &[0, 1, 2, 3, 4, 5], "wave 1 is budget-sized, in input order");
    assert_eq!(
        &log[6..],
        &[0, 6],
        "wave 2 must resubmit item 0's retry ahead of budget-deferred item 6"
    );

    assert_eq!(batch_results[0], Ok(Verdict::Benign), "retried and delivered");
    assert_eq!(batch_results[1], Err(QueryError::Fatal));
    assert!(
        matches!(&batch_results[7], Err(e) if e.is_budget_exhausted()),
        "item 7 never got a wave slot"
    );
    assert_eq!(batched.queries(), 6, "all six budget units bought delivered verdicts");

    // The same schedule resolves to the same outcomes sequentially —
    // the ordering rule is exactly what keeps the two paths aligned.
    let channel = ScriptedOracle { log: Mutex::new(Vec::new()), faulted_once: AtomicBool::new(false) };
    let mut sequential =
        HardLabelTarget::unreliable(&channel, QueryBudget::new(6), policy.clone());
    let seq_results: Vec<Result<Verdict, QueryError>> =
        items.iter().map(|b| sequential.query(b)).collect();
    assert_eq!(batch_results, seq_results);
    assert_eq!(sequential.queries(), 6);
}

/// Under a schedule that faults beyond the retry policy's patience, the
/// failed query consumes no budget in either path.
#[test]
fn exhausted_retries_are_free_in_both_paths() {
    let w = world();
    let valid = w.dataset.samples[0].bytes.as_slice();
    let items: Vec<&[u8]> = vec![valid, valid];
    let policy = RetryPolicy { max_attempts: 2, sleep: false, ..RetryPolicy::default() };
    // Enough faults that the first item exhausts its attempts in both
    // schedules (sequential burns 2 on item 1; the batch interleaves but
    // still spends 4 submissions on 2 items x 2 attempts).
    let channel = FlakyFirstK { inner: &w.malconv, remaining_faults: AtomicU64::new(4) };
    let mut batched =
        HardLabelTarget::unreliable(&channel, QueryBudget::new(10), policy.clone());
    let mut batch_results = Vec::new();
    batched.query_batch(&items, &mut batch_results);
    assert!(batch_results
        .iter()
        .all(|r| matches!(r, Err(QueryError::Transient { attempts: 2 }))));
    assert_eq!(batched.queries(), 0, "failed queries must not consume budget");

    let channel = FlakyFirstK { inner: &w.malconv, remaining_faults: AtomicU64::new(4) };
    let mut sequential =
        HardLabelTarget::unreliable(&channel, QueryBudget::new(10), policy.clone());
    let seq_results: Vec<Result<Verdict, QueryError>> =
        items.iter().map(|b| sequential.query(b)).collect();
    assert_eq!(batch_results, seq_results);
    assert_eq!(sequential.queries(), 0);
}
