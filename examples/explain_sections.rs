//! PEM demo (§III-B): which PE sections drive detector decisions?
//!
//! Trains the three differentiable detectors, runs the Problem-space
//! Explainability Method over a malware population and prints the
//! per-model section rankings and the common critical sections.
//!
//! ```sh
//! cargo run --release --example explain_sections
//! ```

use mpass::core::pem::{run_pem, PemConfig};
use mpass::corpus::{CorpusConfig, Dataset};
use mpass::detectors::train::training_pairs;
use mpass::detectors::{
    ByteConvConfig, DetectorExt, MalConv, MalGcg, MalGcgConfig, NonNeg,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let dataset = Dataset::generate(&CorpusConfig {
        n_malware: 40,
        n_benign: 40,
        seed: 3,
        no_slack_fraction: 0.0,
    });
    let samples: Vec<_> = dataset.samples.iter().collect();
    let pairs = training_pairs(&samples);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut malconv = MalConv::new(ByteConvConfig::default(), &mut rng);
    malconv.train(&pairs, 5, 5e-3, &mut rng);
    let mut nonneg = NonNeg::new(ByteConvConfig::default(), &mut rng);
    nonneg.train(&pairs, 10, 5e-3, &mut rng);
    let mut malgcg = MalGcg::new(MalGcgConfig::default(), &mut rng);
    malgcg.train(&pairs, 5, 5e-3, &mut rng);

    let population: Vec<_> = dataset.malware().into_iter().take(16).collect();
    let models: Vec<(&str, &dyn DetectorExt)> =
        vec![("MalConv", &malconv), ("NonNeg", &nonneg), ("MalGCG", &malgcg)];
    let report = run_pem(&models, &population, &PemConfig::default());

    println!("Shapley-value section ranking (average over {} malware):", population.len());
    for m in &report.per_model {
        println!("  model {}:", m.model);
        for (kind, phi) in &m.ranking {
            println!("    {kind:<10} φ = {phi:+.4}");
        }
        if let Some(r) = m.top2_over_top3() {
            println!("    top-2 / top-3 ratio: {r:.2}x");
        }
    }
    println!(
        "common critical sections (S̃ = ∩ per-model top-k): {:?}",
        report.common_critical.iter().map(|k| k.to_string()).collect::<Vec<_>>()
    );
}
