//! Runtime-recovery demo: encode a malware's code and data sections,
//! inject the shuffled recovery stub, and prove in the sandbox that the
//! modified binary still exhibits byte-identical API behaviour.
//!
//! ```sh
//! cargo run --release --example functionality_check
//! ```

use mpass::core::modify::{modify, ModificationConfig};
use mpass::corpus::{BenignPool, CorpusConfig, Dataset};
use mpass::sandbox::Sandbox;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let dataset = Dataset::generate(&CorpusConfig {
        n_malware: 3,
        n_benign: 2,
        seed: 11,
        no_slack_fraction: 0.0,
    });
    let pool = BenignPool::generate(5, 2);
    let sandbox = Sandbox::new();
    let mut rng = ChaCha8Rng::seed_from_u64(1);

    for sample in dataset.malware() {
        let original = sandbox.execute(&sample.bytes).expect("sample parses");
        println!("== {} ==", sample.name);
        println!("original behaviour ({} API calls):", original.trace.len());
        for ev in original.trace.iter().take(6) {
            println!("   {} (arg {:#x})", ev.api, ev.arg);
        }
        if original.trace.len() > 6 {
            println!("   ... {} more", original.trace.len() - 6);
        }

        let modified =
            modify(sample, &pool, &ModificationConfig::default(), &mut rng).expect("modify");
        println!(
            "modified: mode {:?}, {} optimizable positions, size {} -> {} bytes",
            modified.mode,
            modified.position_count(),
            sample.size(),
            modified.bytes.len()
        );
        let after = sandbox.execute(&modified.bytes).expect("AE parses");
        println!("modified behaviour: {} API calls", after.trace.len());
        let verdict = sandbox.verify_functionality(&sample.bytes, &modified.bytes);
        println!("functionality verdict: {verdict}");
        assert!(verdict.is_preserved());

        // Show that the original code bytes are gone from the file yet
        // recovered at runtime.
        use mpass::binary::BinaryFormat;
        let image = modified.reparse().expect("structure intact");
        let entry_section = image
            .section_index_containing_va(image.entry_point())
            .and_then(|i| image.section_meta(i))
            .expect("entry mapped")
            .name;
        println!("entry point now in section {entry_section:?} (the recovery stub)\n");
    }
    println!("all modified samples preserved their behaviour");
}
