//! Quickstart: build a synthetic world, train a detector, and evade it
//! with MPass — end to end in under a minute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mpass::core::{Attack, HardLabelTarget, MPassAttack, MPassConfig};
use mpass::corpus::{BenignPool, CorpusConfig, Dataset};
use mpass::detectors::train::training_pairs;
use mpass::detectors::{ByteConvConfig, Detector, MalConv, MalGcg, MalGcgConfig};
use mpass::sandbox::Sandbox;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. A corpus of synthetic malware and benign PE executables.
    let dataset = Dataset::generate(&CorpusConfig {
        n_malware: 30,
        n_benign: 30,
        seed: 42,
        no_slack_fraction: 0.1,
    });
    println!("corpus: {} samples", dataset.samples.len());

    // 2. Train the black-box target (MalConv) and one known surrogate
    //    model (MalGCG) for the transfer ensemble.
    let samples: Vec<_> = dataset.samples.iter().collect();
    let pairs = training_pairs(&samples);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut target = MalConv::new(ByteConvConfig::default(), &mut rng);
    let loss = target.train(&pairs, 5, 5e-3, &mut rng);
    println!("target MalConv trained (final loss {loss:.4})");
    let mut surrogate = MalGcg::new(MalGcgConfig::default(), &mut rng);
    surrogate.train(&pairs, 5, 5e-3, &mut rng);

    // 3. The attacker's benign-content pool (the paper harvests 50 000
    //    benign programs; we generate a smaller pool).
    let pool = BenignPool::generate(10, 7);

    // 4. Attack the first malware sample the target detects. The config
    //    builder validates restart/round/learning-rate choices up front.
    let sandbox = Sandbox::new();
    let config = MPassConfig::builder()
        .seed(42)
        .build()
        .expect("default MPass config is valid");
    let mut attack = MPassAttack::new(vec![&surrogate], &pool, config);
    for sample in dataset.malware().into_iter().take(5) {
        if target.classify(&sample.bytes) != mpass::detectors::Verdict::Malicious {
            continue;
        }
        let mut oracle = HardLabelTarget::new(&target, 100);
        let outcome = attack.attack(sample, &mut oracle);
        println!(
            "{}: evaded={} queries={} size {} -> {} bytes",
            sample.name, outcome.evaded, outcome.queries, outcome.original_size, outcome.final_size
        );
        if let Some(ae) = &outcome.adversarial {
            // 5. Functionality must be preserved: same API trace.
            let verdict = sandbox.verify_functionality(&sample.bytes, ae);
            println!("   functionality: {verdict}");
            assert!(verdict.is_preserved());
        }
    }
}
