//! Attack a simulated commercial ML AV (ensemble + packer heuristics +
//! signature store) with MPass and with the MAB baseline, then let the AV
//! run a weekly learning update and watch which attack's AEs survive.
//!
//! ```sh
//! cargo run --release --example evade_commercial
//! ```

use mpass::baselines::{Mab, MabConfig};
use mpass::core::{Attack, HardLabelTarget, MPassAttack, MPassConfig};
use mpass::corpus::{BenignPool, CorpusConfig, Dataset};
use mpass::detectors::commercial::default_profiles;
use mpass::detectors::train::training_pairs;
use mpass::detectors::{
    ByteConvConfig, CommercialAv, Detector, MalConv, MalGcg, MalGcgConfig, NonNeg,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let dataset = Dataset::generate(&CorpusConfig {
        n_malware: 40,
        n_benign: 40,
        seed: 9,
        no_slack_fraction: 0.1,
    });
    let samples: Vec<_> = dataset.samples.iter().collect();
    let pairs = training_pairs(&samples);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut malconv = MalConv::new(ByteConvConfig::default(), &mut rng);
    malconv.train(&pairs, 5, 5e-3, &mut rng);
    let mut nonneg = NonNeg::new(ByteConvConfig::default(), &mut rng);
    nonneg.train(&pairs, 10, 5e-3, &mut rng);
    let mut malgcg = MalGcg::new(MalGcgConfig::default(), &mut rng);
    malgcg.train(&pairs, 5, 5e-3, &mut rng);

    let av = CommercialAv::train(default_profiles().remove(2), &samples);
    println!("target: {} (threshold {})", av.name(), av.threshold());

    let pool = BenignPool::generate(10, 3);
    let mut mpass = MPassAttack::new(
        vec![&malconv, &nonneg, &malgcg],
        &pool,
        MPassConfig::builder().seed(9).build().expect("default MPass config is valid"),
    );
    let mut mab = Mab::new(&pool, MabConfig::default());

    let mut mpass_aes: Vec<Vec<u8>> = Vec::new();
    let mut mab_aes: Vec<Vec<u8>> = Vec::new();
    let mut attacked = 0;
    for sample in dataset.malware() {
        if !av.classify(&sample.bytes).is_malicious() {
            continue;
        }
        attacked += 1;
        if attacked > 15 {
            break;
        }
        let mut oracle = HardLabelTarget::new(&av, 100);
        if let Some(ae) = mpass.attack(sample, &mut oracle).adversarial {
            mpass_aes.push(ae);
        }
        let mut oracle = HardLabelTarget::new(&av, 100);
        if let Some(ae) = mab.attack(sample, &mut oracle).adversarial {
            mab_aes.push(ae);
        }
    }
    let n = attacked.min(15);
    println!("MPass evaded {}/{n}; MAB evaded {}/{n}", mpass_aes.len(), mab_aes.len());

    // Weekly learning update: the AV mines shared n-grams from submissions.
    for (name, aes) in [("MPass", &mpass_aes), ("MAB", &mab_aes)] {
        if aes.is_empty() {
            continue;
        }
        let mut updated = av.clone();
        let subs: Vec<&[u8]> = aes.iter().map(|v| v.as_slice()).collect();
        let added = updated.weekly_update(&subs);
        let still = aes.iter().filter(|ae| updated.classify(ae).is_benign()).count();
        println!(
            "{name}: AV learned {added} signatures; {still}/{} AEs still bypass",
            aes.len()
        );
    }
}
