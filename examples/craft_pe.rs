//! Substrate tour: hand-craft a PE executable with an MVM program inside,
//! run it in the sandbox, then perform the structural edits the attacks
//! rely on (new section, renamed section, entry-point redirection).
//!
//! ```sh
//! cargo run --release --example craft_pe
//! ```

use mpass::pe::{PeBuilder, PeFile, SectionFlags};
use mpass::sandbox::Sandbox;
use mpass::vm::{api, Asm, Instr, Reg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A program: read a byte from .data, write a file, message-box it,
    // then exit.
    let mut asm = Asm::new();
    asm.push(Instr::Movi(Reg::R6, 0x2000)); // .data RVA under default layout
    asm.push(Instr::Ld8(Reg::R0, Reg::R6, 0));
    asm.push(Instr::CallApi(api::WRITE_FILE));
    asm.push(Instr::Movi(Reg::R0, 7));
    asm.label("loop");
    asm.push(Instr::Addi(Reg::R0, -1));
    asm.jump_to(Instr::Jnz(Reg::R0, 0), "loop");
    asm.push(Instr::CallApi(api::MESSAGE_BOX));
    asm.push(Instr::Halt);
    let code = asm.assemble()?;

    let mut builder = PeBuilder::new();
    builder.add_section(".text", code, SectionFlags::CODE)?;
    builder.add_section(".data", vec![0x5A; 256], SectionFlags::DATA)?;
    builder.set_entry_section(".text", 0)?;
    builder.set_timestamp(0x600D_F00D);
    let pe = builder.build()?;
    println!(
        "built PE: {} sections, entry {:#x}, {} bytes on disk",
        pe.sections().len(),
        pe.entry_point(),
        pe.file_size()
    );

    // Execute it.
    let sandbox = Sandbox::new();
    let exec = sandbox.run_pe(&pe);
    println!("execution: {:?} after {} steps", exec.outcome, exec.steps);
    for ev in &exec.trace {
        println!("  api call: {} (arg {:#x})", ev.api, ev.arg);
    }

    // Structural edits.
    let mut edited = pe.clone();
    let rva = edited.add_section(".extra", vec![0xEE; 512], SectionFlags::RDATA)?;
    println!("added .extra at rva {rva:#x}");
    edited.rename_section(".extra", ".didat")?;
    edited.append_overlay(b"OVERLAY-TAIL");
    edited.update_checksum();

    // Round-trip and re-run: behaviour unchanged by the edits.
    let reparsed = PeFile::parse(&edited.to_bytes())?;
    let exec2 = sandbox.run_pe(&reparsed);
    assert_eq!(exec.trace, exec2.trace);
    println!("edited image re-parses and behaves identically");
    Ok(())
}
