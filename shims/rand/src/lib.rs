//! # rand (offline shim)
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the slice of the `rand 0.8` API it actually uses as a local
//! crate with the same package name. The semantics match upstream where
//! the workspace depends on them (trait shapes, `seed_from_u64` seeding
//! via SplitMix64, Fisher–Yates shuffling, unbiased integer ranges); the
//! exact output streams are *not* guaranteed to be bit-identical to
//! upstream `rand` — the workspace only requires self-consistency.
//!
//! Provided surface:
//!
//! * [`RngCore`] — `next_u32` / `next_u64` / `fill_bytes`.
//! * [`Rng`] — `gen`, `gen_range` (half-open and inclusive ranges over
//!   the primitive integers and floats), `gen_bool`; blanket-implemented
//!   for every `RngCore`.
//! * [`SeedableRng`] — `from_seed` + the SplitMix64-based
//!   `seed_from_u64` used everywhere in the workspace.
//! * [`seq::SliceRandom`] — `shuffle` and `choose`.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniformly
/// distributed machine words.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled uniformly over its whole domain by
/// [`Rng::gen`] (the shim's analogue of sampling from rand's `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
              usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
              i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A primitive that supports uniform sampling from sub-ranges.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`. `low < high` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[low, high]`. `low <= high` must hold.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Multiply-shift range reduction (Lemire): maps a uniform 64-bit word
/// onto `[0, span)` without modulo bias beyond 2⁻⁶⁴.
#[inline]
fn reduce(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high - low) as u64;
                low + reduce(rng.next_u64(), span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high - low) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low + reduce(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                low.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}
uniform_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = f32::sample_standard(rng);
        low + (high - low) * unit
    }
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low <= high, "gen_range: empty range");
        // The closed upper bound has measure zero; treat as half-open
        // plus an exact-top correction through rounding.
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / ((1u32 << 24) - 1) as f32);
        low + (high - low) * unit
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = f64::sample_standard(rng);
        low + (high - low) * unit
    }
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low <= high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        low + (high - low) * unit
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform draw from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it through SplitMix64, as
    /// upstream `rand_core` does — every distinct input yields a
    /// well-mixed full-width seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Sequence-related utilities (`SliceRandom`).

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    /// A tiny deterministic xorshift generator for testing the traits
    /// without depending on `rand_chacha`.
    struct XorShift(u64);
    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = XorShift(0x1234_5678_9ABC_DEF0);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-50..50i32);
            assert!((-50..50).contains(&w));
            let x = rng.gen_range(0..=255u8);
            let _ = x; // all u8 values are valid
            let f = rng.gen_range(-1.0..1.0f32);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = XorShift(42);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some bucket never hit: {seen:?}");
    }

    #[test]
    fn gen_bool_edge_cases() {
        let mut rng = XorShift(7);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "p=0.25 hit {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = XorShift(9);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input in order");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = XorShift(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [42u8];
        assert_eq!(one.choose(&mut rng), Some(&42));
    }

    #[test]
    fn fill_bytes_fills_every_byte() {
        let mut rng = XorShift(11);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
