//! # serde_json (offline shim)
//!
//! JSON text rendering and parsing over the vendored `serde` facade's
//! [`Value`] tree. Covers what the workspace uses: `to_string`,
//! `to_string_pretty`, and `from_str`, with full string escaping and
//! integer-exact round-trips for 64-bit values.

use serde::{Deserialize, Serialize};

pub use serde::Value;

/// Error raised on malformed JSON text or a shape mismatch while
/// rebuilding a typed value.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn msg(text: impl Into<String>) -> Self {
        Error(text.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to human-readable JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_str(text)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; mirror upstream's lossy `null`.
        out.push_str("null");
        return;
    }
    let rendered = format!("{f}");
    out.push_str(&rendered);
    // Keep a float-looking token so readers see 2.0, not 2.
    if !rendered.contains('.') && !rendered.contains('e') && !rendered.contains('E') {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing data at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::msg(format!("unterminated array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::msg(format!("unterminated object at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::msg("lone high surrogate"));
                                }
                                let second = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((first - 0xD800) << 10)
                                    + (second.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::msg("invalid surrogate pair"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| Error::msg("invalid unicode escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input came from &str,
                    // so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::msg("invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::msg(format!("invalid unicode escape `{hex}`")))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(i) = text.parse::<i64>() {
                    let _ = digits;
                    return Ok(Value::I64(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_text() {
        let value = Value::Map(vec![
            ("name".into(), Value::Str("mpass \"q\"\n".into())),
            ("hash".into(), Value::U64(u64::MAX - 5)),
            ("delta".into(), Value::I64(-42)),
            ("asr".into(), Value::F64(0.375)),
            ("whole".into(), Value::F64(2.0)),
            ("flags".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("empty_map".into(), Value::Map(vec![])),
        ]);
        for text in [to_string(&value).unwrap(), to_string_pretty(&value).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, value);
        }
    }

    #[test]
    fn pretty_output_is_indented() {
        let value = Value::Map(vec![("k".into(), Value::Seq(vec![Value::U64(1)]))]);
        let text = to_string_pretty(&value).unwrap();
        assert_eq!(text, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn typed_round_trip() {
        let samples: Vec<(String, f64)> =
            vec![("a".into(), 1.25), ("b".into(), -0.5)];
        let text = to_string_pretty(&samples).unwrap();
        let back: Vec<(String, f64)> = from_str(&text).unwrap();
        assert_eq!(back, samples);
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Value::Str("Aé😀".into()));
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }
}
