//! # rand_chacha (offline shim)
//!
//! [`ChaCha8Rng`]: a cryptographically-derived deterministic generator
//! built on the ChaCha stream cipher with 8 double-rounds, vendored
//! in-repo because the build container cannot reach crates.io.
//!
//! The block function follows RFC 8439 (32-byte key, 64-bit block
//! counter + 64-bit stream id, "expand 32-byte k" constants); output
//! words are emitted in block order. Streams are deterministic in the
//! seed but not guaranteed bit-identical to upstream `rand_chacha` —
//! the workspace only relies on determinism and statistical quality.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const DOUBLE_ROUNDS: usize = 4; // 8 rounds total

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha stream cipher with 8 rounds, exposed as an RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key + stream id; the block counter lives in `counter`.
    key: [u32; 8],
    stream: [u32; 2],
    counter: u64,
    /// Current output block and the next word index within it.
    block: [u32; 16],
    word_idx: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            CONSTANTS[0],
            CONSTANTS[1],
            CONSTANTS[2],
            CONSTANTS[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream[0],
            self.stream[1],
        ];
        let initial = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(initial) {
            *s = s.wrapping_add(i);
        }
        self.block = state;
        self.word_idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let mut rng = ChaCha8Rng {
            key,
            stream: [0, 0],
            counter: 0,
            block: [0; 16],
            word_idx: 16, // force refill on first use
        };
        rng.refill();
        rng.word_idx = 0;
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_idx >= 16 {
            self.refill();
        }
        let w = self.block[self.word_idx];
        self.word_idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(0xDEAD_BEEF);
        let mut b = ChaCha8Rng::seed_from_u64(0xDEAD_BEEF);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_continues_the_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..10 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn output_is_statistically_plausible() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        // Byte-value chi-square over 256 buckets; catastrophic bias would
        // blow far past the generous bound.
        let mut counts = [0u32; 256];
        let n = 1 << 16;
        for _ in 0..n / 8 {
            for b in rng.next_u64().to_le_bytes() {
                counts[b as usize] += 1;
            }
        }
        let expected = n as f64 / 256.0;
        let chi2: f64 =
            counts.iter().map(|&c| (c as f64 - expected).powi(2) / expected).sum();
        assert!(chi2 < 350.0, "chi-square {chi2} too large for uniform bytes");
        // Bit balance on a second stream.
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        let ratio = ones as f64 / 64_000.0;
        assert!((0.48..0.52).contains(&ratio), "bit ratio {ratio}");
    }

    #[test]
    fn gen_integration_with_rand_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let x: u8 = rng.gen();
        let _ = x;
        let y = rng.gen_range(0..10usize);
        assert!(y < 10);
        assert!(rng.gen_bool(1.0));
    }
}
