//! # criterion (offline shim)
//!
//! A minimal wall-clock benchmark harness exposing the Criterion API
//! surface this workspace uses. Because bench targets default to
//! `test = true`, `cargo test` also executes the bench binaries; the
//! generated `main` detects the missing `--bench` flag in that case and
//! exits immediately (smoke mode), so the test suite never pays for a
//! measurement run. Under `cargo bench` (which passes `--bench`), each
//! benchmark is warmed up and timed, and a mean/min/max per-iteration
//! summary is printed.
//!
//! No statistics beyond that: the vendored harness is for spotting
//! order-of-magnitude regressions, not publication-grade intervals.

use std::time::{Duration, Instant};

/// Mirror of criterion's batching hint; the shim times every batch
/// individually, so the variants only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Harness entry point handed to each benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Bench a function outside any named group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("default").bench_function(id, f);
        self
    }
}

/// A set of related benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, id);
        self
    }

    pub fn finish(self) {}
}

/// Runs and times one benchmark routine.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    /// Nanoseconds per iteration for each measured sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Time a routine whose input is free to construct.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        self.iter_batched(|| (), |()| routine(), BatchSize::PerIteration);
    }

    /// Time a routine with per-iteration setup excluded from the
    /// measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_start = Instant::now();
        loop {
            let input = setup();
            let out = routine(input);
            drop(std::hint::black_box(out));
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement: collect up to `sample_size` samples within the
        // time budget; setup runs outside the timed window.
        let measure_start = Instant::now();
        while self.samples.len() < self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            let elapsed = t0.elapsed();
            drop(std::hint::black_box(out));
            self.samples.push(elapsed.as_nanos() as f64);
            if measure_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples collected");
            return;
        }
        let n = self.samples.len() as f64;
        let mean = self.samples.iter().sum::<f64>() / n;
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{group}/{id}: mean {} (min {}, max {}, {} samples)",
            format_ns(mean),
            format_ns(min),
            format_ns(max),
            self.samples.len(),
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Whether the binary was launched by `cargo bench` (which passes
/// `--bench`) rather than `cargo test`.
pub fn measurement_requested() -> bool {
    std::env::args().any(|a| a == "--bench")
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::measurement_requested() {
                println!(
                    "criterion shim: smoke mode, benchmarks skipped (run `cargo bench` to measure)"
                );
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(10));
        let mut calls = 0u64;
        group.bench_function("counter", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 0, "routine should have executed");
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(10));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
