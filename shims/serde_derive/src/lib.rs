//! # serde_derive (offline shim)
//!
//! Derive macros for the workspace's vendored `serde` facade. The real
//! `serde_derive` depends on `syn`/`quote`; this shim instead walks the
//! raw [`proc_macro::TokenStream`] by hand, which is enough because the
//! workspace only derives on concrete (non-generic) structs and enums
//! with no `#[serde(...)]` attributes.
//!
//! The generated code targets the facade's Value-tree model:
//!
//! * `Serialize` impls build a `::serde::Value`.
//! * `Deserialize` impls rebuild `Self` from a `&::serde::Value`.
//!
//! Encoding mirrors upstream serde's external tagging so JSON written by
//! the old dependency remains readable: named structs become maps, unit
//! structs `null`, newtype structs are transparent, wider tuple structs
//! become sequences, unit enum variants become strings, and data-carrying
//! variants become single-entry `{ "Variant": payload }` maps.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The subset of Rust data shapes the derives understand.
enum Shape {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Advance past outer attributes (`#[...]`, including doc comments) and
/// visibility modifiers (`pub`, `pub(crate)`, ...).
fn skip_meta(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Split a token list on top-level commas. Nested delimiter groups are
/// opaque `TokenTree::Group`s already, but generic arguments are not, so
/// commas inside `<...>` are tracked by angle-bracket depth.
fn split_top_level_commas(toks: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for t in toks {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extract the field name from one `attrs vis name : Type` chunk.
fn field_name(chunk: &[TokenTree]) -> String {
    let i = skip_meta(chunk, 0);
    match chunk.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected field name, found {other:?}"),
    }
}

fn parse_variant(chunk: &[TokenTree]) -> Variant {
    let i = skip_meta(chunk, 0);
    let name = match chunk.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected variant name, found {other:?}"),
    };
    let kind = match chunk.get(i + 1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let fields = split_top_level_commas(g.stream().into_iter().collect());
            VariantKind::Tuple(fields.len())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = split_top_level_commas(g.stream().into_iter().collect())
                .iter()
                .map(|c| field_name(c))
                .collect();
            VariantKind::Struct(fields)
        }
        // Bare variant, possibly with an explicit `= discriminant`.
        _ => VariantKind::Unit,
    };
    Variant { name, kind }
}

fn parse_shape(input: TokenStream) -> Shape {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&toks, 0);
    let keyword = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    match keyword.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = split_top_level_commas(g.stream().into_iter().collect())
                    .iter()
                    .map(|c| field_name(c))
                    .collect();
                Shape::NamedStruct { name, fields }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = split_top_level_commas(g.stream().into_iter().collect()).len();
                Shape::TupleStruct { name, arity }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("serde_derive shim: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = split_top_level_commas(g.stream().into_iter().collect())
                    .iter()
                    .map(|c| parse_variant(c))
                    .collect();
                Shape::Enum { name, variants }
            }
            other => panic!("serde_derive shim: expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other} {name}`"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let mut out = String::new();
    match &shape {
        Shape::NamedStruct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n"
            ));
            for f in fields {
                out.push_str(&format!(
                    "entries.push((::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            out.push_str("::serde::Value::Map(entries)\n}\n}\n");
        }
        Shape::TupleStruct { name, arity: 1 } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }}\n}}\n"
            ));
        }
        Shape::TupleStruct { name, arity } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Seq(::std::vec![\n"
            ));
            for idx in 0..*arity {
                out.push_str(&format!("::serde::Serialize::to_value(&self.{idx}),\n"));
            }
            out.push_str("])\n}\n}\n");
        }
        Shape::UnitStruct { name } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}\n"
            ));
        }
        Shape::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n"
            ));
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => out.push_str(&format!(
                        "Self::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    VariantKind::Tuple(1) => out.push_str(&format!(
                        "Self::{vname}(f0) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        out.push_str(&format!(
                            "Self::{vname}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Seq(::std::vec![{}]))]),\n",
                            binders.join(", "),
                            binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect::<Vec<_>>()
                                .join(", "),
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        out.push_str(&format!(
                            "Self::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Map(::std::vec![{}]))]),\n",
                            fields.join(", "),
                            fields
                                .iter()
                                .map(|f| format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                ))
                                .collect::<Vec<_>>()
                                .join(", "),
                        ));
                    }
                }
            }
            out.push_str("}\n}\n}\n");
        }
    }
    out.parse().expect("serde_derive shim: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let mut out = String::new();
    match &shape {
        Shape::NamedStruct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 ::core::result::Result::Ok({name} {{\n"
            ));
            for f in fields {
                out.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(::serde::field(value, \"{f}\")?)?,\n"
                ));
            }
            out.push_str("})\n}\n}\n");
        }
        Shape::TupleStruct { name, arity: 1 } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 ::core::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))\n}}\n}}\n"
            ));
        }
        Shape::TupleStruct { name, arity } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 let items = ::serde::seq(value)?;\n\
                 if items.len() != {arity} {{\n\
                 return ::core::result::Result::Err(::serde::Error::msg(::std::format!(\n\
                 \"expected {arity} elements for {name}, found {{}}\", items.len())));\n\
                 }}\n\
                 ::core::result::Result::Ok({name}(\n"
            ));
            for idx in 0..*arity {
                out.push_str(&format!("::serde::Deserialize::from_value(&items[{idx}])?,\n"));
            }
            out.push_str("))\n}\n}\n");
        }
        Shape::UnitStruct { name } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 ::core::result::Result::Ok({name})\n}}\n}}\n"
            ));
        }
        Shape::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 match value {{\n\
                 ::serde::Value::Str(tag) => match tag.as_str() {{\n"
            ));
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let vname = &v.name;
                    out.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok(Self::{vname}),\n"
                    ));
                }
            }
            out.push_str(&format!(
                "other => ::core::result::Result::Err(::serde::Error::msg(::std::format!(\n\
                 \"unknown unit variant `{{other}}` for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n"
            ));
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Tuple(1) => out.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok(Self::{vname}(::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        out.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let items = ::serde::seq(inner)?;\n\
                             if items.len() != {arity} {{\n\
                             return ::core::result::Result::Err(::serde::Error::msg(::std::format!(\n\
                             \"expected {arity} elements for {name}::{vname}, found {{}}\", items.len())));\n\
                             }}\n\
                             ::core::result::Result::Ok(Self::{vname}(\n"
                        ));
                        for idx in 0..*arity {
                            out.push_str(&format!(
                                "::serde::Deserialize::from_value(&items[{idx}])?,\n"
                            ));
                        }
                        out.push_str("))\n},\n");
                    }
                    VariantKind::Struct(fields) => {
                        out.push_str(&format!(
                            "\"{vname}\" => ::core::result::Result::Ok(Self::{vname} {{\n"
                        ));
                        for f in fields {
                            out.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_value(::serde::field(inner, \"{f}\")?)?,\n"
                            ));
                        }
                        out.push_str("}),\n");
                    }
                }
            }
            out.push_str(&format!(
                "other => ::core::result::Result::Err(::serde::Error::msg(::std::format!(\n\
                 \"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n\
                 }},\n\
                 other => ::core::result::Result::Err(::serde::Error::msg(::std::format!(\n\
                 \"expected a variant encoding for {name}, found {{other:?}}\"))),\n\
                 }}\n\
                 }}\n\
                 }}\n"
            ));
        }
    }
    out.parse().expect("serde_derive shim: generated Deserialize impl must parse")
}
