//! # serde (offline shim)
//!
//! A vendored stand-in for the serde facade, built around an explicit
//! [`Value`] tree instead of upstream's visitor machinery. The build
//! container cannot reach a registry, so the workspace ships the small
//! serialization surface it actually uses:
//!
//! * [`Serialize`] renders a type into a [`Value`].
//! * [`Deserialize`] rebuilds a type from a `&Value`.
//! * `#[derive(Serialize, Deserialize)]` come from the companion
//!   `serde_derive` shim and are re-exported here, mirroring the real
//!   crate's `derive` feature.
//!
//! `serde_json` (also vendored) renders a `Value` to JSON text and
//! parses JSON back into one. Map entries preserve insertion order, and
//! unordered containers are sorted on serialization, so output is
//! deterministic — something the metrics pipeline relies on when
//! diffing run reports.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree: the intermediate form between Rust
/// values and JSON text.
///
/// Integers keep their signedness (`I64` vs `U64`) so 64-bit hashes and
/// signature digests round-trip exactly; a single `f64` variant would
/// silently lose precision above 2^53.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Ordered key/value pairs; order is whatever the serializer pushed.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error raised when a [`Value`] does not match the requested shape.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn msg(text: impl Into<String>) -> Self {
        Error(text.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Fetch a required struct field from a `Map` value.
///
/// Used by derived `Deserialize` impls; a missing key or a non-map value
/// is a shape error.
pub fn field<'a>(value: &'a Value, name: &str) -> Result<&'a Value, Error> {
    match value {
        Value::Map(_) => value
            .get(name)
            .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
        other => Err(Error::msg(format!(
            "expected a map with field `{name}`, found {other:?}"
        ))),
    }
}

/// View a value as a sequence, for tuple structs/variants and arrays.
pub fn seq(value: &Value) -> Result<&[Value], Error> {
    match value {
        Value::Seq(items) => Ok(items),
        other => Err(Error::msg(format!("expected a sequence, found {other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! serialize_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

/// References serialize as their referent; this is what makes
/// `&'static str` / `&'static [u8]` struct fields work.
impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// Boxes serialize as their contents — the indirection is a memory
/// layout detail, not part of the data model.
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value(), self.2.to_value(), self.3.to_value()])
    }
}

/// Sets serialize in sorted order so output is deterministic across
/// runs despite `HashSet`'s randomized iteration.
impl<T: Serialize + Ord + Eq + Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Seq(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

/// Hash maps serialize with sorted keys, again for determinism.
impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {other:?}"))),
        }
    }
}

fn value_as_u64(value: &Value) -> Result<u64, Error> {
    match value {
        Value::U64(u) => Ok(*u),
        Value::I64(i) if *i >= 0 => Ok(*i as u64),
        other => Err(Error::msg(format!(
            "expected unsigned integer, found {other:?}"
        ))),
    }
}

fn value_as_i64(value: &Value) -> Result<i64, Error> {
    match value {
        Value::I64(i) => Ok(*i),
        Value::U64(u) => i64::try_from(*u)
            .map_err(|_| Error::msg(format!("integer {u} overflows i64"))),
        other => Err(Error::msg(format!(
            "expected signed integer, found {other:?}"
        ))),
    }
}

macro_rules! deserialize_unsigned {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value_as_u64(value)?;
                <$ty>::try_from(raw).map_err(|_| {
                    Error::msg(format!(
                        "integer {raw} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )*};
}
deserialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! deserialize_signed {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value_as_i64(value)?;
                <$ty>::try_from(raw).map_err(|_| {
                    Error::msg(format!(
                        "integer {raw} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )*};
}
deserialize_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::F64(f) => Ok(*f),
            Value::I64(i) => Ok(*i as f64),
            Value::U64(u) => Ok(*u as f64),
            // Non-finite floats serialize as null (JSON has no NaN).
            Value::Null => Ok(f64::NAN),
            other => Err(Error::msg(format!("expected number, found {other:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

/// Static string slices deserialize by leaking a heap copy. The only
/// such fields in the workspace are packer profile names loaded once
/// per process, so the leak is bounded and intentional.
impl Deserialize for &'static str {
    fn from_value(value: &Value) -> Result<Self, Error> {
        String::from_value(value).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Deserialize for &'static [u8] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<u8>::from_value(value).map(|v| &*Box::leak(v.into_boxed_slice()))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        seq(value)?.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let found = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected {N} elements, found {found}")))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = seq(value)?;
        if items.len() != 2 {
            return Err(Error::msg(format!(
                "expected 2-tuple, found {} elements",
                items.len()
            )));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = seq(value)?;
        if items.len() != 3 {
            return Err(Error::msg(format!(
                "expected 3-tuple, found {} elements",
                items.len()
            )));
        }
        Ok((
            A::from_value(&items[0])?,
            B::from_value(&items[1])?,
            C::from_value(&items[2])?,
        ))
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        seq(value)?.iter().map(T::from_value).collect()
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected map, found {other:?}"))),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected map, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&String::from("hi").to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn u64_precision_is_exact() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(String::from("a"), 1.0f64), (String::from("b"), 2.0)];
        let back = Vec::<(String, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);

        let arr = [9u8; 8];
        let back = <[u8; 8]>::from_value(&arr.to_value()).unwrap();
        assert_eq!(back, arr);

        let set: HashSet<u64> = [3, 1, 2].into_iter().collect();
        let rendered = set.to_value();
        // Sorted for determinism.
        assert_eq!(
            rendered,
            Value::Seq(vec![Value::U64(1), Value::U64(2), Value::U64(3)])
        );
        assert_eq!(HashSet::<u64>::from_value(&rendered).unwrap(), set);
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(5)).unwrap(), Some(5));
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(field(&Value::Map(vec![]), "missing").is_err());
        assert!(seq(&Value::Bool(true)).is_err());
    }

    #[test]
    fn static_refs_round_trip() {
        let s: &'static str = "upx";
        let back = <&'static str>::from_value(&s.to_value()).unwrap();
        assert_eq!(back, "upx");
        let b: &'static [u8] = b"MZ";
        let back = <&'static [u8]>::from_value(&b.to_value()).unwrap();
        assert_eq!(back, b"MZ");
    }
}
