//! Integration tests for the hand-rolled derive macros. These live in
//! `tests/` because the generated impls reference `::serde::...`, which
//! only resolves from a crate that depends on the facade.

use std::collections::HashSet;

use serde::{Deserialize, Serialize, Value};

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Named {
    id: u64,
    label: String,
    weights: Vec<f64>,
    tags: HashSet<u64>,
    dirs: [u8; 4],
    pair: (String, f64),
    maybe: Option<i32>,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Wrapper(u32);

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Pair(u8, String);

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Marker;

#[derive(Debug, PartialEq, Serialize, Deserialize)]
enum Mixed {
    Plain,
    Wrapped(u64),
    Wide(u8, u8),
    Shaped { x: i64, y: String },
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct StaticRefs {
    name: &'static str,
    marker: &'static [u8],
}

fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(value: &T) {
    let rendered = value.to_value();
    let back = T::from_value(&rendered).expect("round trip");
    assert_eq!(&back, value);
}

#[test]
fn named_struct_round_trips() {
    round_trip(&Named {
        id: u64::MAX - 1,
        label: "sample".into(),
        weights: vec![0.25, -1.5],
        tags: [7u64, 11].into_iter().collect(),
        dirs: [1, 2, 3, 4],
        pair: ("loss".into(), 0.125),
        maybe: None,
    });
}

#[test]
fn named_struct_encodes_as_map() {
    let v = Named {
        id: 1,
        label: "x".into(),
        weights: vec![],
        tags: HashSet::new(),
        dirs: [0; 4],
        pair: ("k".into(), 0.0),
        maybe: Some(-3),
    }
    .to_value();
    assert_eq!(v.get("id"), Some(&Value::U64(1)));
    assert_eq!(v.get("maybe"), Some(&Value::I64(-3)));
}

#[test]
fn tuple_and_unit_structs_round_trip() {
    round_trip(&Wrapper(99));
    // Newtype structs are transparent, like upstream serde.
    assert_eq!(Wrapper(99).to_value(), Value::U64(99));
    round_trip(&Pair(3, "b".into()));
    round_trip(&Marker);
}

#[test]
fn enums_round_trip_with_external_tagging() {
    round_trip(&Mixed::Plain);
    round_trip(&Mixed::Wrapped(1234));
    round_trip(&Mixed::Wide(1, 2));
    round_trip(&Mixed::Shaped { x: -9, y: "yy".into() });

    assert_eq!(Mixed::Plain.to_value(), Value::Str("Plain".into()));
    let wrapped = Mixed::Wrapped(5).to_value();
    assert_eq!(wrapped.get("Wrapped"), Some(&Value::U64(5)));
}

#[test]
fn unknown_variants_error() {
    assert!(Mixed::from_value(&Value::Str("Nope".into())).is_err());
    assert!(Mixed::from_value(&Value::U64(1)).is_err());
}

#[test]
fn static_ref_fields_round_trip() {
    round_trip(&StaticRefs { name: "upx", marker: b"UPX!" });
}
